//! The WHERE/HAVING repair machinery of §5 (and Appendix C): repair
//! sites, fixes, costs, repair bounds, fix derivation and the top-level
//! search.

pub mod bounds;
pub mod cost;
pub mod derive_fixes;
pub mod minfix;
pub mod minfix_mult;
pub mod repair_where;

pub use bounds::{bounds_admit, create_bounds};
pub use cost::{repair_cost, tree_size, CostModel};
pub use derive_fixes::derive_fixes;
pub use minfix::{min_fix, NormalForm};
pub use minfix_mult::min_fix_mult;
pub use repair_where::{
    repair_where, FixStrategy, RepairConfig, RepairOutcome, TraceEvent,
};

use qrhint_sqlast::pred::PredPath;
use qrhint_sqlast::Pred;

/// A repair: disjoint repair sites (paths into the predicate tree) and a
/// fix for each site (Definition 2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Repair {
    pub sites: Vec<PredPath>,
    pub fixes: Vec<Pred>,
}

impl Repair {
    /// Apply the repair to `p`: replace each site with its fix.
    /// Sites are disjoint, so replacements do not interfere.
    pub fn apply(&self, p: &Pred) -> Pred {
        let mut out = p.clone();
        for (site, fix) in self.sites.iter().zip(&self.fixes) {
            out = out.replace_at(site, fix);
        }
        out
    }

    /// Number of repair sites.
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }
}

/// Are two paths disjoint (neither a prefix of the other)?
pub fn paths_disjoint(a: &[usize], b: &[usize]) -> bool {
    let n = a.len().min(b.len());
    a[..n] != b[..n]
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrhint_sqlparse::parse_pred;

    #[test]
    fn apply_multi_site_repair() {
        let p = parse_pred("(a = 1 AND b = 2) OR c = 3").unwrap();
        let fix1 = parse_pred("a = 9").unwrap();
        let fix2 = parse_pred("c = 7").unwrap();
        let r = Repair { sites: vec![vec![0, 0], vec![1]], fixes: vec![fix1, fix2] };
        let out = r.apply(&p);
        assert_eq!(out, parse_pred("(a = 9 AND b = 2) OR c = 7").unwrap());
    }

    #[test]
    fn path_disjointness() {
        assert!(paths_disjoint(&[0], &[1]));
        assert!(paths_disjoint(&[0, 1], &[0, 2]));
        assert!(!paths_disjoint(&[0], &[0, 1]));
        assert!(!paths_disjoint(&[0, 1], &[0]));
        assert!(!paths_disjoint(&[], &[2]));
    }
}

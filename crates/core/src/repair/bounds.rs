//! `CreateBounds` (Algorithm 2): repair bounds for a predicate given a set
//! of repair sites, and the exact viability test of §5.1.

use crate::oracle::{BatchCtx, Oracle};
use qrhint_smt::{FormulaId, TriBool};
use qrhint_sqlast::pred::PredPath;
use qrhint_sqlast::Pred;

/// Compute the repair bounds `[P⊥, P⊤]` of `p` for repair sites `sites`:
/// every predicate obtainable by fixing exactly those sites lies within
/// the bounds (Lemma 5.3), and every predicate within the bounds is
/// achievable (Lemma 5.4, proven constructively by `DeriveFixes`).
pub fn create_bounds(p: &Pred, sites: &[PredPath]) -> (Pred, Pred) {
    fn go(p: &Pred, prefix: &mut PredPath, sites: &[PredPath]) -> (Pred, Pred) {
        if sites.iter().any(|s| s == prefix) {
            return (Pred::False, Pred::True);
        }
        if p.is_atomic() {
            return (p.clone(), p.clone());
        }
        match p {
            Pred::And(cs) => {
                let mut lowers = Vec::with_capacity(cs.len());
                let mut uppers = Vec::with_capacity(cs.len());
                for (i, c) in cs.iter().enumerate() {
                    prefix.push(i);
                    let (l, u) = go(c, prefix, sites);
                    prefix.pop();
                    lowers.push(l);
                    uppers.push(u);
                }
                (Pred::and(lowers), Pred::and(uppers))
            }
            Pred::Or(cs) => {
                let mut lowers = Vec::with_capacity(cs.len());
                let mut uppers = Vec::with_capacity(cs.len());
                for (i, c) in cs.iter().enumerate() {
                    prefix.push(i);
                    let (l, u) = go(c, prefix, sites);
                    prefix.pop();
                    lowers.push(l);
                    uppers.push(u);
                }
                (Pred::or(lowers), Pred::or(uppers))
            }
            Pred::Not(c) => {
                prefix.push(0);
                let (l, u) = go(c, prefix, sites);
                prefix.pop();
                (u.negated_nnf(), l.negated_nnf())
            }
            _ => unreachable!("atomic handled above"),
        }
    }
    go(p, &mut Vec::new(), sites)
}

/// Exact viability test: is `target ∈ [lower, upper]`? Only a definitive
/// `True` admits the candidate site set (the paper acts only on positive
/// solver answers).
pub fn bounds_admit(
    oracle: &mut Oracle,
    lower: &Pred,
    upper: &Pred,
    target: &Pred,
    ctx: &[&Pred],
) -> TriBool {
    match oracle.implies_pred(lower, target, ctx) {
        TriBool::False => TriBool::False,
        a => match oracle.implies_pred(target, upper, ctx) {
            TriBool::False => TriBool::False,
            b => a.and(b),
        },
    }
}

/// [`bounds_admit`] against a pre-lowered target and a prepared batch
/// context — the shape `repair_where` uses, where one `(target, ctx)`
/// pair is tested against every candidate site set.
pub fn bounds_admit_batch(
    oracle: &mut Oracle,
    lower: &Pred,
    upper: &Pred,
    target: FormulaId,
    batch: &BatchCtx,
) -> TriBool {
    let lo = oracle.lower_pred(lower);
    match oracle.implies_batch(lo, target, batch) {
        TriBool::False => TriBool::False,
        a => {
            let hi = oracle.lower_pred(upper);
            match oracle.implies_batch(target, hi, batch) {
                TriBool::False => TriBool::False,
                b => a.and(b),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::Oracle;
    use qrhint_sqlparse::parse_pred;

    /// The running Example 5/7 predicate P with node paths:
    /// x1=[] x2=[0] x4=[0,0] x5=[0,1] x8=[0,1,0] x9=[0,1,1]
    /// x3=[1] x6=[1,0] x7=[1,1] x10=[1,1,0] x11=[1,1,1] x12=[1,1,2]
    fn example_p() -> Pred {
        parse_pred(
            "(a = c AND (d <> e OR d > f)) OR (a = c AND (d > 11 OR d < 7 OR e <= 5))",
        )
        .unwrap()
    }

    fn example_p_star() -> Pred {
        parse_pred(
            "(a = c AND (e < 5 OR d > 10 OR d < 7)) OR (a = b AND (d <> e OR d > f))",
        )
        .unwrap()
    }

    #[test]
    fn example7_bounds() {
        // Sites {x4, x10, x12} = {[0,0], [1,1,0], [1,1,2]}.
        let p = example_p();
        let sites = vec![vec![0, 0], vec![1, 1, 0], vec![1, 1, 2]];
        let (lo, hi) = create_bounds(&p, &sites);
        // Paper: lower = A=C ∧ D<7 ; upper = (D≠E ∨ D>F) ∨ A=C.
        let expect_lo = parse_pred("a = c AND d < 7").unwrap();
        let expect_hi = parse_pred("(d <> e OR d > f) OR a = c").unwrap();
        let mut o = Oracle::for_preds(&[&p, &expect_lo, &expect_hi]);
        assert!(o.equiv_pred(&lo, &expect_lo, &[]).is_true(), "lower = {lo}");
        assert!(o.equiv_pred(&hi, &expect_hi, &[]).is_true(), "upper = {hi}");
    }

    #[test]
    fn example7_viability() {
        let p = example_p();
        let p_star = example_p_star();
        let sites = vec![vec![0, 0], vec![1, 1, 0], vec![1, 1, 2]];
        let (lo, hi) = create_bounds(&p, &sites);
        let mut o = Oracle::for_preds(&[&p, &p_star]);
        assert!(bounds_admit(&mut o, &lo, &hi, &p_star, &[]).is_true());
        // A site set that cannot reach P★: only x11 (D<7) — the bound
        // pins everything else.
        let bad = vec![vec![1, 1, 1]];
        let (lo2, hi2) = create_bounds(&p, &bad);
        assert!(bounds_admit(&mut o, &lo2, &hi2, &p_star, &[]).is_false());
    }

    #[test]
    fn site_at_root_gives_trivial_bounds() {
        let p = example_p();
        let (lo, hi) = create_bounds(&p, &[vec![]]);
        assert_eq!(lo, Pred::False);
        assert_eq!(hi, Pred::True);
    }

    #[test]
    fn no_sites_pins_exactly() {
        let p = example_p();
        let (lo, hi) = create_bounds(&p, &[]);
        assert_eq!(lo, p);
        assert_eq!(hi, p);
    }

    #[test]
    fn not_node_swaps_bounds() {
        let p = parse_pred("NOT (a = 1 AND b = 2)").unwrap();
        // Site at the inner a=1: [0, 0].
        let (lo, hi) = create_bounds(&p, &[vec![0, 0]]);
        // Lower: ¬(true ∧ b=2) = b≠2 ; upper: ¬(false ∧ b=2) = ¬false = true.
        let mut o = Oracle::for_preds(&[&p]);
        let expect_lo = parse_pred("b <> 2").unwrap();
        assert!(o.equiv_pred(&lo, &expect_lo, &[]).is_true(), "lower = {lo}");
        assert!(o.equiv_pred(&hi, &Pred::True, &[]).is_true(), "upper = {hi}");
    }

    #[test]
    fn lemma_5_3_random_repairs_fall_in_bounds() {
        // Structured check of Lemma 5.3: apply a handful of repairs at the
        // example sites and verify containment.
        let p = example_p();
        let sites = vec![vec![0, 0], vec![1, 1, 0], vec![1, 1, 2]];
        let (lo, hi) = create_bounds(&p, &sites);
        let fixes = [
            ["a = b", "d > 10", "e < 5"],
            ["TRUE", "FALSE", "a = c"],
            ["d > f", "e <= 5", "d <> e"],
        ];
        for trio in fixes {
            let repair = super::super::Repair {
                sites: sites.clone(),
                fixes: trio.iter().map(|s| parse_pred(s).unwrap()).collect(),
            };
            let applied = repair.apply(&p);
            let mut o = Oracle::for_preds(&[&p, &applied]);
            assert!(
                o.implies_pred(&lo, &applied, &[]).is_true(),
                "lower bound violated for {trio:?}"
            );
            assert!(
                o.implies_pred(&applied, &hi, &[]).is_true(),
                "upper bound violated for {trio:?}"
            );
        }
    }
}

//! `MinFixMult` — the optimized multi-site fix derivation
//! (`DeriveFixesOPT`, Algorithms 7–8 in Appendix C.2).
//!
//! Instead of deriving target bounds for each site independently (which
//! loses optimality when sites have different parents, Example 8),
//! `MinFixMult` builds a *consistency/feasibility table*: for every truth
//! assignment of the non-site atoms it records which combinations of site
//! truth values keep the whole predicate consistent with the target.
//! Sites are then fixed one at a time — most-constrained first
//! (`PickSite`) — each minimized with maximal don't-care freedom, and the
//! feasibility table is narrowed after each choice
//! (`UpdateFeasibility`).

use super::minfix::{build_truth_table, AtomMap, MAX_MINFIX_ATOMS};
use crate::oracle::Oracle;
use qrhint_boolmin::{minimize, Out, TruthTable};
use qrhint_sqlast::pred::PredPath;
use qrhint_sqlast::Pred;

/// Cap on the number of repair sites (2^k site-assignments are tabulated
/// per row).
pub const MAX_SITES: usize = 6;

/// Evaluate `x` with sites replaced by Boolean site-variables: `row`
/// assigns the mapped atoms, `site_bits` assigns the sites.
fn eval_with_sites(
    x: &Pred,
    prefix: &mut PredPath,
    sites: &[PredPath],
    map: &AtomMap,
    row: u32,
    site_bits: u32,
) -> bool {
    if let Some(si) = sites.iter().position(|s| s == prefix) {
        return site_bits & (1 << si) != 0;
    }
    match x {
        Pred::True => true,
        Pred::False => false,
        Pred::And(cs) => {
            let mut all = true;
            for (i, c) in cs.iter().enumerate() {
                prefix.push(i);
                let v = eval_with_sites(c, prefix, sites, map, row, site_bits);
                prefix.pop();
                if !v {
                    all = false;
                    // Keep iterating for uniform cost; small trees anyway.
                }
            }
            all
        }
        Pred::Or(cs) => {
            let mut any = false;
            for (i, c) in cs.iter().enumerate() {
                prefix.push(i);
                let v = eval_with_sites(c, prefix, sites, map, row, site_bits);
                prefix.pop();
                if v {
                    any = true;
                }
            }
            any
        }
        Pred::Not(c) => {
            prefix.push(0);
            let v = eval_with_sites(c, prefix, sites, map, row, site_bits);
            prefix.pop();
            !v
        }
        atom => map.eval(atom, row),
    }
}

/// Feasibility map: for each atom row, either `None` (don't-care /
/// infeasible row) or the set of still-allowed site assignments (bitmask
/// over 2^k encoded as a u64 set).
type Feasibility = Vec<Option<u64>>;

/// Compute optimal-ish fixes for multiple sites holistically. Returns
/// `None` when the instance exceeds resource caps or some row has no
/// feasible site assignment (callers fall back to `derive_fixes`).
pub fn min_fix_mult(
    oracle: &mut Oracle,
    ctx: &[&Pred],
    x: &Pred,
    sites: &[PredPath],
    l_star: &Pred,
    u_star: &Pred,
) -> Option<Vec<(PredPath, Pred)>> {
    let k = sites.len();
    if k == 0 || k > MAX_SITES {
        return None;
    }
    // ---- Atoms: non-site atoms of x plus the atoms of the bounds ----
    let mut map = AtomMap::default();
    // Collect the atoms of x that are *not* inside any site subtree
    // (the `U` set of Algorithm 7).
    fn absorb_frozen(
        x: &Pred,
        prefix: &mut PredPath,
        sites: &[PredPath],
        map: &mut AtomMap,
        oracle: &mut Oracle,
        ctx: &[&Pred],
    ) {
        if sites.iter().any(|s| s == prefix) {
            return;
        }
        match x {
            Pred::And(cs) | Pred::Or(cs) => {
                for (i, c) in cs.iter().enumerate() {
                    prefix.push(i);
                    absorb_frozen(c, prefix, sites, map, oracle, ctx);
                    prefix.pop();
                }
            }
            Pred::Not(c) => {
                prefix.push(0);
                absorb_frozen(c, prefix, sites, map, oracle, ctx);
                prefix.pop();
            }
            atom => map.absorb(atom, oracle, ctx),
        }
    }
    absorb_frozen(x, &mut Vec::new(), sites, &mut map, oracle, ctx);
    map.absorb(l_star, oracle, ctx);
    map.absorb(u_star, oracle, ctx);
    let n = map.len();
    if n > MAX_MINFIX_ATOMS {
        return None;
    }
    // g★: target truth table with don't-cares.
    let g_star: TruthTable = build_truth_table(&map, oracle, ctx, l_star, u_star);

    // ---- InitFeasibility ----
    let nrows = 1u32 << n;
    let all_settings: u64 = if k == 64 { u64::MAX } else { (1u64 << (1 << k)) - 1 };
    let _ = all_settings;
    let mut feas: Feasibility = Vec::with_capacity(nrows as usize);
    for row in 0..nrows {
        match g_star.get(row) {
            Out::DontCare => feas.push(None),
            target => {
                let want = target == Out::One;
                let mut allowed: u64 = 0;
                for sb in 0..(1u32 << k) {
                    let got =
                        eval_with_sites(x, &mut Vec::new(), sites, &map, row, sb);
                    if got == want {
                        allowed |= 1 << sb;
                    }
                }
                if allowed == 0 {
                    // No site assignment reconciles this row: the caller's
                    // viability check should prevent this; bail out.
                    return None;
                }
                feas.push(Some(allowed));
            }
        }
    }

    // ---- Fix one site at a time ----
    let mut remaining: Vec<usize> = (0..k).collect();
    let mut fixes: Vec<Option<Pred>> = vec![None; k];
    while !remaining.is_empty() {
        // PickSite: prioritize the site with the most *uneven* splits
        // (most constrained).
        let mut best: (usize, f64) = (remaining[0], -1.0);
        for &d in &remaining {
            let mut score = 0.0;
            for allowed in feas.iter().flatten() {
                let total = allowed.count_ones() as f64;
                if total == 0.0 {
                    continue;
                }
                let ones = (0..(1u32 << k))
                    .filter(|sb| allowed & (1 << sb) != 0 && sb & (1 << d) != 0)
                    .count() as f64;
                score += (ones / total - 0.5).abs();
            }
            if score > best.1 {
                best = (d, score);
            }
        }
        let d = best.0;
        remaining.retain(|&i| i != d);

        // Build the partial function for site d.
        let table = TruthTable::from_fn(n, |row| {
            match feas[row as usize] {
                None => Out::DontCare,
                Some(allowed) => {
                    let mut can_zero = false;
                    let mut can_one = false;
                    for sb in 0..(1u32 << k) {
                        if allowed & (1 << sb) != 0 {
                            if sb & (1 << d) != 0 {
                                can_one = true;
                            } else {
                                can_zero = true;
                            }
                        }
                    }
                    match (can_zero, can_one) {
                        (true, true) => Out::DontCare,
                        (false, true) => Out::One,
                        (true, false) => Out::Zero,
                        (false, false) => Out::DontCare, // unreachable: allowed ≠ 0
                    }
                }
            }
        });
        let g_d = minimize(&table);
        let fix = map.dnf_to_pred(&g_d);
        // UpdateFeasibility: wire site d to g_d.
        for (row, slot) in feas.iter_mut().enumerate() {
            if let Some(allowed) = slot {
                let val = g_d.eval(row as u32);
                let mut next: u64 = 0;
                for sb in 0..(1u32 << k) {
                    if *allowed & (1 << sb) != 0 && ((sb & (1 << d) != 0) == val) {
                        next |= 1 << sb;
                    }
                }
                if next == 0 {
                    // The greedy choice wedged us; give up (fallback path).
                    return None;
                }
                *slot = Some(next);
            }
        }
        fixes[d] = Some(fix);
    }

    let mut fixes: Vec<Pred> =
        fixes.into_iter().map(|f| f.expect("all sites fixed")).collect();

    // ---- Rebalance sibling sites (DistributeFixes post-pass) ----
    // The greedy per-site minimization can dump all clauses on the last
    // sibling under a shared ∧/∨ parent, leaving earlier siblings with a
    // neutral constant. Recombining and redistributing the clauses keeps
    // the same semantics with smaller total size (Example 8's optimum).
    let mut by_parent: std::collections::BTreeMap<PredPath, Vec<usize>> =
        std::collections::BTreeMap::new();
    for (i, s) in sites.iter().enumerate() {
        if s.is_empty() {
            continue;
        }
        by_parent.entry(s[..s.len() - 1].to_vec()).or_default().push(i);
    }
    for (parent, members) in by_parent {
        if members.len() < 2 {
            continue;
        }
        let Some(parent_node) = x.at_path(&parent) else { continue };
        let is_and = match parent_node {
            Pred::And(_) => true,
            Pred::Or(_) => false,
            _ => continue,
        };
        let combined = if is_and {
            Pred::and(members.iter().map(|&i| fixes[i].clone()).collect())
        } else {
            Pred::or(members.iter().map(|&i| fixes[i].clone()).collect())
        };
        let originals: Vec<&Pred> = members
            .iter()
            .map(|&i| x.at_path(&sites[i]).expect("site path valid"))
            .collect();
        let redistributed =
            super::derive_fixes::distribute_fixes(&combined, &originals, is_and);
        let old_size: usize =
            members.iter().map(|&i| super::cost::tree_size(&fixes[i])).sum();
        let new_size: usize = redistributed.iter().map(super::cost::tree_size).sum();
        if new_size < old_size {
            for (&i, f) in members.iter().zip(redistributed) {
                fixes[i] = f;
            }
        }
    }

    Some(sites.iter().cloned().zip(fixes).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repair::cost::CostModel;
    use crate::repair::derive_fixes::derive_fixes;
    use crate::repair::Repair;
    use qrhint_sqlparse::parse_pred;

    fn apply_and_check(
        p: &Pred,
        p_star: &Pred,
        sites: &[PredPath],
        fixes: Vec<(PredPath, Pred)>,
    ) -> Repair {
        let mut ordered = Vec::new();
        for s in sites {
            ordered.push(fixes.iter().find(|(path, _)| path == s).unwrap().1.clone());
        }
        let repair = Repair { sites: sites.to_vec(), fixes: ordered };
        let applied = repair.apply(p);
        let mut o = Oracle::for_preds(&[p, p_star]);
        assert!(
            o.equiv_pred(&applied, p_star, &[]).is_true(),
            "applied {applied} ⇎ {p_star}"
        );
        repair
    }

    #[test]
    fn example15_two_sites() {
        // P★ = a=1 ∨ (b=2 ∧ c=3) ; P = c=3 ∨ (b=2 ∧ a=1), sites are the
        // atoms c=3 ([0]) and a=1 ([1,1]). Optimal fixes: a=1 and c=3.
        let p = parse_pred("c = 3 OR (b = 2 AND a = 1)").unwrap();
        let p_star = parse_pred("a = 1 OR (b = 2 AND c = 3)").unwrap();
        let sites: Vec<PredPath> = vec![vec![0], vec![1, 1]];
        let mut o = Oracle::for_preds(&[&p, &p_star]);
        let fixes = min_fix_mult(&mut o, &[], &p, &sites, &p_star, &p_star).unwrap();
        let repair = apply_and_check(&p, &p_star, &sites, fixes);
        // Both fixes should be single atoms (the optimum).
        assert!(repair.fixes.iter().all(Pred::is_atomic), "{:?}", repair.fixes);
    }

    #[test]
    fn example8_opt_beats_basic() {
        // Example 5 with sites {x4, x10, x12}: DeriveFixes returns large
        // fixes, DeriveFixesOPT finds the atomic ones (A=B, D>10, E<5).
        let p = parse_pred(
            "(a = c AND (d <> e OR d > f)) OR (a = c AND (d > 11 OR d < 7 OR e <= 5))",
        )
        .unwrap();
        let p_star = parse_pred(
            "(a = c AND (e < 5 OR d > 10 OR d < 7)) OR (a = b AND (d <> e OR d > f))",
        )
        .unwrap();
        let sites: Vec<PredPath> = vec![vec![0, 0], vec![1, 1, 0], vec![1, 1, 2]];
        let mut o = Oracle::for_preds(&[&p, &p_star]);
        let opt_fixes =
            min_fix_mult(&mut o, &[], &p, &sites, &p_star, &p_star).unwrap();
        let opt_repair = apply_and_check(&p, &p_star, &sites, opt_fixes);
        let basic_fixes = derive_fixes(&mut o, &[], &p, &sites, &p_star, &p_star);
        let basic_repair = apply_and_check(&p, &p_star, &sites, basic_fixes);
        let model = CostModel::default();
        let c_opt = model.cost(&p, &p_star, &opt_repair);
        let c_basic = model.cost(&p, &p_star, &basic_repair);
        assert!(
            c_opt <= c_basic,
            "OPT ({c_opt}) should not cost more than basic ({c_basic})"
        );
        // The paper's optimal repair has all-atomic fixes, cost 0.75.
        assert!(
            (c_opt - 0.75).abs() < 1e-9,
            "OPT should reach the paper's optimum, got {c_opt}; fixes {:?}",
            opt_repair.fixes
        );
    }

    #[test]
    fn single_site_matches_minfix() {
        let p = parse_pred("a = 1 AND b = 2").unwrap();
        let p_star = parse_pred("a = 1 AND b = 5").unwrap();
        let sites: Vec<PredPath> = vec![vec![1]];
        let mut o = Oracle::for_preds(&[&p, &p_star]);
        let fixes = min_fix_mult(&mut o, &[], &p, &sites, &p_star, &p_star).unwrap();
        let repair = apply_and_check(&p, &p_star, &sites, fixes);
        assert_eq!(repair.fixes[0], parse_pred("b = 5").unwrap());
    }

    #[test]
    fn too_many_sites_bails() {
        let p = parse_pred("a = 1 AND b = 2").unwrap();
        let mut o = Oracle::for_preds(&[&p]);
        let sites: Vec<PredPath> = (0..7).map(|i| vec![i]).collect();
        assert!(min_fix_mult(&mut o, &[], &p, &sites, &p, &p).is_none());
    }
}

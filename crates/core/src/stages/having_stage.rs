//! The HAVING stage (§7): build the aggregate context, check `V4`
//! (`H ⇔ H★` under the context) and repair via the same machinery as
//! WHERE.
//!
//! The context `C` contains (Example 11):
//! * the WHERE facts over group-constant columns, asserted scalar-ly;
//! * the aggregate axioms over the oracle's own aggregate record (per-row bounds
//!   lifted to MIN/MAX/AVG/SUM, `COUNT(*) ≥ 1`, `MIN ≤ AVG ≤ MAX`, ...).

use crate::hint::{ClauseKind, Hint, SiteHint};
use crate::mapping::signature::{equivalence_classes, EqClasses, EqItem};
use crate::oracle::{LowerEnv, Oracle};
use crate::repair::{repair_where, RepairConfig, RepairOutcome};
use qrhint_smt::FormulaId;
use qrhint_sqlast::{ColRef, Pred, Query};
use std::collections::BTreeSet;

/// Outcome of the HAVING stage.
#[derive(Debug, Clone)]
pub struct HavingOutcome {
    pub viable: bool,
    pub repair: Option<RepairOutcome>,
    pub hints: Vec<Hint>,
}

/// The group-constant column set: columns grouped directly plus columns
/// equal (via WHERE equalities) to a grouped column.
pub fn group_constant_cols(q: &Query, where_pred: &Pred) -> BTreeSet<ColRef> {
    let mut grouped: BTreeSet<ColRef> = super::groupby_stage::grouped_columns(&q.group_by);
    // Close under WHERE equalities.
    let mut probe_query = q.clone();
    probe_query.where_pred = where_pred.clone();
    let mut classes: EqClasses = equivalence_classes(&probe_query);
    let mut all_cols: Vec<ColRef> = Vec::new();
    where_pred.collect_columns(&mut all_cols);
    if let Some(h) = &q.having {
        h.collect_columns(&mut all_cols);
    }
    for item in &q.select {
        item.expr.collect_columns(&mut all_cols);
    }
    for c in all_cols {
        if grouped.contains(&c) {
            continue;
        }
        if grouped
            .iter()
            .any(|g| classes.same_class(&EqItem::Col(g.clone()), &EqItem::Col(c.clone())))
        {
            grouped.insert(c);
        }
    }
    grouped
}

/// Build the HAVING base context and install it (with the grouped
/// lowering environment) as the oracle's ambient state. Returns the
/// environment for callers that need explicit lowering.
pub fn install_having_context(
    oracle: &mut Oracle,
    where_pred: &Pred,
    h: &Pred,
    h_star: &Pred,
    grouped: &BTreeSet<ColRef>,
) -> LowerEnv {
    let env = LowerEnv::grouped(grouped.clone());
    // WHERE facts usable scalar-ly: top-level conjuncts over
    // group-constant columns only.
    let conjuncts: Vec<Pred> = match where_pred {
        Pred::And(cs) => cs.clone(),
        Pred::True => vec![],
        other => vec![other.clone()],
    };
    let mut ctx: Vec<FormulaId> = Vec::new();
    for c in conjuncts {
        let mut cols = Vec::new();
        c.collect_columns(&mut cols);
        if !c.has_aggregate() && cols.iter().all(|col| grouped.contains(col)) {
            let f = oracle.lower_pred_env(&c, &env);
            ctx.push(f);
        }
    }
    // Intern every aggregate mentioned by either HAVING so the axiom pass
    // sees them all.
    let _ = oracle.lower_pred_env(h, &env);
    let _ = oracle.lower_pred_env(h_star, &env);
    ctx.extend(oracle.aggregate_axioms(where_pred));
    oracle.set_ambient(env.clone(), ctx);
    env
}

/// Run the HAVING stage. `where_pred` is the unified WHERE (equivalent
/// between the queries after stage 2); `target_having` is the target's
/// HAVING after the stage-2 rewriting.
pub fn check_having(
    oracle: &mut Oracle,
    q_star: &Query,
    working_having: &Pred,
    where_pred: &Pred,
    target_having: &Pred,
    cfg: &RepairConfig,
) -> HavingOutcome {
    let working = working_having.clone();
    let grouped = group_constant_cols(q_star, where_pred);
    install_having_context(oracle, where_pred, &working, target_having, &grouped);
    let result = if oracle.equiv_pred(&working, target_having, &[]).is_true() {
        HavingOutcome { viable: true, repair: None, hints: vec![] }
    } else {
        let outcome = repair_where(oracle, &[], &working, target_having, cfg);
        let hints = match &outcome.repair {
            Some(r) => vec![Hint::PredicateRepair {
                clause: ClauseKind::Having,
                sites: r
                    .sites
                    .iter()
                    .zip(&r.fixes)
                    .map(|(path, fix)| SiteHint {
                        path: path.clone(),
                        current: working.at_path(path).expect("valid site").clone(),
                        fix: fix.clone(),
                    })
                    .collect(),
                cost: outcome.cost,
            }],
            None => vec![],
        };
        HavingOutcome { viable: false, repair: Some(outcome), hints }
    };
    oracle.clear_ambient();
    result
}

/// Simulate applying the HAVING repair.
pub fn apply_having_fix(q: &Query, outcome: &HavingOutcome) -> Query {
    let mut fixed = q.clone();
    if let Some(r) = outcome.repair.as_ref().and_then(|o| o.repair.as_ref()) {
        let new_h = r.apply(&q.having_pred());
        fixed.having = if new_h == Pred::True { None } else { Some(new_h) };
    }
    fixed
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrhint_sqlast::{Schema, SqlType};
    use qrhint_sqlparse::parse_query;

    fn schema() -> Schema {
        Schema::new()
            .with_table(
                "R",
                &[("a", SqlType::Int), ("b", SqlType::Int)],
                &[],
            )
            .with_table(
                "S",
                &[("c", SqlType::Int), ("d", SqlType::Int)],
                &[],
            )
    }

    #[test]
    fn example10_full_having_stage() {
        // Q★: WHERE A=C AND A>4 GROUP BY A, B HAVING A > B+3 AND 2*SUM(D) > 10
        // Q : WHERE A=C GROUP BY A, B, C HAVING C > B+3 AND SUM(D*2) > 10 AND A>4
        // After stage 2's rewriting both WHEREs unify to A=C (with A>4
        // movable); here we hand the stage the *working* WHERE (A=C) and
        // the rewritten target HAVING (with A>4 still in it).
        let q_star = parse_query(
            "SELECT r.a FROM R r, S s WHERE r.a = s.c AND r.a > 4 GROUP BY r.a, r.b \
             HAVING r.a > r.b + 3 AND 2 * SUM(s.d) > 10",
        )
        .unwrap();
        let q = parse_query(
            "SELECT r.a FROM R r, S s WHERE r.a = s.c GROUP BY r.a, r.b, s.c \
             HAVING s.c > r.b + 3 AND SUM(s.d * 2) > 10 AND r.a > 4",
        )
        .unwrap();
        // The unified WHERE at this stage: the working query's WHERE plus
        // the target-移动 conditions — per the paper the two queries'
        // FW trees are equivalent by now; use the target's WHERE.
        let where_pred = q_star.where_pred.clone();
        let target_having = q_star.having_pred();
        let mut oracle = Oracle::for_queries(&schema(), &[&q_star, &q]);
        let out = check_having(
            &mut oracle,
            &q_star,
            &q.having_pred(),
            &where_pred,
            &target_having,
            &RepairConfig::default(),
        );
        assert!(out.viable, "Example 10 HAVINGs are equivalent");
    }

    #[test]
    fn redundant_having_conjunct_is_fine() {
        // WHERE a > 100 makes HAVING MAX(a) >= 101 redundant (Example 3):
        // HAVING TRUE vs HAVING MAX(a) >= 101 must be equivalent.
        let q_star = parse_query(
            "SELECT r.b, COUNT(*) FROM R r WHERE r.a > 100 GROUP BY r.b",
        )
        .unwrap();
        let q = parse_query(
            "SELECT r.b, COUNT(*) FROM R r WHERE r.a > 100 GROUP BY r.b \
             HAVING MAX(r.a) >= 101",
        )
        .unwrap();
        let where_pred = q_star.where_pred.clone();
        let mut oracle = Oracle::for_queries(&schema(), &[&q_star, &q]);
        let out = check_having(
            &mut oracle,
            &q_star,
            &q.having_pred(),
            &where_pred,
            &Pred::True,
            &RepairConfig::default(),
        );
        assert!(out.viable, "MAX(a) >= 101 is implied by WHERE a > 100");
    }

    #[test]
    fn having_repair_produces_sites() {
        let q_star = parse_query(
            "SELECT r.b, COUNT(*) FROM R r GROUP BY r.b HAVING COUNT(*) >= 2",
        )
        .unwrap();
        let q = parse_query(
            "SELECT r.b, COUNT(*) FROM R r GROUP BY r.b HAVING COUNT(*) > 2",
        )
        .unwrap();
        let mut oracle = Oracle::for_queries(&schema(), &[&q_star, &q]);
        let out = check_having(
            &mut oracle,
            &q_star,
            &q.having_pred(),
            &Pred::True,
            &q_star.having_pred(),
            &RepairConfig::default(),
        );
        assert!(!out.viable);
        let r = out.repair.as_ref().unwrap().repair.as_ref().unwrap();
        assert_eq!(r.sites, vec![Vec::<usize>::new()]);
        let fixed = apply_having_fix(&q, &out);
        let mut oracle2 = Oracle::for_queries(&schema(), &[&q_star, &fixed]);
        let out2 = check_having(
            &mut oracle2,
            &q_star,
            &fixed.having_pred(),
            &Pred::True,
            &q_star.having_pred(),
            &RepairConfig::default(),
        );
        assert!(out2.viable);
    }

    #[test]
    fn missing_having_is_repaired_from_true() {
        let q_star = parse_query(
            "SELECT r.b FROM R r GROUP BY r.b HAVING COUNT(*) >= 2 AND MIN(r.a) > 0",
        )
        .unwrap();
        let q = parse_query("SELECT r.b FROM R r GROUP BY r.b").unwrap();
        let mut oracle = Oracle::for_queries(&schema(), &[&q_star, &q]);
        let out = check_having(
            &mut oracle,
            &q_star,
            &q.having_pred(),
            &Pred::True,
            &q_star.having_pred(),
            &RepairConfig::default(),
        );
        assert!(!out.viable);
        let fixed = apply_having_fix(&q, &out);
        assert!(fixed.having.is_some());
        let mut oracle2 = Oracle::for_queries(&schema(), &[&q_star, &fixed]);
        assert!(oracle2
            .equiv_pred(&fixed.having_pred(), &q_star.having_pred(), &[])
            .is_true());
    }

    #[test]
    fn count_distinct_upper_bound_axiom() {
        // HAVING COUNT(DISTINCT a) <= COUNT(*) is a tautology under the
        // axioms: HAVING TRUE should be equivalent to it.
        let q_star = parse_query(
            "SELECT r.b FROM R r GROUP BY r.b",
        )
        .unwrap();
        let q = parse_query(
            "SELECT r.b FROM R r GROUP BY r.b HAVING COUNT(DISTINCT r.a) <= COUNT(*)",
        )
        .unwrap();
        let mut oracle = Oracle::for_queries(&schema(), &[&q_star, &q]);
        let out = check_having(
            &mut oracle,
            &q_star,
            &q.having_pred(),
            &Pred::True,
            &Pred::True,
            &RepairConfig::default(),
        );
        assert!(out.viable);
    }
}

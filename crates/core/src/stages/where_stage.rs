//! The WHERE stage (§5): viability check `V2` (`P ⇔ P★`), the SPJA
//! look-ahead that legally moves conditions between the target's WHERE
//! and HAVING (§3.1 stage 2 "twist"), and repair via `RepairWhere`.

use crate::hint::{ClauseKind, Hint, SiteHint};
use crate::mapping::signature::{equivalence_classes, EqClasses, EqItem};
use crate::oracle::Oracle;
use crate::repair::{repair_where, RepairConfig, RepairOutcome};
use qrhint_sqlast::{ColRef, Pred, Query, Scalar};

/// Outcome of the WHERE stage.
#[derive(Debug, Clone)]
pub struct WhereOutcome {
    /// Did the working WHERE pass `V2` against the (possibly rewritten)
    /// target WHERE without repair?
    pub viable: bool,
    /// The target WHERE after the look-ahead rewriting.
    pub target_where: Pred,
    /// The target HAVING after the look-ahead rewriting.
    pub target_having: Option<Pred>,
    /// The working query's WHERE after normalization (its own movable
    /// HAVING conjuncts lifted in); repair sites refer to this tree.
    pub working_where: Pred,
    /// The working query's residual HAVING after normalization.
    pub working_having: Option<Pred>,
    /// The repair, when `V2` failed.
    pub repair: Option<RepairOutcome>,
    /// Rendered hints.
    pub hints: Vec<Hint>,
}

/// Is every column of `e` group-constant in `q` — i.e. listed in GROUP BY
/// directly, or equal (via WHERE equalities) to a grouped column?
fn group_constant(e: &Scalar, q: &Query, classes: &mut EqClasses) -> bool {
    let grouped: Vec<ColRef> = q
        .group_by
        .iter()
        .filter_map(|g| match g {
            Scalar::Col(c) => Some(c.clone()),
            _ => None,
        })
        .collect();
    let mut cols = Vec::new();
    e.collect_columns(&mut cols);
    cols.iter().all(|c| {
        grouped.contains(c)
            || grouped
                .iter()
                .any(|g| classes.same_class(&EqItem::Col(g.clone()), &EqItem::Col(c.clone())))
    })
}

/// A top-level conjunct is *movable* between WHERE and HAVING when it is
/// aggregate-free and references only group-constant expressions.
fn movable_conjuncts(p: &Pred, q: &Query, classes: &mut EqClasses) -> Vec<usize> {
    let conjuncts: Vec<&Pred> = match p {
        Pred::And(cs) => cs.iter().collect(),
        Pred::True => return vec![],
        other => vec![other],
    };
    conjuncts
        .iter()
        .enumerate()
        .filter(|(_, c)| {
            if c.has_aggregate() {
                return false;
            }
            let mut cols = Vec::new();
            c.collect_columns(&mut cols);
            cols.iter().all(|col| {
                group_constant(&Scalar::Col(col.clone()), q, classes)
            })
        })
        .map(|(i, _)| i)
        .collect()
}

fn conjunct_list(p: &Pred) -> Vec<Pred> {
    match p {
        Pred::And(cs) => cs.clone(),
        Pred::True => vec![],
        other => vec![other.clone()],
    }
}

/// Normalize a query's WHERE/HAVING split: move every *movable* HAVING
/// conjunct (aggregate-free, over group-constant expressions — a legal,
/// semantics-preserving rewrite) into WHERE. Applying this to **both**
/// queries implements the stage-2 "look-ahead" of §3.1: a condition the
/// user placed in WHERE while the target has it in HAVING (Example 1's
/// `drinker = 'Amy'`), or vice versa, never triggers a misleading hint.
pub fn normalize_split(q: &Query) -> (Pred, Option<Pred>) {
    if q.having.is_none() {
        return (q.where_pred.clone(), None);
    }
    let mut classes = equivalence_classes(q);
    let having = q.having_pred();
    let movable = movable_conjuncts(&having, q, &mut classes);
    let mut where_conjs = conjunct_list(&q.where_pred);
    let mut having_conjs = conjunct_list(&having);
    for &i in movable.iter().rev() {
        let c = having_conjs.remove(i);
        where_conjs.push(c);
    }
    let new_where = Pred::and(where_conjs);
    let new_having = if having_conjs.is_empty() {
        None
    } else {
        Some(Pred::and(having_conjs))
    };
    (new_where, new_having)
}

/// Rewrite the target's split against the working query: both queries
/// are normalized (movable HAVING conjuncts lifted into WHERE), yielding
/// the pair `(target_where, target_having)` the later stages compare
/// against. The working query's normalized split is obtained by calling
/// [`normalize_split`] on it directly.
pub fn rewrite_target_split(
    _oracle: &mut Oracle,
    q_star: &Query,
    q: &Query,
) -> (Pred, Option<Pred>) {
    if !q_star.is_spja() || !q.is_spja() {
        return (q_star.where_pred.clone(), q_star.having.clone());
    }
    normalize_split(q_star)
}

/// Run the WHERE stage: look-ahead rewriting, viability check, repair.
///
/// `domain_ctx` carries per-row domain assertions that hold on every row
/// of `F(Q)` — today the schema's `CHECK` constraints instantiated per
/// FROM alias ([`qrhint_sqlast::Schema::domain_context`]). They enter
/// both the viability check and the repair search as solver context
/// (§3's `IsEquivC`), so equivalences that hold only *under the domain*
/// (e.g. `area <> 'UNKNOWN'` being implied by a CHECK) stop producing
/// spurious hints.
pub fn check_where(
    oracle: &mut Oracle,
    q_star: &Query,
    q: &Query,
    cfg: &RepairConfig,
    domain_ctx: &[Pred],
) -> WhereOutcome {
    let ctx: Vec<&Pred> = domain_ctx.iter().collect();
    let (target_where, target_having) = rewrite_target_split(oracle, q_star, q);
    let (working_where, working_having) = if q_star.is_spja() && q.is_spja() {
        normalize_split(q)
    } else {
        (q.where_pred.clone(), q.having.clone())
    };
    if oracle.equiv_pred(&working_where, &target_where, &ctx).is_true() {
        return WhereOutcome {
            viable: true,
            target_where,
            target_having,
            working_where,
            working_having,
            repair: None,
            hints: vec![],
        };
    }
    let outcome = repair_where(oracle, &ctx, &working_where, &target_where, cfg);
    let hints = match &outcome.repair {
        Some(r) => vec![Hint::PredicateRepair {
            clause: ClauseKind::Where,
            sites: r
                .sites
                .iter()
                .zip(&r.fixes)
                .map(|(path, fix)| SiteHint {
                    path: path.clone(),
                    current: working_where.at_path(path).expect("valid site").clone(),
                    fix: fix.clone(),
                })
                .collect(),
            cost: outcome.cost,
        }],
        None => vec![],
    };
    WhereOutcome {
        viable: false,
        target_where,
        target_having,
        working_where,
        working_having,
        repair: Some(outcome),
        hints,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrhint_sqlparse::parse_query;

    #[test]
    fn example1_having_condition_moves_to_where() {
        let q_star = parse_query(
            "SELECT L.beer, S1.bar, COUNT(*)
             FROM Likes L, Frequents F, Serves S1, Serves S2
             WHERE L.drinker = F.drinker AND F.bar = S1.bar
               AND L.beer = S1.beer AND S1.beer = S2.beer
               AND S1.price <= S2.price
             GROUP BY F.drinker, L.beer, S1.bar
             HAVING F.drinker = 'Amy'",
        )
        .unwrap();
        // A working query whose WHERE already has drinker = 'Amy'.
        let q = parse_query(
            "SELECT l.beer, s1.bar, COUNT(*)
             FROM Likes l, Frequents f, Serves s1, Serves s2
             WHERE l.drinker = 'Amy' AND l.drinker = f.drinker AND f.bar = s1.bar
               AND l.beer = s1.beer AND s1.beer = s2.beer
               AND s1.price <= s2.price
             GROUP BY f.drinker, l.beer, s1.bar",
        )
        .unwrap();
        // Unify aliases (trivial mapping l→l etc. — same alias names).
        let mapping = crate::mapping::table_mapping(&q_star, &q).unwrap();
        let unified = crate::mapping::unify_target(&q_star, &mapping);
        let mut oracle = Oracle::for_queries(
            &test_schema(),
            &[&unified, &q],
        );
        let (tw, th) = rewrite_target_split(&mut oracle, &unified, &q);
        // The HAVING condition moved into WHERE…
        let printed = tw.to_string();
        assert!(printed.contains("drinker = 'Amy'"), "{printed}");
        // …and the target HAVING became empty/TRUE.
        assert!(th.is_none() || th == Some(Pred::True), "{th:?}");
        // And now V2 passes.
        let out = check_where(&mut oracle, &unified, &q, &RepairConfig::default(), &[]);
        assert!(out.viable);
    }

    fn test_schema() -> qrhint_sqlast::Schema {
        use qrhint_sqlast::SqlType::*;
        qrhint_sqlast::Schema::new()
            .with_table("Likes", &[("drinker", Str), ("beer", Str)], &[])
            .with_table("Frequents", &[("drinker", Str), ("bar", Str)], &[])
            .with_table("Serves", &[("bar", Str), ("beer", Str), ("price", Int)], &[])
    }

    #[test]
    fn simple_where_repair_with_hint() {
        let q_star = parse_query(
            "SELECT s.bar FROM Serves s WHERE s.price >= 3 AND s.beer = 'IPA'",
        )
        .unwrap();
        let q = parse_query(
            "SELECT s.bar FROM Serves s WHERE s.price > 3 AND s.beer = 'IPA'",
        )
        .unwrap();
        let mut oracle = Oracle::for_queries(&test_schema(), &[&q_star, &q]);
        let out = check_where(&mut oracle, &q_star, &q, &RepairConfig::default(), &[]);
        assert!(!out.viable);
        let repair = out.repair.as_ref().unwrap().repair.as_ref().unwrap();
        assert_eq!(repair.sites.len(), 1);
        assert_eq!(repair.sites[0], vec![0]);
        assert_eq!(out.hints.len(), 1);
        assert!(out.hints[0].to_string().contains("s.price > 3"));
    }

    #[test]
    fn where_to_having_move() {
        // Target keeps the condition in WHERE; working query put it in
        // HAVING (legal: grouped column). The rewrite moves the target's
        // conjunct so V2 passes.
        let q_star = parse_query(
            "SELECT s.bar, COUNT(*) FROM Serves s \
             WHERE s.bar = 'Joyce' GROUP BY s.bar",
        )
        .unwrap();
        let q = parse_query(
            "SELECT s.bar, COUNT(*) FROM Serves s \
             GROUP BY s.bar HAVING s.bar = 'Joyce'",
        )
        .unwrap();
        let mut oracle = Oracle::for_queries(&test_schema(), &[&q_star, &q]);
        let out = check_where(&mut oracle, &q_star, &q, &RepairConfig::default(), &[]);
        assert!(out.viable, "target_where = {}", out.target_where);
        // The working query's movable HAVING conjunct was lifted into its
        // WHERE; the residual HAVINGs on both sides are empty.
        assert_eq!(out.working_having, None);
        assert!(out.working_where.to_string().contains("'Joyce'"));
    }

    #[test]
    fn non_group_constant_conditions_do_not_move() {
        // s.price is not grouped: a HAVING-like condition on it cannot
        // legally move (it isn't even valid SQL in HAVING, but the rewrite
        // must not try).
        let q_star = parse_query(
            "SELECT s.bar, COUNT(*) FROM Serves s \
             WHERE s.price > 3 GROUP BY s.bar",
        )
        .unwrap();
        let q = parse_query(
            "SELECT s.bar, COUNT(*) FROM Serves s GROUP BY s.bar",
        )
        .unwrap();
        let mut oracle = Oracle::for_queries(&test_schema(), &[&q_star, &q]);
        let (tw, _) = rewrite_target_split(&mut oracle, &q_star, &q);
        assert!(tw.to_string().contains("price > 3"));
    }
}

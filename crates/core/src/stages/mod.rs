//! The five hinting stages (§4–§8).

pub mod from_stage;
pub mod groupby_stage;
pub mod having_stage;
pub mod select_stage;
pub mod where_stage;

pub use from_stage::{apply_from_fix, check_from, FromOutcome};
pub use groupby_stage::{fix_grouping, grouped_columns, GroupByOutcome};
pub use having_stage::{check_having, HavingOutcome};
pub use select_stage::{fix_select, SelectOutcome};
pub use where_stage::{check_where, WhereOutcome};

//! The GROUP BY stage (§6): `FixGrouping` (Algorithm 4) — the two-tuple
//! encoding of grouping equivalence, computing a strongly minimal Δ− and
//! weakly minimal Δ+ (Lemma 6.2).

use crate::hint::Hint;
use crate::oracle::{LowerEnv, Oracle};
use qrhint_smt::TriBool;
use qrhint_sqlast::{ColRef, Pred, Query, Scalar};
use std::collections::BTreeSet;

/// Outcome of `FixGrouping`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupByOutcome {
    /// Both Δ− and Δ+ empty.
    pub viable: bool,
    /// Indices into the working GROUP BY list that must be removed (Δ−).
    pub remove: Vec<usize>,
    /// Indices into the target GROUP BY list that must be added (Δ+).
    pub add: Vec<usize>,
}

impl GroupByOutcome {
    /// Render the stage hints: Δ− expressions are revealed ("must-fix",
    /// strong minimality); Δ+ is only counted (weak minimality).
    pub fn hints(&self, working_group_by: &[Scalar]) -> Vec<Hint> {
        let mut out: Vec<Hint> = self
            .remove
            .iter()
            .map(|&i| Hint::GroupByRemove { expr: working_group_by[i].clone() })
            .collect();
        if !self.add.is_empty() {
            out.push(Hint::GroupByMissing { count: self.add.len() });
        }
        out
    }
}

/// The set of group-constant columns of a query: plain columns listed in
/// GROUP BY (used by the HAVING/SELECT stages' lowering environment).
pub fn grouped_columns(group_by: &[Scalar]) -> BTreeSet<ColRef> {
    group_by
        .iter()
        .filter_map(|g| match g {
            Scalar::Col(c) => Some(c.clone()),
            _ => None,
        })
        .collect()
}

/// `FixGrouping(P, ®o, ®o★)` (Algorithm 4). `p` is the (already unified
/// and equivalent) WHERE predicate; `o` / `o_star` the GROUP BY
/// expression lists of the working and target queries.
pub fn fix_grouping(
    oracle: &mut Oracle,
    p: &Pred,
    o: &[Scalar],
    o_star: &[Scalar],
) -> GroupByOutcome {
    let env1 = LowerEnv::tuple(1);
    let env2 = LowerEnv::tuple(2);
    // P[t1] ∧ P[t2]
    let p1 = oracle.lower_pred_env(p, &env1);
    let p2 = oracle.lower_pred_env(p, &env2);
    let both = oracle.and_f(vec![p1, p2]);

    // All tag-equality pairs up front, one lock acquisition per list
    // (target first, then working — the same first-use lowering order
    // as building G★ and then walking Δ−).
    let star_pairs = oracle.tuple_eq_formulas(o_star, &env1, &env2);
    let o_pairs = oracle.tuple_eq_formulas(o, &env1, &env2);

    // G★ = ∧_i o★_i[t1] = o★_i[t2]
    let g_star = oracle.and_f(star_pairs.iter().map(|(eq, _)| *eq).collect());

    // Δ−: o_i is wrong if two tuples grouped together by ®o★ can be split
    // by o_i. The `P[t1] ∧ P[t2] ∧ G★` prefix is shared by every
    // candidate, so it is pushed once and each `ne` checked against it.
    let mut remove = Vec::new();
    let batch = oracle.batch_ctx(&[both, g_star]);
    oracle.equiv_batches += 1;
    oracle.equiv_batch_candidates += o_pairs.len() as u64;
    for (i, (_, ne)) in o_pairs.iter().enumerate() {
        if oracle.sat_batch(*ne, &batch) == TriBool::True {
            remove.push(i);
        }
    }

    // G = ∧ of kept working expressions.
    let mut g = oracle.and_f(
        o_pairs
            .iter()
            .enumerate()
            .filter(|(i, _)| !remove.contains(i))
            .map(|(_, (eq, _))| *eq)
            .collect(),
    );

    // Δ+: o★_i must be added if two tuples grouped together by G can be
    // split by o★_i; after adding, G is strengthened with its equality.
    let mut add = Vec::new();
    for (i, (eq, ne)) in star_pairs.iter().enumerate() {
        let q = oracle.and_f(vec![both, g, *ne]);
        if oracle.sat_f(q, &[]) == TriBool::True {
            add.push(i);
            g = oracle.and_f(vec![g, *eq]);
        }
    }

    GroupByOutcome { viable: remove.is_empty() && add.is_empty(), remove, add }
}

/// Simulate applying the fix: drop Δ− entries, append the Δ+ target
/// expressions.
pub fn apply_grouping_fix(q: &Query, o_star: &[Scalar], outcome: &GroupByOutcome) -> Query {
    let mut fixed = q.clone();
    fixed.group_by = q
        .group_by
        .iter()
        .enumerate()
        .filter(|(i, _)| !outcome.remove.contains(i))
        .map(|(_, e)| e.clone())
        .collect();
    for &i in &outcome.add {
        fixed.group_by.push(o_star[i].clone());
    }
    fixed
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrhint_sqlparse::{parse_pred, parse_scalar};

    fn scalars(list: &[&str]) -> Vec<Scalar> {
        list.iter().map(|s| parse_scalar(s).unwrap()).collect()
    }

    #[test]
    fn example_6_1_equivalent_groupings() {
        // Q★: GROUP BY B, D ; Q: GROUP BY C+D, C under WHERE B=C.
        let p = parse_pred("r.b = s.c").unwrap();
        let o_star = scalars(&["r.b", "s.d"]);
        let o = scalars(&["s.c + s.d", "s.c"]);
        let mut oracle = Oracle::for_preds(&[&p]);
        let out = fix_grouping(&mut oracle, &p, &o, &o_star);
        assert!(out.viable, "{out:?}");
    }

    #[test]
    fn order_and_duplicates_do_not_matter() {
        let p = Pred::True;
        let o_star = scalars(&["t.a", "t.b"]);
        let o = scalars(&["t.b", "t.a", "t.a"]);
        let mut oracle = Oracle::for_preds(&[]);
        let out = fix_grouping(&mut oracle, &p, &o, &o_star);
        assert!(out.viable, "{out:?}");
    }

    #[test]
    fn wrong_expression_lands_in_delta_minus() {
        // Working groups by t.c which splits groups that ®o★ = [t.a]
        // keeps together.
        let p = Pred::True;
        let o_star = scalars(&["t.a"]);
        let o = scalars(&["t.a", "t.c"]);
        let mut oracle = Oracle::for_preds(&[]);
        let out = fix_grouping(&mut oracle, &p, &o, &o_star);
        assert_eq!(out.remove, vec![1]);
        assert!(out.add.is_empty());
        let hints = out.hints(&o);
        assert_eq!(hints.len(), 1);
        assert!(hints[0].to_string().contains("t.c"));
    }

    #[test]
    fn missing_expression_lands_in_delta_plus() {
        let p = Pred::True;
        let o_star = scalars(&["t.a", "t.b"]);
        let o = scalars(&["t.a"]);
        let mut oracle = Oracle::for_preds(&[]);
        let out = fix_grouping(&mut oracle, &p, &o, &o_star);
        assert!(out.remove.is_empty());
        assert_eq!(out.add, vec![1]);
        let hints = out.hints(&o);
        assert!(hints[0].to_string().contains("missing an expression"));
    }

    #[test]
    fn where_equalities_excuse_renamed_columns() {
        // GROUP BY t.a vs GROUP BY s.b is fine under WHERE t.a = s.b.
        let p = parse_pred("t.a = s.b").unwrap();
        let o_star = scalars(&["t.a"]);
        let o = scalars(&["s.b"]);
        let mut oracle = Oracle::for_preds(&[&p]);
        let out = fix_grouping(&mut oracle, &p, &o, &o_star);
        assert!(out.viable, "{out:?}");
        // Without the equality they differ.
        let mut oracle2 = Oracle::for_preds(&[]);
        let out2 = fix_grouping(&mut oracle2, &Pred::True, &o, &o_star);
        assert!(!out2.viable);
        assert_eq!(out2.remove, vec![0]);
        assert_eq!(out2.add, vec![0]);
    }

    #[test]
    fn spurious_grouping_by_constant_like_expression() {
        // Grouping by an expression that is constant under WHERE (t.a = 5)
        // partitions nothing: equivalent to not grouping by it.
        let p = parse_pred("t.a = 5").unwrap();
        let o_star: Vec<Scalar> = scalars(&["t.b"]);
        let o = scalars(&["t.b", "t.a"]);
        let mut oracle = Oracle::for_preds(&[&p]);
        let out = fix_grouping(&mut oracle, &p, &o, &o_star);
        assert!(out.viable, "constant column grouping is harmless: {out:?}");
    }

    #[test]
    fn grouped_columns_extraction() {
        let g = grouped_columns(&scalars(&["t.a", "t.b + 1", "s.c"]));
        assert!(g.contains(&ColRef::new("t", "a")));
        assert!(g.contains(&ColRef::new("s", "c")));
        assert_eq!(g.len(), 2);
    }

    #[test]
    fn apply_fix_roundtrip() {
        let p = Pred::True;
        let o_star = scalars(&["t.a", "t.b"]);
        let o = scalars(&["t.c"]);
        let mut oracle = Oracle::for_preds(&[]);
        let out = fix_grouping(&mut oracle, &p, &o, &o_star);
        let q = qrhint_sqlast::Query {
            distinct: false,
            select: vec![qrhint_sqlast::SelectItem::expr(parse_scalar("COUNT(*)").unwrap())],
            from: vec![qrhint_sqlast::TableRef::plain("T")],
            where_pred: Pred::True,
            group_by: o.clone(),
            having: None,
        };
        let fixed = apply_grouping_fix(&q, &o_star, &out);
        let mut oracle2 = Oracle::for_preds(&[]);
        let out2 = fix_grouping(&mut oracle2, &p, &fixed.group_by, &o_star);
        assert!(out2.viable, "after applying the fix grouping must be viable");
    }
}

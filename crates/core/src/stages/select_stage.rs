//! The SELECT stage (§8): `FixSelect` (Algorithm 9) — positional
//! equivalence of output expressions under the WHERE (SPJ) or HAVING
//! (SPJA) context.

use crate::hint::Hint;
use crate::oracle::{LowerEnv, Oracle};
use qrhint_sqlast::{Query, Scalar};

/// Outcome of `FixSelect`: positions (0-based) to replace/remove in the
/// working SELECT and positions of the target SELECT to add.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelectOutcome {
    pub viable: bool,
    /// Mismatched or extraneous working positions (Δ−).
    pub remove: Vec<usize>,
    /// Target positions to add/substitute (Δ+).
    pub add: Vec<usize>,
}

impl SelectOutcome {
    /// Render hints.
    pub fn hints(&self, working: &[Scalar]) -> Vec<Hint> {
        let mut out = Vec::new();
        let common: Vec<usize> =
            self.remove.iter().copied().filter(|i| self.add.contains(i)).collect();
        for &i in &common {
            out.push(Hint::SelectReplace { position: i + 1, current: working[i].clone() });
        }
        for &i in &self.remove {
            if !common.contains(&i) {
                out.push(Hint::SelectRemove { position: i + 1, current: working[i].clone() });
            }
        }
        let missing = self.add.iter().filter(|i| !common.contains(i)).count();
        if missing > 0 {
            out.push(Hint::SelectMissing { count: missing });
        }
        out
    }
}

/// Algorithm 9. The oracle's ambient state must already carry the
/// stage-appropriate context (WHERE facts for SPJ; the HAVING context for
/// SPJA — the pipeline installs it).
pub fn fix_select(
    oracle: &mut Oracle,
    env: &LowerEnv,
    working: &[Scalar],
    target: &[Scalar],
) -> SelectOutcome {
    let n = working.len().min(target.len());
    let mut remove = Vec::new();
    let mut add = Vec::new();
    // One shared preparation of the ambient context for the whole
    // positional list (per-position verdicts and cache keys unchanged).
    let pairs: Vec<(&Scalar, &Scalar)> = (0..n).map(|i| (&working[i], &target[i])).collect();
    for (i, verdict) in oracle.equiv_scalar_batch(&pairs, env, &[]).into_iter().enumerate() {
        if !verdict.is_true() {
            remove.push(i);
            add.push(i);
        }
    }
    for (i, _) in working.iter().enumerate().skip(n) {
        remove.push(i);
    }
    for (i, _) in target.iter().enumerate().skip(n) {
        add.push(i);
    }
    SelectOutcome { viable: remove.is_empty() && add.is_empty(), remove, add }
}

/// Simulate applying the fix: substitute mismatched positions with the
/// target expression, drop extras, append missing.
pub fn apply_select_fix(q: &Query, target: &[Scalar], outcome: &SelectOutcome) -> Query {
    let mut fixed = q.clone();
    let mut select: Vec<qrhint_sqlast::SelectItem> = Vec::new();
    for (i, item) in q.select.iter().enumerate() {
        if outcome.remove.contains(&i) {
            if i < target.len() && outcome.add.contains(&i) {
                select.push(qrhint_sqlast::SelectItem::expr(target[i].clone()));
            }
            // else: dropped entirely
        } else {
            select.push(item.clone());
        }
    }
    for &i in &outcome.add {
        if i >= q.select.len() {
            select.push(qrhint_sqlast::SelectItem::expr(target[i].clone()));
        }
    }
    fixed.select = select;
    fixed
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrhint_smt::Formula;
    use qrhint_sqlast::{ColRef, Pred};
    use qrhint_sqlparse::{parse_pred, parse_scalar};
    use std::collections::BTreeSet;

    fn scalars(list: &[&str]) -> Vec<Scalar> {
        list.iter().map(|s| parse_scalar(s).unwrap()).collect()
    }

    #[test]
    fn identical_lists_are_viable() {
        let mut oracle = Oracle::for_preds(&[]);
        let out = fix_select(
            &mut oracle,
            &LowerEnv::plain(),
            &scalars(&["t.a", "COUNT(*)"]),
            &scalars(&["t.a", "COUNT(*)"]),
        );
        assert!(out.viable);
    }

    #[test]
    fn where_context_excuses_renamed_columns() {
        // Example 1's SELECT subtlety: s2.beer vs likes.beer under
        // WHERE likes.beer = s2.beer — no spurious hint.
        let p = parse_pred("likes.beer = s2.beer").unwrap();
        let mut oracle = Oracle::for_preds(&[&p]);
        let ctx = oracle.lower_pred(&p);
        oracle.set_ambient(LowerEnv::plain(), vec![ctx]);
        let out = fix_select(
            &mut oracle,
            &LowerEnv::plain(),
            &scalars(&["s2.beer"]),
            &scalars(&["likes.beer"]),
        );
        assert!(out.viable, "{out:?}");
        oracle.clear_ambient();
        // Without the context the expressions differ.
        let mut oracle2 = Oracle::for_preds(&[&p]);
        let out2 = fix_select(
            &mut oracle2,
            &LowerEnv::plain(),
            &scalars(&["s2.beer"]),
            &scalars(&["likes.beer"]),
        );
        assert!(!out2.viable);
    }

    #[test]
    fn positional_mismatch_detected() {
        let mut oracle = Oracle::for_preds(&[]);
        let working = scalars(&["t.a", "t.b"]);
        let out = fix_select(
            &mut oracle,
            &LowerEnv::plain(),
            &working,
            &scalars(&["t.b", "t.a"]),
        );
        assert_eq!(out.remove, vec![0, 1]);
        assert_eq!(out.add, vec![0, 1]);
        let hints = out.hints(&working);
        assert_eq!(hints.len(), 2);
        assert!(hints.iter().all(|h| matches!(h, Hint::SelectReplace { .. })));
    }

    #[test]
    fn arity_mismatches() {
        let mut oracle = Oracle::for_preds(&[]);
        // Extra column.
        let working = scalars(&["t.a", "t.b"]);
        let out = fix_select(&mut oracle, &LowerEnv::plain(), &working, &scalars(&["t.a"]));
        assert_eq!(out.remove, vec![1]);
        assert!(out.add.is_empty());
        assert!(matches!(out.hints(&working)[0], Hint::SelectRemove { position: 2, .. }));
        // Missing column.
        let working2 = scalars(&["t.a"]);
        let out2 =
            fix_select(&mut oracle, &LowerEnv::plain(), &working2, &scalars(&["t.a", "t.b"]));
        assert!(out2.remove.is_empty());
        assert_eq!(out2.add, vec![1]);
        assert!(matches!(out2.hints(&working2)[0], Hint::SelectMissing { count: 1 }));
    }

    #[test]
    fn aggregate_equivalence_in_select() {
        // 2*SUM(d) vs SUM(d*2) with aggregate canonicalization.
        let mut oracle = Oracle::for_preds(&[]);
        let out = fix_select(
            &mut oracle,
            &LowerEnv::plain(),
            &scalars(&["SUM(s.d * 2)"]),
            &scalars(&["2 * SUM(s.d)"]),
        );
        assert!(out.viable, "{out:?}");
        // COUNT(*) vs COUNT(*)+1 differs (footnote 1's wrong hint).
        let out2 = fix_select(
            &mut oracle,
            &LowerEnv::plain(),
            &scalars(&["COUNT(*)"]),
            &scalars(&["COUNT(*) + 1"]),
        );
        assert!(!out2.viable);
    }

    #[test]
    fn grouped_env_collapses_aggregates() {
        let grouped: BTreeSet<ColRef> = [ColRef::new("t", "a")].into_iter().collect();
        let env = LowerEnv::grouped(grouped);
        let mut oracle = Oracle::for_preds(&[]);
        let out = fix_select(
            &mut oracle,
            &env,
            &scalars(&["MIN(t.a)"]),
            &scalars(&["t.a"]),
        );
        assert!(out.viable, "{out:?}");
    }

    #[test]
    fn apply_fix_yields_viable_select() {
        let mut oracle = Oracle::for_preds(&[]);
        let target = scalars(&["t.a", "COUNT(*)"]);
        let q = qrhint_sqlast::Query {
            distinct: false,
            select: vec![
                qrhint_sqlast::SelectItem::expr(parse_scalar("t.b").unwrap()),
                qrhint_sqlast::SelectItem::expr(parse_scalar("COUNT(*)").unwrap()),
                qrhint_sqlast::SelectItem::expr(parse_scalar("t.c").unwrap()),
            ],
            from: vec![qrhint_sqlast::TableRef::plain("T")],
            where_pred: Pred::True,
            group_by: vec![parse_scalar("t.a").unwrap()],
            having: None,
        };
        let working: Vec<Scalar> = q.select.iter().map(|s| s.expr.clone()).collect();
        let out = fix_select(&mut oracle, &LowerEnv::plain(), &working, &target);
        let fixed = apply_select_fix(&q, &target, &out);
        let fixed_exprs: Vec<Scalar> = fixed.select.iter().map(|s| s.expr.clone()).collect();
        let out2 = fix_select(&mut oracle, &LowerEnv::plain(), &fixed_exprs, &target);
        assert!(out2.viable, "{out2:?} for {fixed_exprs:?}");
        let _ = Formula::True;
    }
}

//! The FROM stage (§4): viability check `V1` (table multiset equality),
//! hints, and the simulated user fix.

use crate::hint::Hint;
use qrhint_sqlast::{Pred, Query, Scalar, TableRef};

/// Outcome of the FROM-stage check.
#[derive(Debug, Clone)]
pub struct FromOutcome {
    /// `Tables(Q) = Tables(Q★)` as multisets (V1).
    pub viable: bool,
    /// One hint per table whose reference counts differ.
    pub hints: Vec<Hint>,
}

/// Check `V1` and produce per-table count hints (Lemma 4.1 / 4.2).
pub fn check_from(q_star: &Query, q: &Query) -> FromOutcome {
    let want = q_star.table_multiset();
    let have = q.table_multiset();
    let mut hints = Vec::new();
    for (table, &w) in &want {
        let h = have.get(table).copied().unwrap_or(0);
        if h != w {
            hints.push(Hint::FromTableCount { table: table.clone(), have: h, want: w });
        }
    }
    for (table, &h) in &have {
        if !want.contains_key(table) {
            hints.push(Hint::FromTableCount { table: table.clone(), have: h, want: 0 });
        }
    }
    FromOutcome { viable: hints.is_empty(), hints }
}

/// Simulate a user applying the FROM-stage fix: add missing table
/// references (with fresh aliases) and drop extra ones, scrubbing
/// references to dropped aliases from the other clauses (the "trivial
/// edits" of footnote 4 — later stages repair them semantically).
pub fn apply_from_fix(q: &Query, q_star: &Query) -> Query {
    let want = q_star.table_multiset();
    let mut fixed = q.clone();
    // Remove extra references (prefer later duplicates).
    let mut removed_aliases: Vec<String> = Vec::new();
    let mut counts = q.table_multiset();
    for (table, have) in counts.clone() {
        let target = want.get(&table).copied().unwrap_or(0);
        let mut excess = have.saturating_sub(target);
        while excess > 0 {
            // Drop the last FROM entry for this table.
            if let Some(pos) = fixed.from.iter().rposition(|t| t.table == table) {
                removed_aliases.push(fixed.from[pos].alias.clone());
                fixed.from.remove(pos);
            }
            excess -= 1;
        }
        counts.insert(table, target.min(have));
    }
    // Add missing references.
    for (table, &target) in &want {
        let have = fixed.from.iter().filter(|t| t.table == *table).count();
        for i in have..target {
            let alias = if i == 0 && !fixed.from.iter().any(|t| t.alias == *table) {
                table.clone()
            } else {
                let mut n = i + 1;
                loop {
                    let candidate = format!("{table}{n}");
                    if !fixed.from.iter().any(|t| t.alias == candidate) {
                        break candidate;
                    }
                    n += 1;
                }
            };
            fixed.from.push(TableRef { table: table.clone(), alias });
        }
    }
    // Scrub references to removed aliases (syntactic correctness only).
    if !removed_aliases.is_empty() {
        let touches = |e: &Scalar| -> bool {
            let mut cols = Vec::new();
            e.collect_columns(&mut cols);
            cols.iter().any(|c| removed_aliases.contains(&c.table))
        };
        fixed.where_pred = scrub_pred(&fixed.where_pred, &touches);
        if let Some(h) = &fixed.having {
            fixed.having = Some(scrub_pred(h, &touches));
        }
        fixed.group_by.retain(|g| !touches(g));
        fixed.select.retain(|s| !touches(&s.expr));
        if fixed.select.is_empty() {
            // Keep the query syntactically valid; SELECT stage will fix.
            fixed.select.push(qrhint_sqlast::SelectItem::expr(Scalar::Int(1)));
        }
    }
    fixed
}

/// Replace atoms touching removed aliases with TRUE (conservative
/// syntactic scrub).
fn scrub_pred(p: &Pred, touches: &impl Fn(&Scalar) -> bool) -> Pred {
    match p {
        Pred::Cmp(l, _, r) => {
            if touches(l) || touches(r) {
                Pred::True
            } else {
                p.clone()
            }
        }
        Pred::Like { expr, .. } => {
            if touches(expr) {
                Pred::True
            } else {
                p.clone()
            }
        }
        Pred::And(cs) => Pred::and(cs.iter().map(|c| scrub_pred(c, touches)).collect()),
        Pred::Or(cs) => Pred::or(cs.iter().map(|c| scrub_pred(c, touches)).collect()),
        Pred::Not(c) => Pred::not(scrub_pred(c, touches)),
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrhint_sqlparse::parse_query;

    #[test]
    fn example1_missing_frequents() {
        let q_star = parse_query(
            "SELECT l.beer FROM Likes L, Frequents F, Serves S1, Serves S2",
        )
        .unwrap();
        let q = parse_query("SELECT s2.beer FROM Likes, Serves s1, Serves s2").unwrap();
        let out = check_from(&q_star, &q);
        assert!(!out.viable);
        assert_eq!(out.hints.len(), 1);
        match &out.hints[0] {
            Hint::FromTableCount { table, have, want } => {
                assert_eq!(table, "frequents");
                assert_eq!((*have, *want), (0, 1));
            }
            other => panic!("unexpected hint {other:?}"),
        }
        // Apply: now viable.
        let fixed = apply_from_fix(&q, &q_star);
        assert!(check_from(&q_star, &fixed).viable);
        assert_eq!(fixed.from.len(), 4);
        assert!(fixed.from.iter().any(|t| t.table == "frequents"));
    }

    #[test]
    fn extra_table_detected_and_removed() {
        let q_star = parse_query("SELECT l.beer FROM Likes l").unwrap();
        let q = parse_query(
            "SELECT l.beer FROM Likes l, Serves s WHERE l.beer = s.beer",
        )
        .unwrap();
        let out = check_from(&q_star, &q);
        assert!(!out.viable);
        assert!(matches!(
            &out.hints[0],
            Hint::FromTableCount { want: 0, .. }
        ));
        let fixed = apply_from_fix(&q, &q_star);
        assert!(check_from(&q_star, &fixed).viable);
        // The join condition referencing the dropped alias was scrubbed.
        assert_eq!(fixed.where_pred, Pred::True);
    }

    #[test]
    fn self_join_count_mismatch() {
        let q_star = parse_query("SELECT s1.bar FROM Serves s1, Serves s2").unwrap();
        let q = parse_query("SELECT s1.bar FROM Serves s1").unwrap();
        let out = check_from(&q_star, &q);
        assert!(!out.viable);
        let fixed = apply_from_fix(&q, &q_star);
        assert!(check_from(&q_star, &fixed).viable);
        // Fresh alias does not collide.
        let aliases: Vec<&str> = fixed.from.iter().map(|t| t.alias.as_str()).collect();
        assert_eq!(aliases.len(), 2);
        assert_ne!(aliases[0], aliases[1]);
    }

    #[test]
    fn viable_when_equal() {
        let q_star =
            parse_query("SELECT a.x FROM R a, S b WHERE a.x = b.y").unwrap();
        let q = parse_query("SELECT r.x FROM S, R WHERE r.x = s.y").unwrap();
        assert!(check_from(&q_star, &q).viable);
    }

    #[test]
    fn scrub_keeps_select_nonempty() {
        let q_star = parse_query("SELECT r.x FROM R r").unwrap();
        let q = parse_query("SELECT s.y FROM R r, S s").unwrap();
        let fixed = apply_from_fix(&q, &q_star);
        assert!(!fixed.select.is_empty());
    }
}

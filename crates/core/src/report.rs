//! JSON-facing advice reports, shared by every machine surface.
//!
//! The CLI's `--json` modes and the `qr-hint serve` daemon must emit
//! **byte-identical** advice JSON for the same target and submission —
//! graders diff outputs across the two paths, and the server test suite
//! enforces the parity. Centralizing the report shape here (rather than
//! letting each binary re-derive its own) makes that a property of the
//! type, not a discipline.

use crate::pipeline::Advice;
use serde::{Deserialize, Serialize};

/// One advice, JSON-ready: rendered hint strings next to the full
/// structured [`Advice`] (stage, hint data, fixed query, alias
/// mapping). The `fixed_sql`/`rendered_hints` fields duplicate
/// information from `advice` in pre-rendered form so consumers that
/// only display text never have to understand the AST shapes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AdviceReport {
    pub equivalent: bool,
    pub stage: String,
    pub rendered_hints: Vec<String>,
    pub fixed_sql: Option<String>,
    pub advice: Advice,
}

impl AdviceReport {
    pub fn new(advice: Advice) -> AdviceReport {
        AdviceReport {
            equivalent: advice.is_equivalent(),
            stage: advice.stage.to_string(),
            rendered_hints: advice.hints.iter().map(|h| h.to_string()).collect(),
            fixed_sql: advice.fixed.as_ref().map(|q| q.to_string()),
            advice,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::QrHint;
    use qrhint_sqlast::{Schema, SqlType};

    #[test]
    fn report_round_trips_through_json() {
        let schema = Schema::new().with_table(
            "Serves",
            &[("bar", SqlType::Str), ("price", SqlType::Int)],
            &["bar"],
        );
        let qr = QrHint::new(schema);
        let advice = qr
            .advise_sql(
                "SELECT s.bar FROM Serves s WHERE s.price >= 3",
                "SELECT s.bar FROM Serves s WHERE s.price > 3",
            )
            .unwrap();
        let report = AdviceReport::new(advice);
        let json = serde_json::to_string(&report).unwrap();
        let back: AdviceReport = serde_json::from_str(&json).unwrap();
        assert_eq!(serde_json::to_string(&back).unwrap(), json);
        assert!(!back.equivalent);
        assert_eq!(back.stage, "WHERE");
    }
}

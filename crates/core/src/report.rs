//! JSON-facing advice reports, shared by every machine surface.
//!
//! The CLI's `--json` modes and the `qr-hint serve` daemon must emit
//! **byte-identical** advice JSON for the same target and submission —
//! graders diff outputs across the two paths, and the server test suite
//! enforces the parity. Centralizing the report shape here (rather than
//! letting each binary re-derive its own) makes that a property of the
//! type, not a discipline.

use crate::pipeline::Advice;
use qrhint_analysis::Diagnostic;
use serde::{Deserialize, Serialize};

/// One advice, JSON-ready: rendered hint strings next to the full
/// structured [`Advice`] (stage, hint data, fixed query, alias
/// mapping). The `fixed_sql`/`rendered_hints` fields duplicate
/// information from `advice` in pre-rendered form so consumers that
/// only display text never have to understand the AST shapes.
///
/// `diagnostics` carries the static analyzer's findings for the
/// submission (see [`crate::session::PreparedTarget::lint`]). The key is
/// **omitted entirely when empty** — analyzer-clean submissions
/// serialize byte-identically to reports produced before the analyzer
/// existed, which keeps historical grader diffs quiet.
#[derive(Debug, Clone, Deserialize)]
pub struct AdviceReport {
    pub equivalent: bool,
    pub stage: String,
    pub rendered_hints: Vec<String>,
    pub fixed_sql: Option<String>,
    pub advice: Advice,
    #[serde(default)]
    pub diagnostics: Vec<Diagnostic>,
}

// Hand-written (not derived) so the empty `diagnostics` key can be
// dropped; the vendored serde derive has no `skip_serializing_if`.
impl Serialize for AdviceReport {
    fn to_value(&self) -> serde::Value {
        let mut fields = vec![
            ("equivalent".to_string(), self.equivalent.to_value()),
            ("stage".to_string(), self.stage.to_value()),
            ("rendered_hints".to_string(), self.rendered_hints.to_value()),
            ("fixed_sql".to_string(), self.fixed_sql.to_value()),
            ("advice".to_string(), self.advice.to_value()),
        ];
        if !self.diagnostics.is_empty() {
            fields.push(("diagnostics".to_string(), self.diagnostics.to_value()));
        }
        serde::Value::Map(fields)
    }
}

impl AdviceReport {
    pub fn new(advice: Advice) -> AdviceReport {
        AdviceReport::with_diagnostics(advice, Vec::new())
    }

    /// Report carrying the submission's analyzer diagnostics alongside
    /// the grading advice.
    pub fn with_diagnostics(advice: Advice, diagnostics: Vec<Diagnostic>) -> AdviceReport {
        AdviceReport {
            equivalent: advice.is_equivalent(),
            stage: advice.stage.to_string(),
            rendered_hints: advice.hints.iter().map(|h| h.to_string()).collect(),
            fixed_sql: advice.fixed.as_ref().map(|q| q.to_string()),
            advice,
            diagnostics,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::QrHint;
    use qrhint_sqlast::{Schema, SqlType};

    fn serves_schema() -> Schema {
        Schema::new().with_table(
            "Serves",
            &[("bar", SqlType::Str), ("price", SqlType::Int)],
            &["bar"],
        )
    }

    #[test]
    fn report_round_trips_through_json() {
        let qr = QrHint::new(serves_schema());
        let advice = qr
            .advise_sql(
                "SELECT s.bar FROM Serves s WHERE s.price >= 3",
                "SELECT s.bar FROM Serves s WHERE s.price > 3",
            )
            .unwrap();
        let report = AdviceReport::new(advice);
        let json = serde_json::to_string(&report).unwrap();
        let back: AdviceReport = serde_json::from_str(&json).unwrap();
        assert_eq!(serde_json::to_string(&back).unwrap(), json);
        assert!(!back.equivalent);
        assert_eq!(back.stage, "WHERE");
    }

    #[test]
    fn empty_diagnostics_key_is_omitted() {
        let qr = QrHint::new(serves_schema());
        let advice = qr
            .advise_sql(
                "SELECT s.bar FROM Serves s WHERE s.price >= 3",
                "SELECT s.bar FROM Serves s WHERE s.price > 3",
            )
            .unwrap();
        let json = serde_json::to_string(&AdviceReport::new(advice.clone())).unwrap();
        assert!(!json.contains("diagnostics"), "clean report must omit the key");
        // A missing key deserializes as the empty vector.
        let back: AdviceReport = serde_json::from_str(&json).unwrap();
        assert!(back.diagnostics.is_empty());

        let prepared = qr
            .compile_target("SELECT s.bar FROM Serves s WHERE s.price >= 3")
            .unwrap();
        let sub = "SELECT s.bar FROM Serves s WHERE s.price > 5 AND s.price < 3";
        let diags = prepared.lint_sql(sub).unwrap();
        assert!(!diags.is_empty());
        let report =
            AdviceReport::with_diagnostics(prepared.advise_sql(sub).unwrap(), diags);
        let json = serde_json::to_string(&report).unwrap();
        assert!(json.contains("\"diagnostics\""));
        let back: AdviceReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.diagnostics, report.diagnostics);
        assert_eq!(serde_json::to_string(&back).unwrap(), json);
    }
}

//! The stage runner: the WHERE → GROUP BY → HAVING → SELECT walk of
//! §3.1, factored out of the old monolithic pipeline so the session layer
//! ([`crate::session`]) can drive it with a persistent oracle and
//! per-stage memoization.
//!
//! Each solver-backed stage is memoized by **every input its outcome
//! depends on** (given the FROM group's fixed unified target and domain
//! context). A tutoring session that re-advises after repairing a later
//! stage therefore pays no solver work for the unchanged earlier stages —
//! and because a memo hit requires the stage's exact inputs, the cached
//! verdict is sound by construction: no monotonicity trust is involved,
//! and a repair that *does* change an earlier stage's inputs (e.g. the
//! structure fix rewriting HAVING) forces that stage to be re-checked.
//!
//! The FROM stage and table-mapping derivation stay in the session layer:
//! the oracle and the unified target both depend on their result, and the
//! session memoizes them per working-FROM binding.
//!
//! Stage memos key on the SQL-level inputs (predicates, expression
//! lists); everything below them is interned — the ambient contexts this
//! runner installs are `FormulaId` vectors into the target-shared
//! [`crate::oracle::SolverContext`], and the per-check memoization lives
//! in its shared verdict cache rather than in cloned formula trees.

use crate::error::QrResult;
use crate::hint::{Hint, Stage};
use crate::mapping::TableMapping;
use crate::oracle::{LowerEnv, Oracle};
use crate::pipeline::{Advice, QrHintConfig};
use crate::stages::groupby_stage::GroupByOutcome;
use crate::stages::having_stage::HavingOutcome;
use crate::stages::where_stage::WhereOutcome;
use crate::stages::{groupby_stage, having_stage, select_stage, where_stage};
use qrhint_sqlast::{Pred, Query, Scalar};
use std::collections::HashMap;

/// Memo key for the WHERE stage: every part of the working query its
/// outcome depends on. `group_by` feeds the movable-conjunct
/// normalization; `distinct` and the aggregate mask decide SPJA-ness
/// (`Query::is_spja`), which gates both sides' normalization.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct WhereKey {
    where_pred: Pred,
    having: Option<Pred>,
    group_by: Vec<Scalar>,
    distinct: bool,
    select_has_agg: bool,
}

impl WhereKey {
    fn of(q: &Query) -> WhereKey {
        WhereKey {
            where_pred: q.where_pred.clone(),
            having: q.having.clone(),
            group_by: q.group_by.clone(),
            distinct: q.distinct,
            select_has_agg: q.select.iter().any(|s| s.expr.has_aggregate()),
        }
    }
}

/// Memo key for the GROUP BY stage: the working GROUP BY list plus the
/// working query's SPJA-ness (which decides the target-side WHERE/HAVING
/// normalization that `reasoning_where` is built from). The target GROUP
/// BY and domain context are fixed per FROM group.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct GroupByKey {
    group_by: Vec<Scalar>,
    work_is_spja: bool,
}

/// Memo key for the HAVING stage: the normalized working HAVING plus the
/// working query's SPJA-ness (same reasoning as [`GroupByKey`]). The
/// unified target, its normalized split, and the repair config are fixed
/// per FROM group / session.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct HavingKey {
    working_having: Pred,
    work_is_spja: bool,
}

/// Per-FROM-group memos of stage outcomes, keyed by exact stage inputs:
/// submissions (or tutoring steps) that share a stage's inputs pay its
/// solver work once.
#[derive(Default)]
pub(crate) struct StageMemos {
    where_memo: HashMap<WhereKey, WhereOutcome>,
    groupby_memo: HashMap<GroupByKey, GroupByOutcome>,
    having_memo: HashMap<HavingKey, HavingOutcome>,
}

impl StageMemos {
    /// Resident memo entries across all stages (cache-size accounting
    /// for the session layer's byte-budget eviction).
    pub(crate) fn len(&self) -> usize {
        self.where_memo.len() + self.groupby_memo.len() + self.having_memo.len()
    }
}

/// Everything the WHERE→SELECT walk needs. The oracle must be typed for
/// the working query's FROM binding (and therefore also covers `unified`,
/// whose aliases live in the same space).
pub(crate) struct StageInputs<'a> {
    pub oracle: &'a mut Oracle,
    /// The target query unified into the working query's alias space.
    pub unified: &'a Query,
    /// The working query.
    pub q: &'a Query,
    pub cfg: &'a QrHintConfig,
    /// Per-row domain assertions (schema CHECK constraints instantiated
    /// per FROM alias) holding on every row of `F(Q)`.
    pub domain_ctx: &'a [Pred],
    /// The table mapping the unification came from (reported in advice).
    pub mapping: &'a TableMapping,
    /// Cross-submission stage memos for this FROM group.
    pub memos: &'a mut StageMemos,
}

/// Run the checked stages on a working query whose FROM stage already
/// passed, returning the first failing stage's advice.
pub(crate) fn run_stages(inp: StageInputs<'_>) -> QrResult<Advice> {
    let StageInputs { oracle, unified, q, cfg, domain_ctx, mapping, memos } = inp;
    // The oracle is long-lived in a session; never inherit ambient state
    // from a previous call that returned early.
    oracle.clear_ambient();
    let work_is_spja = q.is_spja();

    // ---- Stage 2: WHERE (with SPJA look-ahead) ----
    let where_out = {
        let _span = qrhint_obs::span("stage:where");
        let key = WhereKey::of(q);
        match memos.where_memo.get(&key) {
            Some(hit) => hit.clone(),
            None => {
                let skips = oracle.prescreen_skips;
                let out =
                    where_stage::check_where(oracle, unified, q, &cfg.repair, domain_ctx);
                if oracle.prescreen_skips > skips {
                    oracle.stage_short_circuits += 1;
                }
                memos.where_memo.insert(key, out.clone());
                out
            }
        }
    };
    if !where_out.viable {
        let mut fixed = q.clone();
        // Repairs refer to the normalized working WHERE (the user's
        // movable HAVING conjuncts lifted in — a legal rewrite).
        fixed.where_pred = where_out.working_where.clone();
        fixed.having = where_out.working_having.clone();
        if let Some(r) = where_out.repair.as_ref().and_then(|o| o.repair.as_ref()) {
            fixed.where_pred = r.apply(&where_out.working_where);
        } else {
            // No repair found within limits: fall back to the
            // whole-clause replacement (always correct).
            fixed.where_pred = where_out.target_where.clone();
        }
        let hints = if where_out.hints.is_empty() {
            vec![Hint::PredicateRepair {
                clause: crate::hint::ClauseKind::Where,
                sites: vec![crate::hint::SiteHint {
                    path: vec![],
                    current: q.where_pred.clone(),
                    fix: where_out.target_where.clone(),
                }],
                // Effectively infinite (whole-clause replacement), kept
                // finite so advice serializes to valid, re-parseable JSON.
                cost: f64::MAX,
            }]
        } else {
            where_out.hints.clone()
        };
        return Ok(Advice {
            stage: Stage::Where,
            hints,
            fixed: Some(fixed),
            mapping: Some(mapping.clone()),
        });
    }
    let target_where = where_out.target_where.clone();
    let target_having = where_out.target_having.clone().unwrap_or(Pred::True);
    // Context for the later stages' reasoning: rows reaching GROUP
    // BY / HAVING / SELECT satisfy WHERE *and* the domain checks.
    // (`target_where` itself stays pristine — it is also the literal
    // fallback WHERE text for whole-clause repairs.)
    let reasoning_where = if domain_ctx.is_empty() {
        target_where.clone()
    } else {
        Pred::and(
            std::iter::once(target_where.clone())
                .chain(domain_ctx.iter().cloned())
                .collect(),
        )
    };

    // Grouping/aggregation structure, ignoring DISTINCT (a pure
    // DISTINCT mismatch is a SELECT-stage issue, not a grouping one).
    let has_group_agg = |query: &Query| {
        !query.group_by.is_empty()
            || query.having.is_some()
            || query.select.iter().any(|s| s.expr.has_aggregate())
    };
    let star_spja = has_group_agg(unified);
    let work_spja = has_group_agg(q);

    if star_spja || work_spja {
        // ---- Structure check (Lemma D.1) ----
        if star_spja != work_spja {
            let mut fixed = q.clone();
            fixed.group_by = unified.group_by.clone();
            if !star_spja {
                // De-aggregating drops HAVING — but the WHERE stage
                // passed against the *normalized* working WHERE (movable
                // HAVING conjuncts lifted in), so keep that normalized
                // form: discarding the lifted conjuncts would silently
                // lose verified constraints (e.g. a group-constant
                // filter the user wrote in HAVING).
                fixed.where_pred = where_out.working_where.clone();
                fixed.having = None;
                fixed.distinct = unified.distinct;
                // De-aggregating: unwrap aggregate calls in SELECT so
                // the query leaves the SPJA fragment (the SELECT stage
                // then repairs the expressions themselves).
                fn strip_aggs(e: &Scalar) -> Scalar {
                    match e {
                        Scalar::Agg(call) => match &call.arg {
                            qrhint_sqlast::AggArg::Expr(inner) => strip_aggs(inner),
                            qrhint_sqlast::AggArg::Star => Scalar::Int(1),
                        },
                        Scalar::Arith(l, op, r) => Scalar::Arith(
                            Box::new(strip_aggs(l)),
                            *op,
                            Box::new(strip_aggs(r)),
                        ),
                        Scalar::Neg(inner) => Scalar::Neg(Box::new(strip_aggs(inner))),
                        other => other.clone(),
                    }
                }
                for item in &mut fixed.select {
                    item.expr = strip_aggs(&item.expr);
                }
            }
            return Ok(Advice {
                stage: Stage::GroupBy,
                hints: vec![Hint::Structure { needs_grouping: star_spja }],
                fixed: Some(fixed),
                mapping: Some(mapping.clone()),
            });
        }
        // ---- Stage 3: GROUP BY ----
        {
            let _span = qrhint_obs::span("stage:groupby");
            let key = GroupByKey { group_by: q.group_by.clone(), work_is_spja };
            let gb_out = match memos.groupby_memo.get(&key) {
                Some(hit) => hit.clone(),
                None => {
                    let skips = oracle.prescreen_skips;
                    let out = groupby_stage::fix_grouping(
                        oracle,
                        &reasoning_where,
                        &q.group_by,
                        &unified.group_by,
                    );
                    if oracle.prescreen_skips > skips {
                        oracle.stage_short_circuits += 1;
                    }
                    memos.groupby_memo.insert(key, out.clone());
                    out
                }
            };
            if !gb_out.viable {
                let fixed = groupby_stage::apply_grouping_fix(q, &unified.group_by, &gb_out);
                return Ok(Advice {
                    stage: Stage::GroupBy,
                    hints: gb_out.hints(&q.group_by),
                    fixed: Some(fixed),
                    mapping: Some(mapping.clone()),
                });
            }
        }
        // ---- Stage 4: HAVING ----
        {
            let _span = qrhint_obs::span("stage:having");
            let working_having = where_out.working_having.clone().unwrap_or(Pred::True);
            let key = HavingKey { working_having: working_having.clone(), work_is_spja };
            let hv_out = match memos.having_memo.get(&key) {
                Some(hit) => hit.clone(),
                None => {
                    let skips = oracle.prescreen_skips;
                    let out = having_stage::check_having(
                        oracle,
                        unified,
                        &working_having,
                        &reasoning_where,
                        &target_having,
                        &cfg.repair,
                    );
                    if oracle.prescreen_skips > skips {
                        oracle.stage_short_circuits += 1;
                    }
                    memos.having_memo.insert(key, out.clone());
                    out
                }
            };
            if !hv_out.viable {
                let mut normalized = q.clone();
                normalized.where_pred = where_out.working_where.clone();
                normalized.having = where_out.working_having.clone();
                let mut fixed = having_stage::apply_having_fix(&normalized, &hv_out);
                if hv_out.repair.as_ref().is_none_or(|o| o.repair.is_none()) {
                    fixed.having = if target_having == Pred::True {
                        None
                    } else {
                        Some(target_having.clone())
                    };
                }
                let hints = if hv_out.hints.is_empty() {
                    vec![Hint::PredicateRepair {
                        clause: crate::hint::ClauseKind::Having,
                        sites: vec![crate::hint::SiteHint {
                            path: vec![],
                            current: q.having_pred(),
                            fix: target_having.clone(),
                        }],
                        cost: f64::MAX,
                    }]
                } else {
                    hv_out.hints.clone()
                };
                return Ok(Advice {
                    stage: Stage::Having,
                    hints,
                    fixed: Some(fixed),
                    mapping: Some(mapping.clone()),
                });
            }
        }
    }

    // ---- Stage 5 (or 3 for SPJ): SELECT ----
    let _select_span = qrhint_obs::span("stage:select");
    let env = if star_spja {
        let grouped = having_stage::group_constant_cols(unified, &reasoning_where);
        let env = having_stage::install_having_context(
            oracle,
            &reasoning_where,
            &q.having_pred(),
            &target_having,
            &grouped,
        );
        // Rows reaching SELECT also satisfy HAVING.
        let hf = oracle.lower_pred_env(&target_having, &env);
        let mut full = vec![hf];
        full.extend(oracle.aggregate_axioms(&reasoning_where));
        // Keep the WHERE facts over group-constant columns too.
        let wf_conjuncts: Vec<Pred> = match &reasoning_where {
            Pred::And(cs) => cs.clone(),
            Pred::True => vec![],
            other => vec![other.clone()],
        };
        for c in wf_conjuncts {
            let mut cols = Vec::new();
            c.collect_columns(&mut cols);
            if !c.has_aggregate() && cols.iter().all(|col| grouped.contains(col)) {
                let f = oracle.lower_pred_env(&c, &env);
                full.push(f);
            }
        }
        oracle.set_ambient(env.clone(), full);
        env
    } else {
        let wf = oracle.lower_pred(&reasoning_where);
        oracle.set_ambient(LowerEnv::plain(), vec![wf]);
        LowerEnv::plain()
    };
    let working_exprs: Vec<Scalar> = q.select.iter().map(|s| s.expr.clone()).collect();
    let target_exprs: Vec<Scalar> =
        unified.select.iter().map(|s| s.expr.clone()).collect();
    let pre_skips = oracle.prescreen_skips;
    let sel_out = select_stage::fix_select(oracle, &env, &working_exprs, &target_exprs);
    if oracle.prescreen_skips > pre_skips {
        oracle.stage_short_circuits += 1;
    }
    let distinct_ok = q.distinct == unified.distinct;
    oracle.clear_ambient();
    if !sel_out.viable || !distinct_ok {
        let mut fixed = select_stage::apply_select_fix(q, &target_exprs, &sel_out);
        fixed.distinct = unified.distinct;
        let mut hints = sel_out.hints(&working_exprs);
        if !distinct_ok {
            hints.push(Hint::DistinctMismatch { need_distinct: unified.distinct });
        }
        return Ok(Advice {
            stage: Stage::Select,
            hints,
            fixed: Some(fixed),
            mapping: Some(mapping.clone()),
        });
    }

    Ok(Advice { stage: Stage::Done, hints: vec![], fixed: None, mapping: Some(mapping.clone()) })
}

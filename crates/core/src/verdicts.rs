//! The shared solver-verdict cache: one sharded, recency-stamped,
//! byte-budgeted table of `(formula, context) → TriBool` per
//! [`crate::session::PreparedTarget`], shared by every oracle slot in
//! every FROM group.
//!
//! PR 3's lock-striped slots deliberately kept verdict caches private —
//! with tree-keyed entries, sharing would have meant deep structural
//! compares under a shared lock. With interned formulas
//! ([`qrhint_smt::FormulaId`]) the key is a handful of `u32`s, so one
//! shared table is cheap to probe, and a verdict decided on one thread
//! becomes a read-path hit on every other: an 8-thread classroom batch
//! pays each distinct solver check **once** instead of up to 8 times.
//!
//! Soundness and determinism: keys are ids into the same shared
//! interner, so equal keys mean structurally identical (formula, full
//! context) pairs; verdicts are deterministic functions of that content
//! (the solver is deterministic and only *definitive* verdicts are ever
//! inserted — `Unknown` may become definitive under other budgets and is
//! never cached). Reusing another thread's verdict is therefore
//! indistinguishable from recomputing it.
//!
//! Concurrency: entries are spread over [`STRIPES`] `RwLock` shards by
//! key hash; hits take one shard read lock and refresh recency with an
//! atomic stamp (no write lock on the hot path). Each shard carries
//! `max_bytes / STRIPES` of the byte budget and evicts its stalest
//! entries on insert when over it.

use qrhint_smt::{FormulaId, TriBool};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

/// Shard count: enough that 8 grading threads rarely collide on a
/// shard write lock, small enough that draining/accounting stays cheap.
const STRIPES: usize = 16;

/// Approximate bytes of one cached verdict: key ids + entry + two map
/// slots' overhead.
fn entry_bytes(ctx_len: usize) -> usize {
    96 + std::mem::size_of::<FormulaId>() * ctx_len
}

/// Cache key: the checked formula plus the *full* context (explicit +
/// ambient), in order. Plain integer compares — no tree walk, no bucket
/// scan, and no hash-collision verification problem: equal ids *are*
/// structural equality within the shared interner.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct VerdictKey {
    pub f: FormulaId,
    pub ctx: Box<[FormulaId]>,
}

struct Entry {
    verdict: TriBool,
    /// Oracle id that paid for the verdict (cross-thread hit
    /// attribution in [`crate::session::SessionStats`]).
    owner: u64,
    /// Recency stamp; refreshed atomically on read-path hits.
    touched: AtomicU64,
    bytes: usize,
}

#[derive(Default)]
struct Shard {
    map: HashMap<VerdictKey, Entry>,
    bytes: usize,
}

/// The sharded verdict table. See the [module docs](self).
pub(crate) struct VerdictCache {
    shards: Vec<RwLock<Shard>>,
    /// Total byte budget (0 = unbounded); each shard enforces its slice.
    max_bytes: usize,
    clock: AtomicU64,
}

impl VerdictCache {
    pub fn new(max_bytes: usize) -> VerdictCache {
        VerdictCache {
            shards: (0..STRIPES).map(|_| RwLock::new(Shard::default())).collect(),
            max_bytes,
            clock: AtomicU64::new(0),
        }
    }

    fn shard_of(&self, key: &VerdictKey) -> &RwLock<Shard> {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % STRIPES]
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Probe; a hit refreshes recency and reports the verdict together
    /// with the oracle id that inserted it.
    pub fn get(&self, key: &VerdictKey) -> Option<(TriBool, u64)> {
        let shard = self.shard_of(key).read().unwrap();
        let entry = shard.map.get(key)?;
        entry.touched.store(self.tick(), Ordering::Relaxed);
        Some((entry.verdict, entry.owner))
    }

    /// Insert a definitive verdict, evicting the shard's stalest entries
    /// while it is over its byte-budget slice. Returns how many entries
    /// were evicted. Racing inserts for the same key are harmless: the
    /// verdict is deterministic, so both writers store the same value.
    ///
    /// The budget is approximate by design: each shard always keeps its
    /// newest entry regardless of size, so resident bytes can overshoot
    /// `max_bytes` by up to `STRIPES ×` one entry (an entry larger than
    /// a whole shard slice — a huge ambient context — stays resident
    /// until displaced). The budget bounds growth; it is not an exact
    /// allocator limit.
    pub fn insert(&self, key: VerdictKey, verdict: TriBool, owner: u64) -> u64 {
        debug_assert_ne!(verdict, TriBool::Unknown, "only definitive verdicts are cached");
        let bytes = entry_bytes(key.ctx.len());
        let shard_budget = if self.max_bytes == 0 { usize::MAX } else { self.max_bytes / STRIPES };
        let mut shard = self.shard_of(&key).write().unwrap();
        let entry = Entry {
            verdict,
            owner,
            touched: AtomicU64::new(self.tick()),
            bytes,
        };
        if let Some(prev) = shard.map.insert(key, entry) {
            shard.bytes -= prev.bytes;
        }
        shard.bytes += bytes;
        let mut evicted = 0;
        // The fresh entry holds the newest stamp, so it is never the
        // stalest-entry victim while anything else remains. The victim
        // scan is O(shard) — same policy as the advice cache: an
        // eviction is always preceded by a full solver run, and the
        // default budget is sized so steady-state eviction is rare; a
        // workload that evicts on every insert has already fallen back
        // to solver-bound behavior where the scan is noise.
        while shard.bytes > shard_budget && shard.map.len() > 1 {
            let victim = shard
                .map
                .iter()
                .min_by_key(|(_, e)| e.touched.load(Ordering::Relaxed))
                .map(|(k, _)| k.clone());
            let Some(victim) = victim else { break };
            if let Some(gone) = shard.map.remove(&victim) {
                shard.bytes -= gone.bytes;
                evicted += 1;
            }
        }
        evicted
    }

    /// Resident entries across all shards (point in time).
    pub fn entries(&self) -> usize {
        self.shards.iter().map(|s| s.read().unwrap().map.len()).sum()
    }

    /// Approximate resident bytes across all shards (point in time).
    pub fn bytes(&self) -> usize {
        self.shards.iter().map(|s| s.read().unwrap().bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(f: u32, ctx: &[u32]) -> VerdictKey {
        // FormulaId has no public constructor from raw u32s; build ids
        // through a throwaway interner instead.
        let mut it = qrhint_smt::Interner::new();
        let mut ids = Vec::new();
        for i in 0..=(ctx.iter().copied().max().unwrap_or(0).max(f)) {
            let c = it.int(i as i64);
            let z = it.int(-1);
            ids.push(it.cmp(c, qrhint_smt::Rel::Gt, z));
        }
        VerdictKey {
            f: ids[f as usize],
            ctx: ctx.iter().map(|&i| ids[i as usize]).collect(),
        }
    }

    #[test]
    fn get_after_insert_round_trips_with_owner() {
        let cache = VerdictCache::new(1 << 20);
        let k = key(0, &[1, 2]);
        assert!(cache.get(&k).is_none());
        cache.insert(k.clone(), TriBool::False, 7);
        assert_eq!(cache.get(&k), Some((TriBool::False, 7)));
        assert_eq!(cache.entries(), 1);
        assert!(cache.bytes() > 0);
    }

    #[test]
    fn distinct_contexts_are_distinct_keys() {
        let cache = VerdictCache::new(1 << 20);
        cache.insert(key(0, &[1]), TriBool::True, 1);
        assert!(cache.get(&key(0, &[2])).is_none());
        assert!(cache.get(&key(0, &[])).is_none());
        assert_eq!(cache.get(&key(0, &[1])), Some((TriBool::True, 1)));
    }

    #[test]
    fn byte_budget_evicts_stalest_not_freshest() {
        // A budget so small every shard holds at most one entry: each
        // insert that lands on an occupied shard must evict, and the
        // just-inserted entry must survive.
        let cache = VerdictCache::new(STRIPES);
        let mut evicted = 0;
        for i in 0..32 {
            let k = key(i, &[i]);
            evicted += cache.insert(k.clone(), TriBool::True, 0);
            assert!(cache.get(&k).is_some(), "fresh entry evicted at i={i}");
        }
        // 32 distinct keys over 16 one-entry shards: pigeonhole forces
        // evictions, and each shard keeps only its freshest entry.
        assert!(evicted >= 16, "tiny budget must evict ({evicted})");
        assert!(cache.entries() <= STRIPES);
    }

    #[test]
    fn zero_budget_is_unbounded() {
        let cache = VerdictCache::new(0);
        for i in 0..32 {
            cache.insert(key(i, &[]), TriBool::True, 0);
        }
        assert_eq!(cache.entries(), 32);
    }
}

//! Table mappings (Definition 1, Appendix B.1): unifying the alias spaces
//! of the target and working queries, with signature-based matching for
//! self-joins.

pub mod matching;
pub mod signature;

pub use matching::max_weight_perfect_matching;
pub use signature::{equivalence_classes, table_signature, signature_similarity, TableSignature};

use qrhint_sqlast::{ColRef, Query};
use std::collections::BTreeMap;

/// A table mapping `𝔪 : Aliases(Q★) → Aliases(Q)` (bijective, preserving
/// the underlying table).
pub type TableMapping = BTreeMap<String, String>;

/// Compute the table mapping from `q_star` to `q`. Requires
/// `Tables(Q★) = Tables(Q)` as multisets (the FROM-stage viability);
/// returns `None` otherwise.
///
/// Tables referenced once on each side map directly; self-joined tables
/// are matched by maximizing the total signature similarity over all
/// perfect matchings (Appendix B.1).
pub fn table_mapping(q_star: &Query, q: &Query) -> Option<TableMapping> {
    if q_star.table_multiset() != q.table_multiset() {
        return None;
    }
    let mut mapping = TableMapping::new();
    let classes_star = equivalence_classes(q_star);
    let classes_work = equivalence_classes(q);
    for (table, _) in q_star.table_multiset() {
        let aliases_star = q_star.aliases_of(&table);
        let aliases_work = q.aliases_of(&table);
        debug_assert_eq!(aliases_star.len(), aliases_work.len());
        if aliases_star.len() == 1 {
            mapping.insert(aliases_star[0].to_string(), aliases_work[0].to_string());
            continue;
        }
        // Self-join: signature similarity matrix + perfect matching.
        let sigs_star: Vec<TableSignature> = aliases_star
            .iter()
            .map(|a| table_signature(q_star, a, &classes_star))
            .collect();
        let sigs_work: Vec<TableSignature> = aliases_work
            .iter()
            .map(|a| table_signature(q, a, &classes_work))
            .collect();
        let n = aliases_star.len();
        let mut weight = vec![vec![0.0f64; n]; n];
        for (i, ss) in sigs_star.iter().enumerate() {
            for (j, sw) in sigs_work.iter().enumerate() {
                weight[i][j] = signature_similarity(ss, sw);
            }
        }
        let assignment = max_weight_perfect_matching(&weight)?;
        for (i, j) in assignment.into_iter().enumerate() {
            mapping.insert(aliases_star[i].to_string(), aliases_work[j].to_string());
        }
    }
    Some(mapping)
}

/// Rename the target query's aliases through the mapping so that both
/// queries share one alias space (the "unification" at the end of §4).
pub fn unify_target(q_star: &Query, mapping: &TableMapping) -> Query {
    let mut renamed = q_star.map_columns(&|c: &ColRef| match mapping.get(&c.table) {
        Some(new_alias) => ColRef { table: new_alias.clone(), column: c.column.clone() },
        None => c.clone(),
    });
    for tref in &mut renamed.from {
        if let Some(new_alias) = mapping.get(&tref.alias) {
            tref.alias = new_alias.clone();
        }
    }
    renamed
}

/// Enumerate *all* valid table mappings (exhaustive strategy, used by the
/// A2 ablation). Exponential in the number of self-joined aliases.
pub fn all_table_mappings(q_star: &Query, q: &Query) -> Vec<TableMapping> {
    if q_star.table_multiset() != q.table_multiset() {
        return vec![];
    }
    let mut result: Vec<TableMapping> = vec![TableMapping::new()];
    for (table, _) in q_star.table_multiset() {
        let aliases_star: Vec<String> =
            q_star.aliases_of(&table).into_iter().map(String::from).collect();
        let aliases_work: Vec<String> =
            q.aliases_of(&table).into_iter().map(String::from).collect();
        let perms = permutations(aliases_work.len());
        let mut next = Vec::new();
        for base in &result {
            for perm in &perms {
                let mut m = base.clone();
                for (i, &j) in perm.iter().enumerate() {
                    m.insert(aliases_star[i].clone(), aliases_work[j].clone());
                }
                next.push(m);
            }
        }
        result = next;
        if result.len() > 10_000 {
            break; // safety valve for pathological self-join counts
        }
    }
    result
}

fn permutations(n: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut cur: Vec<usize> = Vec::new();
    let mut used = vec![false; n];
    fn go(n: usize, cur: &mut Vec<usize>, used: &mut [bool], out: &mut Vec<Vec<usize>>) {
        if cur.len() == n {
            out.push(cur.clone());
            return;
        }
        for i in 0..n {
            if !used[i] {
                used[i] = true;
                cur.push(i);
                go(n, cur, used, out);
                cur.pop();
                used[i] = false;
            }
        }
    }
    go(n, &mut cur, &mut used, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrhint_sqlparse::parse_query;

    #[test]
    fn identity_mapping_without_self_joins() {
        let q_star = parse_query(
            "SELECT l.beer FROM Likes l, Serves s WHERE l.beer = s.beer",
        )
        .unwrap();
        let q = parse_query(
            "SELECT likes.beer FROM Likes, Serves WHERE likes.beer = serves.beer",
        )
        .unwrap();
        let m = table_mapping(&q_star, &q).unwrap();
        assert_eq!(m["l"], "likes");
        assert_eq!(m["s"], "serves");
    }

    #[test]
    fn mismatched_multisets_have_no_mapping() {
        let q_star =
            parse_query("SELECT l.beer FROM Likes l, Serves s1, Serves s2").unwrap();
        let q = parse_query("SELECT l.beer FROM Likes l, Serves s1").unwrap();
        assert!(table_mapping(&q_star, &q).is_none());
    }

    #[test]
    fn paper_example4_self_join_mapping() {
        // The headline example: S1 must map to s2 and S2 to s1 because of
        // the SELECT signature on bar.
        let q_star = parse_query(
            "SELECT L.beer, S1.bar, COUNT(*)
             FROM Likes L, Frequents F, Serves S1, Serves S2
             WHERE L.drinker = F.drinker AND F.bar = S1.bar
               AND L.beer = S1.beer AND S1.beer = S2.beer
               AND S1.price <= S2.price
             GROUP BY F.drinker, L.beer, S1.bar
             HAVING F.drinker = 'Amy'",
        )
        .unwrap();
        // The working query after the FROM fix (Frequents added); aliases
        // likes/frequents default to table names.
        let q = parse_query(
            "SELECT s2.beer, s2.bar, COUNT(*)
             FROM Likes, Frequents, Serves s1, Serves s2
             WHERE likes.drinker = 'Amy'
               AND likes.beer = s1.beer AND likes.beer = s2.beer
               AND s1.price > s2.price
             GROUP BY s2.beer, s2.bar",
        )
        .unwrap();
        let m = table_mapping(&q_star, &q).unwrap();
        assert_eq!(m["s1"], "s2", "S1 should map to s2 (SELECT bar signature)");
        assert_eq!(m["s2"], "s1");
        assert_eq!(m["l"], "likes");
        assert_eq!(m["f"], "frequents");
    }

    #[test]
    fn unify_renames_all_clauses() {
        let q_star = parse_query(
            "SELECT S1.bar FROM Serves S1, Serves S2 \
             WHERE S1.price <= S2.price GROUP BY S1.bar",
        )
        .unwrap();
        let mapping: TableMapping =
            [("s1".to_string(), "x".to_string()), ("s2".to_string(), "y".to_string())]
                .into_iter()
                .collect();
        let unified = unify_target(&q_star, &mapping);
        let printed = unified.to_string();
        assert!(printed.contains("x.price <= y.price"), "{printed}");
        assert!(printed.contains("GROUP BY x.bar"), "{printed}");
        assert!(printed.contains("serves x, serves y"), "{printed}");
    }

    #[test]
    fn all_mappings_enumeration() {
        let q_star = parse_query("SELECT s1.bar FROM Serves s1, Serves s2").unwrap();
        let q = parse_query("SELECT a.bar FROM Serves a, Serves b").unwrap();
        let all = all_table_mappings(&q_star, &q);
        assert_eq!(all.len(), 2);
        assert!(all.iter().any(|m| m["s1"] == "a" && m["s2"] == "b"));
        assert!(all.iter().any(|m| m["s1"] == "b" && m["s2"] == "a"));
    }
}

//! Table signatures (Appendix B.1): canonical descriptions of how an
//! alias's columns are used across WHERE/HAVING, GROUP BY and SELECT,
//! compared by normalized Jaccard similarity.

use qrhint_sqlast::{CmpOp, ColRef, Pred, Query, Scalar};
use std::collections::{BTreeMap, BTreeSet};

/// Operators tracked by the WHERE/HAVING component of a signature.
pub const SIG_OPS: [SigOp; 6] = [
    SigOp::Eq,
    SigOp::Lt,
    SigOp::Gt,
    SigOp::Le,
    SigOp::Ge,
    SigOp::Like,
];

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SigOp {
    Eq,
    Lt,
    Gt,
    Le,
    Ge,
    Like,
}

impl SigOp {
    fn from_cmp(op: CmpOp) -> Option<SigOp> {
        match op {
            CmpOp::Eq => Some(SigOp::Eq),
            CmpOp::Ne => Some(SigOp::Eq), // ≠ interactions grouped with =
            CmpOp::Lt => Some(SigOp::Lt),
            CmpOp::Le => Some(SigOp::Le),
            CmpOp::Gt => Some(SigOp::Gt),
            CmpOp::Ge => Some(SigOp::Ge),
        }
    }

    fn flip(self) -> SigOp {
        match self {
            SigOp::Eq => SigOp::Eq,
            SigOp::Lt => SigOp::Gt,
            SigOp::Gt => SigOp::Lt,
            SigOp::Le => SigOp::Ge,
            SigOp::Ge => SigOp::Le,
            SigOp::Like => SigOp::Like,
        }
    }
}

/// An item participating in equality reasoning: a column or a literal.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum EqItem {
    Col(ColRef),
    IntLit(i64),
    StrLit(String),
}

/// The signature of one alias: per-(column, operator) interaction sets
/// (table names / literals), the grouped-column set, and per-column
/// SELECT position sets.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TableSignature {
    /// (column, op) → set of interacting table names and literals.
    pub interactions: BTreeMap<(String, SigOp), BTreeSet<String>>,
    /// Columns of this alias that are grouped (directly or via an
    /// equivalence class member).
    pub grouped: BTreeSet<String>,
    /// column → 1-based SELECT positions whose expression touches the
    /// column's equivalence class.
    pub select_positions: BTreeMap<String, BTreeSet<usize>>,
    /// All columns referenced through this alias anywhere in the query
    /// (the attribute universe for normalization).
    pub columns: BTreeSet<String>,
}

/// Union-find based equality classes over columns and literals, built
/// from every equality atom in WHERE and HAVING (transitively closed).
#[derive(Debug, Clone, Default)]
pub struct EqClasses {
    ids: BTreeMap<EqItem, usize>,
    parent: Vec<usize>,
}

impl EqClasses {
    fn id(&mut self, item: &EqItem) -> usize {
        if let Some(&i) = self.ids.get(item) {
            return i;
        }
        let i = self.parent.len();
        self.parent.push(i);
        self.ids.insert(item.clone(), i);
        i
    }

    fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }

    fn union(&mut self, a: &EqItem, b: &EqItem) {
        let (ia, ib) = (self.id(a), self.id(b));
        let (ra, rb) = (self.find(ia), self.find(ib));
        if ra != rb {
            self.parent[ra] = rb;
        }
    }

    /// All items in the class of `item` (including itself).
    pub fn class_of(&mut self, item: &EqItem) -> Vec<EqItem> {
        let i = self.id(item);
        let root = self.find(i);
        let snapshot: Vec<EqItem> = self.ids.keys().cloned().collect();
        snapshot
            .into_iter()
            .filter(|other| {
                let io = self.ids[other];
                self.find(io) == root
            })
            .collect()
    }

    /// Do two items share a class?
    pub fn same_class(&mut self, a: &EqItem, b: &EqItem) -> bool {
        let (ia, ib) = (self.id(a), self.id(b));
        self.find(ia) == self.find(ib)
    }
}

fn as_eq_item(e: &Scalar) -> Option<EqItem> {
    match e {
        Scalar::Col(c) => Some(EqItem::Col(c.clone())),
        Scalar::Int(v) => Some(EqItem::IntLit(*v)),
        Scalar::Str(s) => Some(EqItem::StrLit(s.clone())),
        _ => None,
    }
}

/// Build equality classes from all `=` atoms of the query's WHERE and
/// HAVING clauses.
pub fn equivalence_classes(q: &Query) -> EqClasses {
    let mut classes = EqClasses::default();
    let mut scan = |p: &Pred| {
        for atom in p.atoms() {
            if let Pred::Cmp(l, CmpOp::Eq, r) = atom {
                if let (Some(a), Some(b)) = (as_eq_item(l), as_eq_item(r)) {
                    classes.union(&a, &b);
                }
            }
        }
    };
    scan(&q.where_pred);
    if let Some(h) = &q.having {
        scan(h);
    }
    classes
}

fn item_label(item: &EqItem, q: &Query) -> String {
    match item {
        EqItem::Col(c) => q
            .table_of_alias(&c.table)
            .map(|t| t.to_string())
            .unwrap_or_else(|| c.table.clone()),
        EqItem::IntLit(v) => format!("lit:{v}"),
        EqItem::StrLit(s) => format!("lit:'{s}'"),
    }
}

/// Build the signature of `alias` in `q` (Appendix B.1).
pub fn table_signature(q: &Query, alias: &str, classes: &EqClasses) -> TableSignature {
    let mut classes = classes.clone();
    let mut sig = TableSignature::default();
    let alias = qrhint_sqlast::ident(alias);

    // Attribute universe: columns referenced through this alias.
    for c in q.collect_columns() {
        if c.table == alias {
            sig.columns.insert(c.column.clone());
        }
    }

    // --- WHERE & HAVING interactions ---
    let record = |sig: &mut TableSignature,
                      classes: &mut EqClasses,
                      col: &ColRef,
                      op: SigOp,
                      other: &Scalar| {
        if col.table != alias {
            return;
        }
        let entry = sig
            .interactions
            .entry((col.column.clone(), op))
            .or_default();
        let mut others: Vec<EqItem> = Vec::new();
        if let Some(item) = as_eq_item(other) {
            others.push(item);
        } else {
            let mut cols = Vec::new();
            other.collect_columns(&mut cols);
            others.extend(cols.into_iter().map(EqItem::Col));
        }
        // Expand through equivalence classes.
        let mut expanded: Vec<EqItem> = Vec::new();
        for item in others {
            expanded.extend(classes.class_of(&item));
            expanded.push(item);
        }
        // For equality interactions, also include the whole class of the
        // column itself (Example 4: S1.beer's set contains S2.beer via
        // the inferred equivalence).
        if op == SigOp::Eq {
            expanded.extend(classes.class_of(&EqItem::Col(col.clone())));
        }
        for item in expanded {
            if item == EqItem::Col(col.clone()) {
                continue;
            }
            entry.insert(item_label(&item, q));
        }
    };

    let scan_pred = |sig: &mut TableSignature, classes: &mut EqClasses, p: &Pred| {
        for atom in p.atoms() {
            match atom {
                Pred::Cmp(l, op, r) => {
                    let Some(sig_op) = SigOp::from_cmp(*op) else { continue };
                    let mut lcols = Vec::new();
                    l.collect_columns(&mut lcols);
                    let mut rcols = Vec::new();
                    r.collect_columns(&mut rcols);
                    for c in &lcols {
                        record(sig, classes, c, sig_op, r);
                    }
                    for c in &rcols {
                        record(sig, classes, c, sig_op.flip(), l);
                    }
                }
                Pred::Like { expr, pattern, .. } => {
                    let mut cols = Vec::new();
                    expr.collect_columns(&mut cols);
                    for c in &cols {
                        record(sig, classes, c, SigOp::Like, &Scalar::Str(pattern.clone()));
                    }
                }
                _ => {}
            }
        }
    };
    scan_pred(&mut sig, &mut classes, &q.where_pred);
    if let Some(h) = &q.having {
        scan_pred(&mut sig, &mut classes, h);
    }

    // --- GROUP BY ---
    let grouped_items: Vec<EqItem> = q
        .group_by
        .iter()
        .filter_map(|g| match g {
            Scalar::Col(c) => Some(EqItem::Col(c.clone())),
            _ => None,
        })
        .collect();
    for col in sig.columns.clone() {
        let this = EqItem::Col(ColRef { table: alias.clone(), column: col.clone() });
        let direct = q.group_by.iter().any(|g| {
            let mut cols = Vec::new();
            g.collect_columns(&mut cols);
            cols.iter().any(|c| c.table == alias && c.column == col)
        });
        let via_class = grouped_items.iter().any(|g| classes.same_class(g, &this));
        if direct || via_class {
            sig.grouped.insert(col);
        }
    }

    // --- SELECT ---
    for (i, item) in q.select.iter().enumerate() {
        let mut cols = Vec::new();
        item.expr.collect_columns(&mut cols);
        for col in sig.columns.clone() {
            let this = EqItem::Col(ColRef { table: alias.clone(), column: col.clone() });
            let touches = cols.iter().any(|c| {
                (c.table == alias && c.column == col)
                    || classes.same_class(&EqItem::Col(c.clone()), &this)
            });
            if touches {
                sig.select_positions.entry(col.clone()).or_default().insert(i + 1);
            }
        }
    }
    sig
}

/// Jaccard similarity with the `∅/∅ = 1` convention of Appendix B.
fn jaccard(a: &BTreeSet<String>, b: &BTreeSet<String>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let inter = a.intersection(b).count() as f64;
    let union = a.union(b).count() as f64;
    inter / union
}

fn jaccard_usize(a: &BTreeSet<usize>, b: &BTreeSet<usize>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let inter = a.intersection(b).count() as f64;
    let union = a.union(b).count() as f64;
    inter / union
}

/// The normalized similarity metric `Sim(σ, σ′)` of Appendix B.1.
pub fn signature_similarity(a: &TableSignature, b: &TableSignature) -> f64 {
    let attrs: BTreeSet<String> = a.columns.union(&b.columns).cloned().collect();
    if attrs.is_empty() {
        return 3.0; // identical empty signatures: maximal similarity
    }
    let n_attrs = attrs.len() as f64;
    let empty = BTreeSet::new();
    let empty_usize = BTreeSet::new();

    let mut w_total = 0.0;
    for col in &attrs {
        for op in SIG_OPS {
            let sa = a.interactions.get(&(col.clone(), op)).unwrap_or(&empty);
            let sb = b.interactions.get(&(col.clone(), op)).unwrap_or(&empty);
            w_total += jaccard(sa, sb);
        }
    }
    let w_component = w_total / (n_attrs * SIG_OPS.len() as f64);
    let g_component = jaccard(&a.grouped, &b.grouped);
    let mut s_total = 0.0;
    for col in &attrs {
        let sa = a.select_positions.get(col).unwrap_or(&empty_usize);
        let sb = b.select_positions.get(col).unwrap_or(&empty_usize);
        s_total += jaccard_usize(sa, sb);
    }
    let s_component = s_total / n_attrs;
    w_component + g_component + s_component
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrhint_sqlparse::parse_query;

    fn paper_target() -> Query {
        parse_query(
            "SELECT L.beer, S1.bar, COUNT(*)
             FROM Likes L, Frequents F, Serves S1, Serves S2
             WHERE L.drinker = F.drinker AND F.bar = S1.bar
               AND L.beer = S1.beer AND S1.beer = S2.beer
               AND S1.price <= S2.price
             GROUP BY F.drinker, L.beer, S1.bar
             HAVING F.drinker = 'Amy'",
        )
        .unwrap()
    }

    #[test]
    fn equality_classes_are_transitive() {
        let q = paper_target();
        let mut classes = equivalence_classes(&q);
        let l_beer = EqItem::Col(ColRef::new("l", "beer"));
        let s2_beer = EqItem::Col(ColRef::new("s2", "beer"));
        assert!(classes.same_class(&l_beer, &s2_beer));
        let amy = EqItem::StrLit("Amy".into());
        let l_drinker = EqItem::Col(ColRef::new("l", "drinker"));
        assert!(classes.same_class(&amy, &l_drinker));
    }

    #[test]
    fn example4_signatures() {
        let q = paper_target();
        let classes = equivalence_classes(&q);
        let s1 = table_signature(&q, "s1", &classes);
        let s2 = table_signature(&q, "s2", &classes);
        // S1.bar interacts by equality with Frequents.
        assert!(s1.interactions[&("bar".into(), SigOp::Eq)].contains("frequents"));
        // S1.beer's equality set includes Likes and Serves (via class).
        let beer_eq = &s1.interactions[&("beer".into(), SigOp::Eq)];
        assert!(beer_eq.contains("likes"), "{beer_eq:?}");
        assert!(beer_eq.contains("serves"), "{beer_eq:?}");
        // S1.price ≤ Serves; S2.price ≥ Serves.
        assert!(s1.interactions[&("price".into(), SigOp::Le)].contains("serves"));
        assert!(s2.interactions[&("price".into(), SigOp::Ge)].contains("serves"));
        // GROUP BY: S1 has {bar, beer}; S2 has {beer} (via L.beer class).
        assert!(s1.grouped.contains("bar") && s1.grouped.contains("beer"));
        assert!(s2.grouped.contains("beer") && !s2.grouped.contains("bar"));
        // SELECT: S1.bar at position 2; S2.bar nowhere.
        assert_eq!(
            s1.select_positions.get("bar"),
            Some(&[2usize].into_iter().collect())
        );
        assert_eq!(s2.select_positions.get("bar"), None);
        // beer appears at position 1 for both (via equivalence).
        assert_eq!(
            s1.select_positions.get("beer"),
            Some(&[1usize].into_iter().collect())
        );
    }

    #[test]
    fn similarity_prefers_matching_roles() {
        let q_star = paper_target();
        let q = parse_query(
            "SELECT s2.beer, s2.bar, COUNT(*)
             FROM Likes, Frequents, Serves s1, Serves s2
             WHERE likes.drinker = 'Amy'
               AND likes.beer = s1.beer AND likes.beer = s2.beer
               AND s1.price > s2.price
             GROUP BY s2.beer, s2.bar",
        )
        .unwrap();
        let cs = equivalence_classes(&q_star);
        let cw = equivalence_classes(&q);
        let sig_s1_star = table_signature(&q_star, "s1", &cs);
        let sig_s2_star = table_signature(&q_star, "s2", &cs);
        let sig_s1 = table_signature(&q, "s1", &cw);
        let sig_s2 = table_signature(&q, "s2", &cw);
        // The paper's conclusion: S1↦s2 and S2↦s1 beats the identity.
        let cross = signature_similarity(&sig_s1_star, &sig_s2)
            + signature_similarity(&sig_s2_star, &sig_s1);
        let ident = signature_similarity(&sig_s1_star, &sig_s1)
            + signature_similarity(&sig_s2_star, &sig_s2);
        assert!(
            cross > ident,
            "cross mapping {cross} should beat identity {ident}"
        );
    }

    #[test]
    fn jaccard_conventions() {
        let empty: BTreeSet<String> = BTreeSet::new();
        assert_eq!(jaccard(&empty, &empty), 1.0);
        let a: BTreeSet<String> = ["x".to_string()].into_iter().collect();
        assert_eq!(jaccard(&a, &empty), 0.0);
        assert_eq!(jaccard(&a, &a), 1.0);
    }
}

//! Maximum-weight perfect matching on small dense bipartite graphs via
//! bitmask dynamic programming (exact; the alias counts Qr-Hint meets are
//! tiny, so O(n²·2ⁿ) is more than fast enough and avoids the bookkeeping
//! subtleties of Hungarian-algorithm implementations).

/// Find the permutation `assignment` maximizing `Σ weight[i][assignment[i]]`.
/// Returns `None` for empty or oversized instances (n > 16).
pub fn max_weight_perfect_matching(weight: &[Vec<f64>]) -> Option<Vec<usize>> {
    let n = weight.len();
    if n == 0 || n > 16 {
        return None;
    }
    debug_assert!(weight.iter().all(|row| row.len() == n));
    let full: usize = (1 << n) - 1;
    // dp[mask] = best total weight assigning rows 0..popcount(mask) to the
    // column set `mask`.
    let mut dp = vec![f64::NEG_INFINITY; 1 << n];
    let mut choice = vec![usize::MAX; 1 << n];
    dp[0] = 0.0;
    for mask in 0..=full {
        if dp[mask] == f64::NEG_INFINITY {
            continue;
        }
        let row = (mask as u32).count_ones() as usize;
        if row == n {
            continue;
        }
        for (col, &w) in weight[row].iter().enumerate() {
            if mask & (1 << col) != 0 {
                continue;
            }
            let next = mask | (1 << col);
            let cand = dp[mask] + w;
            if cand > dp[next] {
                dp[next] = cand;
                choice[next] = col;
            }
        }
    }
    // Reconstruct.
    let mut mask = full;
    let mut assignment = vec![0usize; n];
    for row in (0..n).rev() {
        let col = choice[mask];
        assignment[row] = col;
        mask &= !(1 << col);
    }
    Some(assignment)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_when_diagonal_dominates() {
        let w = vec![
            vec![5.0, 1.0, 1.0],
            vec![1.0, 5.0, 1.0],
            vec![1.0, 1.0, 5.0],
        ];
        assert_eq!(max_weight_perfect_matching(&w).unwrap(), vec![0, 1, 2]);
    }

    #[test]
    fn cross_assignment() {
        let w = vec![vec![1.0, 9.0], vec![9.0, 1.0]];
        assert_eq!(max_weight_perfect_matching(&w).unwrap(), vec![1, 0]);
    }

    #[test]
    fn forced_suboptimal_local_choice() {
        // Greedy would take (0,0)=10 then (1,1)=0 → 10; optimum is 9+8=17.
        let w = vec![vec![10.0, 9.0], vec![8.0, 0.0]];
        let a = max_weight_perfect_matching(&w).unwrap();
        assert_eq!(a, vec![1, 0]);
    }

    #[test]
    fn single_and_empty() {
        assert_eq!(max_weight_perfect_matching(&[vec![3.0]]).unwrap(), vec![0]);
        assert!(max_weight_perfect_matching(&[]).is_none());
    }

    #[test]
    fn four_by_four_exact() {
        let w = vec![
            vec![7.0, 5.0, 9.0, 8.0],
            vec![9.0, 4.0, 3.0, 9.0],
            vec![3.0, 8.0, 1.0, 8.0],
            vec![4.0, 7.0, 2.0, 5.0],
        ];
        let a = max_weight_perfect_matching(&w).unwrap();
        let total: f64 = a.iter().enumerate().map(|(i, &j)| w[i][j]).sum();
        // Brute force the optimum for comparison.
        let mut best = f64::NEG_INFINITY;
        let idx = [0usize, 1, 2, 3];
        fn perms(v: Vec<usize>) -> Vec<Vec<usize>> {
            if v.len() <= 1 {
                return vec![v];
            }
            let mut out = vec![];
            for i in 0..v.len() {
                let mut rest = v.clone();
                let x = rest.remove(i);
                for mut p in perms(rest) {
                    p.insert(0, x);
                    out.push(p);
                }
            }
            out
        }
        for p in perms(idx.to_vec()) {
            let s: f64 = p.iter().enumerate().map(|(i, &j)| w[i][j]).sum();
            best = best.max(s);
        }
        assert!((total - best).abs() < 1e-9);
    }
}

//! The top-level grading API (§3.1, Theorem 3.1): FROM → WHERE →
//! GROUP BY → HAVING → SELECT for SPJA queries (FROM → WHERE → SELECT
//! for SPJ).
//!
//! [`QrHint`] binds a schema and configuration. The stateless
//! [`QrHint::advise_sql`] / [`QrHint::fix_fully`] entry points are thin
//! compatibility wrappers over the session layer ([`crate::session`]):
//! compile the target once with [`QrHint::compile_target`] when grading
//! many submissions or tutoring interactively — the session amortizes
//! target-side parsing, table-mapping derivation, and solver work.
//! The stage walk itself lives in the crate-private `runner` module.

use crate::error::QrResult;
use crate::hint::{Hint, Stage};
use crate::mapping::TableMapping;
use crate::repair::RepairConfig;
use crate::session::PreparedTarget;
use qrhint_sqlast::{resolve::resolve_query, Query, Schema};
use qrhint_sqlparse::{parse_query, parse_query_extended, FlattenOptions};
use serde::{Deserialize, Serialize};

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct QrHintConfig {
    pub repair: RepairConfig,
    /// Cap on advise → apply-fix iterations in [`QrHint::fix_fully`] /
    /// [`crate::session::TutorSession::run_to_completion`]. Theorem 3.1
    /// bounds real
    /// interactions by the stage count; the default leaves 3× slack
    /// (plus the final `Done` round) purely as a defensive backstop.
    pub max_stage_applications: usize,
    /// Capacity of a [`PreparedTarget`]'s whole-advice duplicate cache,
    /// in entries. The cache is LRU-evicted at this bound so a resident
    /// process (the `qr-hint serve` daemon) can hold a target hot
    /// indefinitely without the cache growing with every distinct
    /// submission ever seen. `0` disables the cache entirely.
    pub advice_cache_capacity: usize,
    /// Byte budget of a [`PreparedTarget`]'s **shared solver-verdict
    /// cache** — the sharded `(formula, context) → verdict` table every
    /// oracle slot of the target reads and writes (see
    /// [`crate::oracle::SolverContext`]). Each shard LRU-evicts its
    /// stalest entries beyond its slice of the budget. `0` = unbounded
    /// (the registry-level shed still reclaims it wholesale).
    pub verdict_cache_max_bytes: usize,
    /// Enable the interval **static prescreen** in every oracle slot:
    /// a satisfiability check whose conjunction is refuted by per-variable
    /// interval reasoning (`qrhint_smt::interval`) is answered `Unsat`
    /// without running the solver (statically contradictory student
    /// predicates short-circuit whole stages this way; counted in
    /// [`crate::session::SessionStats::solver_calls_skipped`]). The
    /// prescreen only ever decides conjunctions the solver's LIA layer
    /// would also refute, so verdicts are unchanged — this switch exists
    /// for A/B parity testing and benchmarks.
    pub static_prescreen: bool,
    /// Run the solver's branch search with the **incremental assumption
    /// stack** (push/pop theory state extended literal-by-literal) instead
    /// of retranslating the full conjunction at every leaf and pruning
    /// stride. Verdicts never contradict the from-scratch search (the
    /// stack may *refine* `Unknown` to a definitive answer via
    /// quick-conflict pruning); the switch exists for A/B parity testing
    /// and the `exp_incremental` benchmark.
    pub incremental_solver: bool,
}

/// Default bound on the per-target advice cache: generously above any
/// single classroom batch (the Students+ corpus is 341 entries), small
/// enough that a long-lived server holding dozens of targets stays
/// within a predictable memory envelope.
pub const DEFAULT_ADVICE_CACHE_CAPACITY: usize = 4096;

/// Default byte budget for the shared verdict cache: roomy enough that a
/// classroom-scale target never evicts in practice, bounded so dozens of
/// resident server targets stay within a predictable envelope.
pub const DEFAULT_VERDICT_CACHE_BYTES: usize = 32 * 1024 * 1024;

impl Default for QrHintConfig {
    fn default() -> QrHintConfig {
        QrHintConfig {
            repair: RepairConfig::default(),
            max_stage_applications: 3 * Stage::COUNT + 1,
            advice_cache_capacity: DEFAULT_ADVICE_CACHE_CAPACITY,
            verdict_cache_max_bytes: DEFAULT_VERDICT_CACHE_BYTES,
            static_prescreen: true,
            incremental_solver: true,
        }
    }
}

/// A Qr-Hint session bound to one database schema.
#[derive(Debug, Clone)]
pub struct QrHint {
    schema: Schema,
    cfg: QrHintConfig,
}

/// The advice produced for one working-query state: the first failing
/// stage, its hints, and the auto-applied fix for simulation.
///
/// Serializes to JSON end-to-end (hints, fixed query, alias mapping) for
/// machine consumption — see the CLI's `--json` mode.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Advice {
    /// First stage whose viability check failed (`Done` = equivalent).
    pub stage: Stage,
    pub hints: Vec<Hint>,
    /// The working query with this stage's repair applied (present
    /// whenever `stage != Done`).
    pub fixed: Option<Query>,
    /// The alias mapping (available once the FROM stage passes).
    pub mapping: Option<TableMapping>,
}

impl Advice {
    pub fn is_equivalent(&self) -> bool {
        self.stage == Stage::Done
    }
}

impl QrHint {
    pub fn new(schema: Schema) -> QrHint {
        QrHint { schema, cfg: QrHintConfig::default() }
    }

    pub fn with_config(schema: Schema, cfg: QrHintConfig) -> QrHint {
        QrHint { schema, cfg }
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Parse and resolve a query against the session schema.
    pub fn prepare(&self, sql: &str) -> QrResult<Query> {
        let q = parse_query(sql)?;
        Ok(resolve_query(&self.schema, &q)?)
    }

    /// Parse with the multi-block front-end (footnote 2 of the paper:
    /// `WITH` CTEs, aggregation-free subqueries in FROM, non-outer JOINs —
    /// plus the opt-in positive EXISTS/IN rewrite of §3), flatten to the
    /// single-block fragment, and resolve.
    pub fn prepare_extended(&self, sql: &str, opts: &FlattenOptions) -> QrResult<Query> {
        let q = parse_query_extended(sql, opts)?;
        Ok(resolve_query(&self.schema, &q)?)
    }

    /// Compile a target query for advise-many grading: parse, resolve,
    /// and set up the per-target memo layers (table mappings, persistent
    /// oracle, advice cache). The result grades any number of
    /// submissions via [`PreparedTarget::advise`] /
    /// [`PreparedTarget::grade_batch`], and drives incremental tutoring
    /// via [`PreparedTarget::tutor`].
    pub fn compile_target(&self, target_sql: &str) -> QrResult<PreparedTarget> {
        Ok(self.prepare_target(self.prepare(target_sql)?))
    }

    /// [`QrHint::compile_target`] with the multi-block front-end.
    pub fn compile_target_extended(
        &self,
        target_sql: &str,
        opts: &FlattenOptions,
    ) -> QrResult<PreparedTarget> {
        Ok(self.prepare_target(self.prepare_extended(target_sql, opts)?))
    }

    /// Wrap an already-resolved target query as a [`PreparedTarget`].
    pub fn prepare_target(&self, q_star: Query) -> PreparedTarget {
        PreparedTarget::new(self.schema.clone(), self.cfg.clone(), q_star)
    }

    /// [`QrHint::advise_sql`] with both queries run through the
    /// multi-block front-end. Either query may freely mix JOIN syntax,
    /// CTEs and FROM subqueries; hints refer to the flattened form.
    pub fn advise_sql_extended(
        &self,
        target_sql: &str,
        working_sql: &str,
        opts: &FlattenOptions,
    ) -> QrResult<Advice> {
        let q_star = self.prepare_extended(target_sql, opts)?;
        let q = self.prepare_extended(working_sql, opts)?;
        self.advise(&q_star, &q)
    }

    /// Advise on SQL strings. Stateless convenience: re-parses and
    /// re-prepares the target on every call — prefer
    /// [`QrHint::compile_target`] when grading many submissions against
    /// one target.
    pub fn advise_sql(&self, target_sql: &str, working_sql: &str) -> QrResult<Advice> {
        let q_star = self.prepare(target_sql)?;
        let q = self.prepare(working_sql)?;
        self.advise(&q_star, &q)
    }

    /// Run the stage checks on resolved queries, returning the first
    /// failing stage's hints. Stateless wrapper over a one-shot
    /// [`PreparedTarget`].
    pub fn advise(&self, q_star: &Query, q: &Query) -> QrResult<Advice> {
        self.prepare_target(q_star.clone()).advise_uncached(q)
    }

    /// Simulate a user who applies every suggested repair: iterate
    /// advise + apply until `Done`. Returns the final query and the
    /// advice trail (one entry per stage interaction — Theorem 3.1
    /// guarantees termination;
    /// [`QrHintConfig::max_stage_applications`] is defensive). Thin
    /// wrapper over [`crate::session::TutorSession::run_to_completion`].
    pub fn fix_fully(&self, q_star: &Query, q: &Query) -> QrResult<(Query, Vec<Advice>)> {
        self.prepare_target(q_star.clone()).tutor(q.clone()).run_to_completion()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrhint_sqlast::SqlType;

    fn beers_schema() -> Schema {
        Schema::new()
            .with_table(
                "Likes",
                &[("drinker", SqlType::Str), ("beer", SqlType::Str)],
                &["drinker", "beer"],
            )
            .with_table(
                "Frequents",
                &[("drinker", SqlType::Str), ("bar", SqlType::Str)],
                &["drinker", "bar"],
            )
            .with_table(
                "Serves",
                &[("bar", SqlType::Str), ("beer", SqlType::Str), ("price", SqlType::Int)],
                &["bar", "beer"],
            )
    }

    const TARGET: &str = "SELECT L.beer, S1.bar, COUNT(*)
        FROM Likes L, Frequents F, Serves S1, Serves S2
        WHERE L.drinker = F.drinker AND F.bar = S1.bar
          AND L.beer = S1.beer AND S1.beer = S2.beer
          AND S1.price <= S2.price
        GROUP BY F.drinker, L.beer, S1.bar
        HAVING F.drinker = 'Amy'";

    const WORKING: &str = "SELECT s2.beer, s2.bar, COUNT(*)
        FROM Likes, Serves s1, Serves s2
        WHERE drinker = 'Amy'
          AND Likes.beer = s1.beer AND Likes.beer = s2.beer
          AND s1.price > s2.price
        GROUP BY s2.beer, s2.bar";

    #[test]
    fn paper_example2_first_hint_is_from() {
        let qr = QrHint::new(beers_schema());
        let advice = qr.advise_sql(TARGET, WORKING).unwrap();
        assert_eq!(advice.stage, Stage::From);
        assert_eq!(advice.hints.len(), 1);
        let txt = advice.hints[0].to_string();
        assert!(txt.contains("frequents"), "{txt}");
    }

    #[test]
    fn equivalent_queries_are_done_immediately() {
        let qr = QrHint::new(beers_schema());
        let advice = qr
            .advise_sql(
                "SELECT l.beer FROM Likes l WHERE l.drinker = 'Amy'",
                "SELECT likes.beer FROM Likes WHERE likes.drinker = 'Amy'",
            )
            .unwrap();
        assert!(advice.is_equivalent());
        // Syntactically different but semantically equal WHEREs:
        let advice2 = qr
            .advise_sql(
                "SELECT s.bar FROM Serves s WHERE s.price >= 3 AND s.beer = 'IPA'",
                "SELECT s.bar FROM Serves s WHERE s.beer = 'IPA' AND s.price > 2",
            )
            .unwrap();
        assert!(advice2.is_equivalent());
    }

    #[test]
    fn where_stage_hint_and_fix() {
        let qr = QrHint::new(beers_schema());
        let advice = qr
            .advise_sql(
                "SELECT s.bar FROM Serves s WHERE s.price >= 3",
                "SELECT s.bar FROM Serves s WHERE s.price > 3",
            )
            .unwrap();
        assert_eq!(advice.stage, Stage::Where);
        let fixed = advice.fixed.unwrap();
        let advice2 = qr
            .advise(&qr.prepare("SELECT s.bar FROM Serves s WHERE s.price >= 3").unwrap(), &fixed)
            .unwrap();
        assert!(advice2.is_equivalent());
    }

    #[test]
    fn structure_mismatch_hint() {
        let qr = QrHint::new(beers_schema());
        let advice = qr
            .advise_sql(
                "SELECT l.drinker, COUNT(*) FROM Likes l GROUP BY l.drinker",
                "SELECT l.drinker, l.beer FROM Likes l",
            )
            .unwrap();
        // FROM passes; WHERE passes (both TRUE); structure mismatch next.
        assert_eq!(advice.stage, Stage::GroupBy);
        assert!(matches!(advice.hints[0], Hint::Structure { needs_grouping: true }));
    }

    #[test]
    fn full_paper_example_converges() {
        let qr = QrHint::new(beers_schema());
        let q_star = qr.prepare(TARGET).unwrap();
        let q = qr.prepare(WORKING).unwrap();
        let (final_q, trail) = qr.fix_fully(&q_star, &q).unwrap();
        assert!(trail.last().unwrap().is_equivalent());
        // The trail visits FROM first, then WHERE.
        assert_eq!(trail[0].stage, Stage::From);
        assert!(trail.iter().any(|a| a.stage == Stage::Where));
        // And the final query is verified equivalent by the pipeline.
        let final_advice = qr.advise(&q_star, &final_q).unwrap();
        assert!(final_advice.is_equivalent());
    }

    #[test]
    fn select_stage_distinct_mismatch() {
        let qr = QrHint::new(beers_schema());
        let advice = qr
            .advise_sql(
                "SELECT DISTINCT l.beer FROM Likes l",
                "SELECT l.beer FROM Likes l",
            )
            .unwrap();
        assert_eq!(advice.stage, Stage::Select);
        assert!(advice
            .hints
            .iter()
            .any(|h| matches!(h, Hint::DistinctMismatch { need_distinct: true })));
        let fixed = advice.fixed.unwrap();
        assert!(fixed.distinct);
    }

    #[test]
    fn no_spurious_select_hint_via_where_equalities() {
        // Example 2's closing remark: no suggestion to change s2.beer to
        // likes.beer in SELECT.
        let qr = QrHint::new(beers_schema());
        let advice = qr
            .advise_sql(
                "SELECT l.beer FROM Likes l, Serves s WHERE l.beer = s.beer",
                "SELECT s.beer FROM Likes l, Serves s WHERE l.beer = s.beer",
            )
            .unwrap();
        assert!(advice.is_equivalent(), "{:?}", advice.hints);
    }

    #[test]
    fn groupby_stage_hints() {
        let qr = QrHint::new(beers_schema());
        let advice = qr
            .advise_sql(
                "SELECT l.drinker, COUNT(*) FROM Likes l GROUP BY l.drinker",
                "SELECT l.drinker, COUNT(*) FROM Likes l GROUP BY l.drinker, l.beer",
            )
            .unwrap();
        assert_eq!(advice.stage, Stage::GroupBy);
        assert!(matches!(advice.hints[0], Hint::GroupByRemove { .. }));
        let (final_q, _) = qr
            .fix_fully(
                &qr.prepare("SELECT l.drinker, COUNT(*) FROM Likes l GROUP BY l.drinker")
                    .unwrap(),
                &qr.prepare(
                    "SELECT l.drinker, COUNT(*) FROM Likes l GROUP BY l.drinker, l.beer",
                )
                .unwrap(),
            )
            .unwrap();
        assert_eq!(final_q.group_by.len(), 1);
    }

    #[test]
    fn default_iteration_cap_derives_from_stage_count() {
        let cfg = QrHintConfig::default();
        assert_eq!(cfg.max_stage_applications, 3 * Stage::COUNT + 1);
        // A cap of zero makes fix_fully fail immediately rather than loop.
        let qr = QrHint::with_config(
            beers_schema(),
            QrHintConfig { max_stage_applications: 0, ..QrHintConfig::default() },
        );
        let q_star = qr.prepare("SELECT l.beer FROM Likes l").unwrap();
        let q = qr.prepare("SELECT l.drinker FROM Likes l").unwrap();
        let err = qr.fix_fully(&q_star, &q).unwrap_err();
        assert!(err.to_string().contains("0 stage applications"), "{err}");
    }
}

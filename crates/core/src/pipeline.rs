//! The stage pipeline (§3.1, Theorem 3.1): FROM → WHERE → GROUP BY →
//! HAVING → SELECT for SPJA queries (FROM → WHERE → SELECT for SPJ),
//! with viability checks, hint generation, and the simulated user loop
//! `fix_fully` used by the experiments and differential tests.

use crate::error::{QrHintError, QrResult};
use crate::hint::{Hint, Stage};
use crate::mapping::{table_mapping, unify_target, TableMapping};
use crate::oracle::{LowerEnv, Oracle};
use crate::repair::RepairConfig;
use crate::stages::{
    from_stage, groupby_stage, having_stage, select_stage, where_stage,
};
use qrhint_sqlast::{resolve::resolve_query, Pred, Query, Scalar, Schema};
use qrhint_sqlparse::{parse_query, parse_query_extended, FlattenOptions};

/// Pipeline configuration.
#[derive(Debug, Clone, Default)]
pub struct QrHintConfig {
    pub repair: RepairConfig,
}

/// A Qr-Hint session bound to one database schema.
#[derive(Debug, Clone)]
pub struct QrHint {
    schema: Schema,
    cfg: QrHintConfig,
}

/// The advice produced for one working-query state: the first failing
/// stage, its hints, and the auto-applied fix for simulation.
#[derive(Debug, Clone)]
pub struct Advice {
    /// First stage whose viability check failed (`Done` = equivalent).
    pub stage: Stage,
    pub hints: Vec<Hint>,
    /// The working query with this stage's repair applied (present
    /// whenever `stage != Done`).
    pub fixed: Option<Query>,
    /// The alias mapping (available once the FROM stage passes).
    pub mapping: Option<TableMapping>,
}

impl Advice {
    pub fn is_equivalent(&self) -> bool {
        self.stage == Stage::Done
    }
}

impl QrHint {
    pub fn new(schema: Schema) -> QrHint {
        QrHint { schema, cfg: QrHintConfig::default() }
    }

    pub fn with_config(schema: Schema, cfg: QrHintConfig) -> QrHint {
        QrHint { schema, cfg }
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Parse and resolve a query against the session schema.
    pub fn prepare(&self, sql: &str) -> QrResult<Query> {
        let q = parse_query(sql)?;
        Ok(resolve_query(&self.schema, &q)?)
    }

    /// Parse with the multi-block front-end (footnote 2 of the paper:
    /// `WITH` CTEs, aggregation-free subqueries in FROM, non-outer JOINs —
    /// plus the opt-in positive EXISTS/IN rewrite of §3), flatten to the
    /// single-block fragment, and resolve.
    pub fn prepare_extended(&self, sql: &str, opts: &FlattenOptions) -> QrResult<Query> {
        let q = parse_query_extended(sql, opts)?;
        Ok(resolve_query(&self.schema, &q)?)
    }

    /// [`QrHint::advise_sql`] with both queries run through the
    /// multi-block front-end. Either query may freely mix JOIN syntax,
    /// CTEs and FROM subqueries; hints refer to the flattened form.
    pub fn advise_sql_extended(
        &self,
        target_sql: &str,
        working_sql: &str,
        opts: &FlattenOptions,
    ) -> QrResult<Advice> {
        let q_star = self.prepare_extended(target_sql, opts)?;
        let q = self.prepare_extended(working_sql, opts)?;
        self.advise(&q_star, &q)
    }

    /// Advise on SQL strings.
    pub fn advise_sql(&self, target_sql: &str, working_sql: &str) -> QrResult<Advice> {
        let q_star = self.prepare(target_sql)?;
        let q = self.prepare(working_sql)?;
        self.advise(&q_star, &q)
    }

    /// Run the stage checks on resolved queries, returning the first
    /// failing stage's hints.
    pub fn advise(&self, q_star: &Query, q: &Query) -> QrResult<Advice> {
        // ---- Stage 1: FROM ----
        let from_out = from_stage::check_from(q_star, q);
        if !from_out.viable {
            let fixed = from_stage::apply_from_fix(q, q_star);
            return Ok(Advice {
                stage: Stage::From,
                hints: from_out.hints,
                fixed: Some(fixed),
                mapping: None,
            });
        }
        // Table mapping + unification (§4).
        let mapping = table_mapping(q_star, q).ok_or_else(|| {
            QrHintError::Internal("table mapping failed after viable FROM".into())
        })?;
        let unified = unify_target(q_star, &mapping);
        let mut oracle = Oracle::for_queries(&self.schema, &[&unified, q]);
        // Schema CHECK constraints instantiated per FROM alias hold on
        // every row of F(Q) and enter all per-row reasoning as context
        // (§3 Limitations item 4, the quantifier-free fragment).
        let domain_ctx = self.schema.domain_context(q);

        // ---- Stage 2: WHERE (with SPJA look-ahead) ----
        let where_out =
            where_stage::check_where(&mut oracle, &unified, q, &self.cfg.repair, &domain_ctx);
        if !where_out.viable {
            let mut fixed = q.clone();
            // Repairs refer to the normalized working WHERE (the user's
            // movable HAVING conjuncts lifted in — a legal rewrite).
            fixed.where_pred = where_out.working_where.clone();
            fixed.having = where_out.working_having.clone();
            if let Some(r) = where_out.repair.as_ref().and_then(|o| o.repair.as_ref()) {
                fixed.where_pred = r.apply(&where_out.working_where);
            } else {
                // No repair found within limits: fall back to the
                // whole-clause replacement (always correct).
                fixed.where_pred = where_out.target_where.clone();
            }
            let hints = if where_out.hints.is_empty() {
                vec![Hint::PredicateRepair {
                    clause: crate::hint::ClauseKind::Where,
                    sites: vec![crate::hint::SiteHint {
                        path: vec![],
                        current: q.where_pred.clone(),
                        fix: where_out.target_where.clone(),
                    }],
                    cost: f64::INFINITY,
                }]
            } else {
                where_out.hints.clone()
            };
            return Ok(Advice {
                stage: Stage::Where,
                hints,
                fixed: Some(fixed),
                mapping: Some(mapping),
            });
        }
        let target_where = where_out.target_where.clone();
        let target_having = where_out.target_having.clone().unwrap_or(Pred::True);
        // Context for the later stages' reasoning: rows reaching GROUP
        // BY / HAVING / SELECT satisfy WHERE *and* the domain checks.
        // (`target_where` itself stays pristine — it is also the literal
        // fallback WHERE text for whole-clause repairs.)
        let reasoning_where = if domain_ctx.is_empty() {
            target_where.clone()
        } else {
            Pred::and(
                std::iter::once(target_where.clone())
                    .chain(domain_ctx.iter().cloned())
                    .collect(),
            )
        };

        // Grouping/aggregation structure, ignoring DISTINCT (a pure
        // DISTINCT mismatch is a SELECT-stage issue, not a grouping one).
        let has_group_agg = |query: &Query| {
            !query.group_by.is_empty()
                || query.having.is_some()
                || query.select.iter().any(|s| s.expr.has_aggregate())
        };
        let star_spja = has_group_agg(&unified);
        let work_spja = has_group_agg(q);

        if star_spja || work_spja {
            // ---- Structure check (Lemma D.1) ----
            if star_spja != work_spja {
                let mut fixed = q.clone();
                fixed.group_by = unified.group_by.clone();
                if !star_spja {
                    fixed.having = None;
                    fixed.distinct = unified.distinct;
                    // De-aggregating: unwrap aggregate calls in SELECT so
                    // the query leaves the SPJA fragment (the SELECT stage
                    // then repairs the expressions themselves).
                    fn strip_aggs(e: &Scalar) -> Scalar {
                        match e {
                            Scalar::Agg(call) => match &call.arg {
                                qrhint_sqlast::AggArg::Expr(inner) => strip_aggs(inner),
                                qrhint_sqlast::AggArg::Star => Scalar::Int(1),
                            },
                            Scalar::Arith(l, op, r) => Scalar::Arith(
                                Box::new(strip_aggs(l)),
                                *op,
                                Box::new(strip_aggs(r)),
                            ),
                            Scalar::Neg(inner) => Scalar::Neg(Box::new(strip_aggs(inner))),
                            other => other.clone(),
                        }
                    }
                    for item in &mut fixed.select {
                        item.expr = strip_aggs(&item.expr);
                    }
                }
                return Ok(Advice {
                    stage: Stage::GroupBy,
                    hints: vec![Hint::Structure { needs_grouping: star_spja }],
                    fixed: Some(fixed),
                    mapping: Some(mapping),
                });
            }
            // ---- Stage 3: GROUP BY ----
            let gb_out = groupby_stage::fix_grouping(
                &mut oracle,
                &reasoning_where,
                &q.group_by,
                &unified.group_by,
            );
            if !gb_out.viable {
                let fixed = groupby_stage::apply_grouping_fix(q, &unified.group_by, &gb_out);
                return Ok(Advice {
                    stage: Stage::GroupBy,
                    hints: gb_out.hints(&q.group_by),
                    fixed: Some(fixed),
                    mapping: Some(mapping),
                });
            }
            // ---- Stage 4: HAVING ----
            let working_having =
                where_out.working_having.clone().unwrap_or(Pred::True);
            let hv_out = having_stage::check_having(
                &mut oracle,
                &unified,
                &working_having,
                &reasoning_where,
                &target_having,
                &self.cfg.repair,
            );
            if !hv_out.viable {
                let mut normalized = q.clone();
                normalized.where_pred = where_out.working_where.clone();
                normalized.having = where_out.working_having.clone();
                let mut fixed = having_stage::apply_having_fix(&normalized, &hv_out);
                if hv_out.repair.as_ref().is_none_or(|o| o.repair.is_none()) {
                    fixed.having = if target_having == Pred::True {
                        None
                    } else {
                        Some(target_having.clone())
                    };
                }
                let hints = if hv_out.hints.is_empty() {
                    vec![Hint::PredicateRepair {
                        clause: crate::hint::ClauseKind::Having,
                        sites: vec![crate::hint::SiteHint {
                            path: vec![],
                            current: q.having_pred(),
                            fix: target_having.clone(),
                        }],
                        cost: f64::INFINITY,
                    }]
                } else {
                    hv_out.hints.clone()
                };
                return Ok(Advice {
                    stage: Stage::Having,
                    hints,
                    fixed: Some(fixed),
                    mapping: Some(mapping),
                });
            }
        }

        // ---- Stage 5 (or 3 for SPJ): SELECT ----
        let env = if star_spja {
            let grouped = having_stage::group_constant_cols(&unified, &reasoning_where);
            let env = having_stage::install_having_context(
                &mut oracle,
                &reasoning_where,
                &q.having_pred(),
                &target_having,
                &grouped,
            );
            // Rows reaching SELECT also satisfy HAVING.
            let hf = oracle.lower_pred_env(&target_having, &env);
            let mut full = vec![hf];
            full.extend(oracle.aggregate_axioms(&reasoning_where));
            // Keep the WHERE facts over group-constant columns too.
            let wf_conjuncts: Vec<Pred> = match &reasoning_where {
                Pred::And(cs) => cs.clone(),
                Pred::True => vec![],
                other => vec![other.clone()],
            };
            for c in wf_conjuncts {
                let mut cols = Vec::new();
                c.collect_columns(&mut cols);
                if !c.has_aggregate() && cols.iter().all(|col| grouped.contains(col)) {
                    let f = oracle.lower_pred_env(&c, &env);
                    full.push(f);
                }
            }
            oracle.set_ambient(env.clone(), full);
            env
        } else {
            let wf = oracle.lower_pred(&reasoning_where);
            oracle.set_ambient(LowerEnv::plain(), vec![wf]);
            LowerEnv::plain()
        };
        let working_exprs: Vec<Scalar> = q.select.iter().map(|s| s.expr.clone()).collect();
        let target_exprs: Vec<Scalar> =
            unified.select.iter().map(|s| s.expr.clone()).collect();
        let sel_out = select_stage::fix_select(&mut oracle, &env, &working_exprs, &target_exprs);
        let distinct_ok = q.distinct == unified.distinct;
        oracle.clear_ambient();
        if !sel_out.viable || !distinct_ok {
            let mut fixed = select_stage::apply_select_fix(q, &target_exprs, &sel_out);
            fixed.distinct = unified.distinct;
            let mut hints = sel_out.hints(&working_exprs);
            if !distinct_ok {
                hints.push(Hint::DistinctMismatch { need_distinct: unified.distinct });
            }
            return Ok(Advice {
                stage: Stage::Select,
                hints,
                fixed: Some(fixed),
                mapping: Some(mapping),
            });
        }

        Ok(Advice { stage: Stage::Done, hints: vec![], fixed: None, mapping: Some(mapping) })
    }

    /// Simulate a user who applies every suggested repair: iterate
    /// `advise` + apply until `Done`. Returns the final query and the
    /// advice trail (one entry per stage interaction — Theorem 3.1
    /// guarantees termination; the iteration cap is defensive).
    pub fn fix_fully(&self, q_star: &Query, q: &Query) -> QrResult<(Query, Vec<Advice>)> {
        let mut current = q.clone();
        let mut trail = Vec::new();
        for _ in 0..16 {
            let advice = self.advise(q_star, &current)?;
            if advice.is_equivalent() {
                trail.push(advice);
                return Ok((current, trail));
            }
            let Some(fixed) = advice.fixed.clone() else {
                return Err(QrHintError::Internal(format!(
                    "stage {} produced no applicable fix",
                    advice.stage
                )));
            };
            trail.push(advice);
            current = fixed;
        }
        Err(QrHintError::Internal(
            "pipeline did not converge within 16 stage applications".into(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrhint_sqlast::SqlType;

    fn beers_schema() -> Schema {
        Schema::new()
            .with_table(
                "Likes",
                &[("drinker", SqlType::Str), ("beer", SqlType::Str)],
                &["drinker", "beer"],
            )
            .with_table(
                "Frequents",
                &[("drinker", SqlType::Str), ("bar", SqlType::Str)],
                &["drinker", "bar"],
            )
            .with_table(
                "Serves",
                &[("bar", SqlType::Str), ("beer", SqlType::Str), ("price", SqlType::Int)],
                &["bar", "beer"],
            )
    }

    const TARGET: &str = "SELECT L.beer, S1.bar, COUNT(*)
        FROM Likes L, Frequents F, Serves S1, Serves S2
        WHERE L.drinker = F.drinker AND F.bar = S1.bar
          AND L.beer = S1.beer AND S1.beer = S2.beer
          AND S1.price <= S2.price
        GROUP BY F.drinker, L.beer, S1.bar
        HAVING F.drinker = 'Amy'";

    const WORKING: &str = "SELECT s2.beer, s2.bar, COUNT(*)
        FROM Likes, Serves s1, Serves s2
        WHERE drinker = 'Amy'
          AND Likes.beer = s1.beer AND Likes.beer = s2.beer
          AND s1.price > s2.price
        GROUP BY s2.beer, s2.bar";

    #[test]
    fn paper_example2_first_hint_is_from() {
        let qr = QrHint::new(beers_schema());
        let advice = qr.advise_sql(TARGET, WORKING).unwrap();
        assert_eq!(advice.stage, Stage::From);
        assert_eq!(advice.hints.len(), 1);
        let txt = advice.hints[0].to_string();
        assert!(txt.contains("frequents"), "{txt}");
    }

    #[test]
    fn equivalent_queries_are_done_immediately() {
        let qr = QrHint::new(beers_schema());
        let advice = qr
            .advise_sql(
                "SELECT l.beer FROM Likes l WHERE l.drinker = 'Amy'",
                "SELECT likes.beer FROM Likes WHERE likes.drinker = 'Amy'",
            )
            .unwrap();
        assert!(advice.is_equivalent());
        // Syntactically different but semantically equal WHEREs:
        let advice2 = qr
            .advise_sql(
                "SELECT s.bar FROM Serves s WHERE s.price >= 3 AND s.beer = 'IPA'",
                "SELECT s.bar FROM Serves s WHERE s.beer = 'IPA' AND s.price > 2",
            )
            .unwrap();
        assert!(advice2.is_equivalent());
    }

    #[test]
    fn where_stage_hint_and_fix() {
        let qr = QrHint::new(beers_schema());
        let advice = qr
            .advise_sql(
                "SELECT s.bar FROM Serves s WHERE s.price >= 3",
                "SELECT s.bar FROM Serves s WHERE s.price > 3",
            )
            .unwrap();
        assert_eq!(advice.stage, Stage::Where);
        let fixed = advice.fixed.unwrap();
        let advice2 = qr
            .advise(&qr.prepare("SELECT s.bar FROM Serves s WHERE s.price >= 3").unwrap(), &fixed)
            .unwrap();
        assert!(advice2.is_equivalent());
    }

    #[test]
    fn structure_mismatch_hint() {
        let qr = QrHint::new(beers_schema());
        let advice = qr
            .advise_sql(
                "SELECT l.drinker, COUNT(*) FROM Likes l GROUP BY l.drinker",
                "SELECT l.drinker, l.beer FROM Likes l",
            )
            .unwrap();
        // FROM passes; WHERE passes (both TRUE); structure mismatch next.
        assert_eq!(advice.stage, Stage::GroupBy);
        assert!(matches!(advice.hints[0], Hint::Structure { needs_grouping: true }));
    }

    #[test]
    fn full_paper_example_converges() {
        let qr = QrHint::new(beers_schema());
        let q_star = qr.prepare(TARGET).unwrap();
        let q = qr.prepare(WORKING).unwrap();
        let (final_q, trail) = qr.fix_fully(&q_star, &q).unwrap();
        assert!(trail.last().unwrap().is_equivalent());
        // The trail visits FROM first, then WHERE.
        assert_eq!(trail[0].stage, Stage::From);
        assert!(trail.iter().any(|a| a.stage == Stage::Where));
        // And the final query is verified equivalent by the pipeline.
        let final_advice = qr.advise(&q_star, &final_q).unwrap();
        assert!(final_advice.is_equivalent());
    }

    #[test]
    fn select_stage_distinct_mismatch() {
        let qr = QrHint::new(beers_schema());
        let advice = qr
            .advise_sql(
                "SELECT DISTINCT l.beer FROM Likes l",
                "SELECT l.beer FROM Likes l",
            )
            .unwrap();
        assert_eq!(advice.stage, Stage::Select);
        assert!(advice
            .hints
            .iter()
            .any(|h| matches!(h, Hint::DistinctMismatch { need_distinct: true })));
        let fixed = advice.fixed.unwrap();
        assert!(fixed.distinct);
    }

    #[test]
    fn no_spurious_select_hint_via_where_equalities() {
        // Example 2's closing remark: no suggestion to change s2.beer to
        // likes.beer in SELECT.
        let qr = QrHint::new(beers_schema());
        let advice = qr
            .advise_sql(
                "SELECT l.beer FROM Likes l, Serves s WHERE l.beer = s.beer",
                "SELECT s.beer FROM Likes l, Serves s WHERE l.beer = s.beer",
            )
            .unwrap();
        assert!(advice.is_equivalent(), "{:?}", advice.hints);
    }

    #[test]
    fn groupby_stage_hints() {
        let qr = QrHint::new(beers_schema());
        let advice = qr
            .advise_sql(
                "SELECT l.drinker, COUNT(*) FROM Likes l GROUP BY l.drinker",
                "SELECT l.drinker, COUNT(*) FROM Likes l GROUP BY l.drinker, l.beer",
            )
            .unwrap();
        assert_eq!(advice.stage, Stage::GroupBy);
        assert!(matches!(advice.hints[0], Hint::GroupByRemove { .. }));
        let (final_q, _) = qr
            .fix_fully(
                &qr.prepare("SELECT l.drinker, COUNT(*) FROM Likes l GROUP BY l.drinker")
                    .unwrap(),
                &qr.prepare(
                    "SELECT l.drinker, COUNT(*) FROM Likes l GROUP BY l.drinker, l.beer",
                )
                .unwrap(),
            )
            .unwrap();
        assert_eq!(final_q.group_by.len(), 1);
    }
}

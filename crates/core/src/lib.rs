//! # qrhint-core
//!
//! The core of the Qr-Hint reproduction (SIGMOD 2024): given a correct
//! *target* query `Q★` and a wrong *working* query `Q`, produce
//! actionable, provably correct, locally optimal hints that lead the user
//! to a query equivalent to `Q★` — without revealing `Q★` itself.
//!
//! ## Architecture (paper § → module)
//!
//! | Paper | Module |
//! |-------|--------|
//! | §3 solver primitives | [`oracle`] (over [`qrhint_smt`]) |
//! | §4 FROM stage + App. B table mapping | [`stages::from_stage`], [`mapping`] |
//! | §5 WHERE repairs (Algorithms 1–3, 5–8) | [`repair`] |
//! | §6 GROUP BY (Algorithm 4) | [`stages::groupby_stage`] |
//! | §7 HAVING + aggregate context | [`stages::having_stage`] |
//! | §8 SELECT (Algorithm 9) | [`stages::select_stage`] |
//! | §3.1 stage pipeline (Theorem 3.1) | [`pipeline`] |
//!
//! ## Quick start
//!
//! ```
//! use qrhint_core::{QrHint, Stage};
//! use qrhint_sqlast::{Schema, SqlType};
//!
//! let schema = Schema::new()
//!     .with_table("Serves", &[("bar", SqlType::Str), ("beer", SqlType::Str),
//!                             ("price", SqlType::Int)], &["bar", "beer"]);
//! let qr = QrHint::new(schema);
//! let advice = qr.advise_sql(
//!     "SELECT s.bar FROM Serves s WHERE s.price >= 3",
//!     "SELECT s.bar FROM Serves s WHERE s.price > 3",
//! ).unwrap();
//! assert_eq!(advice.stage, Stage::Where);
//! for hint in &advice.hints {
//!     println!("{hint}");
//! }
//! ```

#![forbid(unsafe_code)]

pub mod error;
pub mod hint;
pub mod mapping;
pub mod nullsafe;
pub mod oracle;
pub mod pipeline;
pub mod repair;
pub mod stages;

pub use error::{QrHintError, QrResult};
pub use hint::{ClauseKind, Hint, SiteHint, Stage};
pub use oracle::{LowerEnv, Oracle, TypeEnv};
pub use pipeline::{Advice, QrHint, QrHintConfig};
pub use qrhint_sqlparse::FlattenOptions;
pub use repair::{FixStrategy, Repair, RepairConfig, RepairOutcome};

//! # qrhint-core
//!
//! The core of the Qr-Hint reproduction (SIGMOD 2024): given a correct
//! *target* query `Q★` and a wrong *working* query `Q`, produce
//! actionable, provably correct, locally optimal hints that lead the user
//! to a query equivalent to `Q★` — without revealing `Q★` itself.
//!
//! ## Architecture (paper § → module)
//!
//! | Paper | Module |
//! |-------|--------|
//! | §3 solver primitives | [`oracle`] (over [`qrhint_smt`]) |
//! | §4 FROM stage + App. B table mapping | [`stages::from_stage`], [`mapping`] |
//! | §5 WHERE repairs (Algorithms 1–3, 5–8) | [`repair`] |
//! | §6 GROUP BY (Algorithm 4) | [`stages::groupby_stage`] |
//! | §7 HAVING + aggregate context | [`stages::having_stage`] |
//! | §8 SELECT (Algorithm 9) | [`stages::select_stage`] |
//! | §3.1 stage pipeline (Theorem 3.1) | [`pipeline`] (stage walk: crate-private `runner`) |
//! | §1/§10 deployment (one target, many submissions) | [`session`] |
//!
//! ## Quick start: compile once, advise many
//!
//! The deployment shape is one hidden target graded against many student
//! submissions. [`QrHint::compile_target`] does the target-side work once
//! (parse, resolve, and — per working-FROM binding — table mapping,
//! unification and solver setup); the returned [`session::PreparedTarget`]
//! then grades each submission incrementally:
//!
//! ```
//! use qrhint_core::{QrHint, Stage};
//! use qrhint_sqlast::{Schema, SqlType};
//!
//! let schema = Schema::new()
//!     .with_table("Serves", &[("bar", SqlType::Str), ("beer", SqlType::Str),
//!                             ("price", SqlType::Int)], &["bar", "beer"]);
//! let qr = QrHint::new(schema);
//! let prepared = qr
//!     .compile_target("SELECT s.bar FROM Serves s WHERE s.price >= 3")
//!     .unwrap();
//!
//! // Classroom-scale batch grading (bad submissions don't abort the batch):
//! let advices = prepared.grade_batch(&[
//!     "SELECT s.bar FROM Serves s WHERE s.price > 3",
//!     "SELECT s.bar FROM Serves s WHERE s.price >= 3",
//! ]);
//! assert_eq!(advices[0].as_ref().unwrap().stage, Stage::Where);
//! assert!(advices[1].as_ref().unwrap().is_equivalent());
//!
//! // Incremental tutoring: advise → apply; unchanged stages are memo
//! // hits, so each step pays solver work only where the query changed.
//! let mut session = prepared
//!     .tutor_sql("SELECT s.bar FROM Serves s WHERE s.price > 3")
//!     .unwrap();
//! while !session.is_done() {
//!     let advice = session.step().unwrap();
//!     for hint in &advice.hints {
//!         println!("{hint}");
//!     }
//! }
//! ```
//!
//! Advice is serde-serializable end-to-end
//! (`serde_json::to_string(&advice)`), so graders can consume structured
//! JSON instead of re-parsing rendered English. The stateless
//! [`QrHint::advise_sql`] / [`QrHint::fix_fully`] remain as thin wrappers
//! over the session layer for one-shot use.
//!
//! [`PreparedTarget`]'s memo state is sharded for concurrency (see the
//! [`session`] module docs): large, mostly-distinct batches can fan out
//! over a scoped worker pool with
//! [`session::PreparedTarget::grade_batch_parallel`] (built on
//! [`parallel::run_indexed`]) and get byte-identical results in input
//! order.

#![forbid(unsafe_code)]

pub mod error;
pub mod hint;
pub mod mapping;
pub mod nullsafe;
pub mod oracle;
pub mod parallel;
pub mod pipeline;
pub mod repair;
pub mod report;
pub(crate) mod runner;
pub mod session;
pub mod stages;
pub(crate) mod verdicts;

pub use error::{QrHintError, QrResult};
pub use qrhint_analysis as analysis;
pub use qrhint_analysis::{DiagCode, Diagnostic, Severity};
pub use hint::{ClauseKind, Hint, SiteHint, Stage};
pub use oracle::{
    BatchCtx, InternerStats, LowerEnv, LoweringMemoStats, Oracle, SolverContext, TypeEnv,
};
pub use pipeline::{Advice, QrHint, QrHintConfig};
pub use qrhint_sqlparse::FlattenOptions;
pub use repair::{FixStrategy, Repair, RepairConfig, RepairOutcome};
pub use report::AdviceReport;
pub use session::{PreparedTarget, SessionStats, TutorSession};

//! Behavior pins for the three analyzer passes: each diagnostic code fires
//! on its canonical trigger, correct queries stay silent, and spans
//! round-trip through Display/parse.

use qrhint_analysis::{analyze, has_errors, Clause, DiagCode, Diagnostic, Severity, Span};
use qrhint_sqlast::Schema;
use qrhint_sqlparse::{parse_query, parse_schema};

fn schema() -> Schema {
    parse_schema(
        "CREATE TABLE bars (name TEXT PRIMARY KEY, city TEXT);
         CREATE TABLE serves (bar TEXT, beer TEXT, price INT);",
    )
    .expect("test schema parses")
}

fn diags(sql: &str) -> Vec<Diagnostic> {
    let q = parse_query(sql).expect("test query parses");
    analyze(&schema(), &q)
}

fn codes(sql: &str) -> Vec<DiagCode> {
    diags(sql).iter().map(|d| d.code).collect()
}

#[test]
fn clean_queries_are_silent() {
    for sql in [
        "SELECT s.beer FROM serves s WHERE s.price < 5",
        "SELECT s.bar, COUNT(*) FROM serves s GROUP BY s.bar",
        "SELECT s.bar, AVG(s.price) FROM serves s WHERE s.price > 2 \
         GROUP BY s.bar HAVING COUNT(*) >= 2",
        "SELECT COUNT(*) FROM serves s WHERE s.beer = 'IPA'",
        "SELECT b.name FROM bars b, serves s WHERE b.name = s.bar AND s.price <= 7",
        // Mixed SELECT is fine when the column is WHERE-pinned and grouped
        // columns cover the rest.
        "SELECT s.bar, COUNT(*) FROM serves s WHERE s.bar = 'Joyce' GROUP BY s.bar",
    ] {
        assert_eq!(diags(sql), Vec::new(), "expected no diagnostics for `{sql}`");
    }
}

#[test]
fn type_pass_codes_fire() {
    // QH-T01: string column vs integer literal.
    assert!(codes("SELECT s.beer FROM serves s WHERE s.beer = 3")
        .contains(&DiagCode::CmpTypeMismatch));
    // QH-T02: arithmetic over a string column.
    assert!(codes("SELECT s.beer FROM serves s WHERE s.beer + 1 = 2")
        .contains(&DiagCode::ArithNonInt));
    // QH-T03: LIKE on an integer column.
    assert!(codes("SELECT s.beer FROM serves s WHERE s.price LIKE 'a%'")
        .contains(&DiagCode::LikeNonString));
    // QH-T04: SUM over a string column.
    assert!(codes("SELECT SUM(s.beer) FROM serves s").contains(&DiagCode::AggArgNonInt));
    // QH-T10: LIKE with no wildcard.
    assert!(codes("SELECT s.beer FROM serves s WHERE s.beer LIKE 'IPA'")
        .contains(&DiagCode::LikeNoWildcard));
    // QH-T11: constant-vs-constant comparison.
    assert!(codes("SELECT s.beer FROM serves s WHERE 1 = 1")
        .contains(&DiagCode::ConstComparison));
}

#[test]
fn aggregate_pass_codes_fire() {
    // QH-A01: aggregate in WHERE.
    assert!(codes("SELECT s.beer FROM serves s WHERE COUNT(*) > 1 GROUP BY s.beer")
        .contains(&DiagCode::AggInWhere));
    // QH-A03: aggregate in GROUP BY.
    assert!(codes("SELECT COUNT(*) FROM serves s GROUP BY MAX(s.price)")
        .contains(&DiagCode::AggInGroupBy));
    // QH-A04: the GROUP-BY-elision shape — mixed SELECT, no GROUP BY.
    let d = diags("SELECT s.bar, COUNT(*) FROM serves s WHERE s.bar = 'Joyce'");
    assert!(d.iter().any(|x| x.code == DiagCode::UngroupedSelect && x.is_error()));
    assert!(has_errors(&d));
    // QH-A05: constant HAVING operand over the implicit group.
    assert!(codes("SELECT COUNT(*) FROM serves s HAVING COUNT(*) > 1")
        .contains(&DiagCode::UngroupedHaving));
    // QH-A10: grouped query reading a non-group-constant column.
    let d = diags("SELECT s.bar, COUNT(*) FROM serves s GROUP BY s.beer");
    assert!(d.iter().any(|x| x.code == DiagCode::UngroupedColumn
        && x.severity == Severity::Warning));
    assert!(!has_errors(&d), "representative-row reads execute; warning only");
}

#[test]
fn interp_pass_codes_fire() {
    // QH-P01: interval contradiction.
    let d = diags("SELECT s.beer FROM serves s WHERE s.price > 5 AND s.price < 3");
    assert!(d.iter().any(|x| x.code == DiagCode::Contradiction));
    // QH-P01 via string equalities.
    assert!(codes("SELECT s.beer FROM serves s WHERE s.bar = 'a' AND s.bar = 'b'")
        .contains(&DiagCode::Contradiction));
    // QH-P02: complementary OR.
    assert!(codes("SELECT s.beer FROM serves s WHERE s.price > 5 OR s.price <= 5")
        .contains(&DiagCode::Tautology));
    // QH-P03: dead OR branch (root stays undecided).
    let d = diags(
        "SELECT s.beer FROM serves s WHERE s.bar = 'x' OR (s.price > 5 AND s.price < 3)",
    );
    assert!(d.iter().any(|x| x.code == DiagCode::DeadBranch && x.span.path == vec![1]));
    // QH-P04: implied conjunct.
    let d = diags("SELECT s.beer FROM serves s WHERE s.price > 5 AND s.price > 3");
    assert!(d.iter().any(|x| x.code == DiagCode::RedundantConjunct && x.span.path == vec![1]));
    // QH-P04: duplicate conjunct.
    let d = diags("SELECT s.beer FROM serves s WHERE s.bar = 'a' AND s.bar = 'a'");
    assert!(d.iter().any(|x| x.code == DiagCode::RedundantConjunct));
}

#[test]
fn contradictions_bind_havings_too() {
    let d = diags(
        "SELECT s.bar, COUNT(*) FROM serves s GROUP BY s.bar \
         HAVING COUNT(*) > 5 AND COUNT(*) < 2",
    );
    assert!(d.iter().any(|x| x.code == DiagCode::Contradiction && x.clause == Clause::Having));
}

#[test]
fn spans_round_trip() {
    for d in diags("SELECT s.bar FROM serves s WHERE s.bar = 'x' OR (s.price > 5 AND s.price < 3)")
        .iter()
        .chain(diags("SELECT s.bar, COUNT(*) FROM serves s WHERE s.bar = 'Joyce'").iter())
    {
        let text = d.span.to_string();
        let parsed: Span = text.parse().expect("span parses back");
        assert_eq!(&parsed, &d.span, "round-trip failed for `{text}`");
    }
    let s: Span = "WHERE[0]@0.1".parse().unwrap();
    assert_eq!(s, Span::at(Clause::Where, 0, &[0, 1]));
    assert!("WHERE[0]@x".parse::<Span>().is_err());
    assert!("NOWHERE[0]".parse::<Span>().is_err());
}

#[test]
fn diagnostics_serde_round_trip() {
    use serde::{Deserialize, Serialize};
    for d in diags("SELECT s.bar, COUNT(*) FROM serves s WHERE s.bar = 'Joyce'") {
        let v = d.to_value();
        let back = Diagnostic::from_value(&v).expect("deserializes");
        assert_eq!(back, d);
    }
}

#[test]
fn output_is_deterministic() {
    let sql = "SELECT s.bar, s.beer FROM serves s \
               WHERE (s.price > 9 AND s.price < 2) OR s.beer = 3";
    let a = format!("{:?}", diags(sql));
    for _ in 0..10 {
        assert_eq!(a, format!("{:?}", diags(sql)));
    }
}

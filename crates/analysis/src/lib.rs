//! Schema-aware static analyzer for the Qr-Hint SQL fragment.
//!
//! Grading in qrhint-core is solver-backed: every WHERE/HAVING comparison
//! ultimately turns into SMT satisfiability checks. That is the right tool
//! for *semantic* equivalence, but a large class of student mistakes is
//! decidable without any solver at all — type confusions, aggregates in the
//! wrong clause, and predicates that are contradictory or tautological by
//! simple interval reasoning. This crate closes that gap with a three-pass
//! analyzer over resolved [`Query`] values:
//!
//! 1. **Sort/type checking** ([`types`]) — column sorts from the [`Schema`],
//!    operator and aggregate signatures, plus lints for comparisons that are
//!    suspicious even when well-typed (constant-vs-constant comparisons,
//!    `LIKE` patterns with no wildcard).
//! 2. **Aggregate placement dataflow** ([`aggregates`]) — aggregates in
//!    WHERE or GROUP BY, nested aggregates, and the empty-group hazard: a
//!    grouped query without GROUP BY evaluates non-aggregate SELECT/HAVING
//!    expressions over the implicit group, which the execution engine
//!    rejects when that group is empty. This statically flags the
//!    GROUP-BY-elision family the differential oracle quarantined in PR 6.
//! 3. **Interval/constant abstract interpretation** ([`interp`]) — constant
//!    folding and per-column integer intervals / string equality facts over
//!    WHERE and HAVING: contradictions (`a > 5 AND a < 3`), tautologies,
//!    dead OR branches, and redundant conjuncts. No SMT calls are made.
//!
//! Every finding is a machine-readable [`Diagnostic`] with a stable
//! [`DiagCode`], a [`Severity`], and a [`Span`] that round-trips through
//! `Display`/`FromStr` (e.g. `WHERE[0]@0.1` = WHERE predicate, path 0.1
//! into the connective tree). [`analyze`] runs all three passes and returns
//! diagnostics in deterministic clause/span/code order, so output is
//! byte-identical regardless of thread count or iteration order upstream.
//!
//! Severity policy: `Error` means the query is statically guaranteed to
//! misbehave under the engine's semantics (type confusion at runtime, or an
//! empty-group evaluation error); `Warning` means the query executes but is
//! almost certainly not what the author meant. Correct target queries must
//! produce no diagnostics at all — this is enforced by tests over all six
//! workload schemas.

use std::fmt;
use std::str::FromStr;

use qrhint_sqlast::{Query, Schema};
use serde::{DeError, Deserialize, Serialize, Value};

pub mod aggregates;
pub mod interp;
pub mod types;

/// How bad a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious but executable: the query runs, yet almost certainly does
    /// not mean what the author intended.
    Warning,
    /// Statically guaranteed to misbehave under the engine's semantics.
    Error,
}

impl Severity {
    /// Stable lower-case name used in JSON and text output.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The clause a diagnostic anchors to, in SQL textual order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Clause {
    Select,
    From,
    Where,
    GroupBy,
    Having,
}

impl Clause {
    /// Stable upper-case SQL spelling (`GROUP BY` contains a space).
    pub fn as_str(self) -> &'static str {
        match self {
            Clause::Select => "SELECT",
            Clause::From => "FROM",
            Clause::Where => "WHERE",
            Clause::GroupBy => "GROUP BY",
            Clause::Having => "HAVING",
        }
    }
}

impl fmt::Display for Clause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for Clause {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "SELECT" => Ok(Clause::Select),
            "FROM" => Ok(Clause::From),
            "WHERE" => Ok(Clause::Where),
            "GROUP BY" => Ok(Clause::GroupBy),
            "HAVING" => Ok(Clause::Having),
            other => Err(format!("unknown clause `{other}`")),
        }
    }
}

/// Where in the query a diagnostic points.
///
/// `item` indexes the clause's list (SELECT item, FROM table, GROUP BY
/// expression; always 0 for WHERE/HAVING, which hold a single predicate).
/// `path` descends the predicate's connective tree exactly like
/// [`qrhint_sqlast::Pred::at_path`] — empty for the whole predicate.
///
/// Renders as `CLAUSE[item]` with an optional `@p.q.r` path suffix, e.g.
/// `SELECT[2]`, `WHERE[0]@0.1`, `GROUP BY[1]`; [`FromStr`] parses that form
/// back (round-trip tested).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Span {
    pub clause: Clause,
    pub item: usize,
    pub path: Vec<usize>,
}

impl Span {
    /// Span covering a whole clause item (empty predicate path).
    pub fn item(clause: Clause, item: usize) -> Self {
        Span { clause, item, path: Vec::new() }
    }

    /// Span pointing into a predicate's connective tree.
    pub fn at(clause: Clause, item: usize, path: &[usize]) -> Self {
        Span { clause, item, path: path.to_vec() }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.clause, self.item)?;
        if !self.path.is_empty() {
            f.write_str("@")?;
            for (i, p) in self.path.iter().enumerate() {
                if i > 0 {
                    f.write_str(".")?;
                }
                write!(f, "{p}")?;
            }
        }
        Ok(())
    }
}

impl FromStr for Span {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        let (head, path_str) = match s.split_once('@') {
            Some((h, p)) => (h, Some(p)),
            None => (s, None),
        };
        let open = head.find('[').ok_or_else(|| format!("span `{s}` lacks `[`"))?;
        let close = head.len().checked_sub(1).filter(|&i| head.as_bytes()[i] == b']');
        let close = close.ok_or_else(|| format!("span `{s}` lacks trailing `]`"))?;
        let clause: Clause = head[..open].parse()?;
        let item: usize = head[open + 1..close]
            .parse()
            .map_err(|e| format!("bad item index in span `{s}`: {e}"))?;
        let mut path = Vec::new();
        if let Some(p) = path_str {
            for seg in p.split('.') {
                path.push(seg.parse().map_err(|e| format!("bad path in span `{s}`: {e}"))?);
            }
        }
        Ok(Span { clause, item, path })
    }
}

/// Stable machine-readable diagnostic codes.
///
/// `QH-Txx` = type/sort checker, `QH-Axx` = aggregate placement,
/// `QH-Pxx` = predicate abstract interpretation. Codes never change meaning
/// once released; new findings get new codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DiagCode {
    /// QH-T01: comparison between incompatible sorts.
    CmpTypeMismatch,
    /// QH-T02: arithmetic or negation over a non-integer operand.
    ArithNonInt,
    /// QH-T03: LIKE applied to a non-string expression.
    LikeNonString,
    /// QH-T04: SUM/AVG over a non-integer argument.
    AggArgNonInt,
    /// QH-T05: unknown table alias or column.
    UnknownColumn,
    /// QH-T10: LIKE pattern contains no wildcard (behaves as equality).
    LikeNoWildcard,
    /// QH-T11: comparison between two constants.
    ConstComparison,
    /// QH-A01: aggregate inside the WHERE clause.
    AggInWhere,
    /// QH-A02: aggregate nested inside another aggregate's argument.
    NestedAggregate,
    /// QH-A03: aggregate inside a GROUP BY expression.
    AggInGroupBy,
    /// QH-A04: non-aggregated SELECT item in an aggregate query without
    /// GROUP BY (errors on the empty implicit group).
    UngroupedSelect,
    /// QH-A05: non-aggregated HAVING operand in an aggregate query without
    /// GROUP BY (errors on the empty implicit group).
    UngroupedHaving,
    /// QH-A10: SELECT/HAVING column neither grouped nor pinned to a
    /// constant/grouped column by WHERE equalities.
    UngroupedColumn,
    /// QH-P01: predicate is statically unsatisfiable.
    Contradiction,
    /// QH-P02: predicate is statically a tautology.
    Tautology,
    /// QH-P03: OR branch that can never be true.
    DeadBranch,
    /// QH-P04: conjunct implied by (or duplicating) the other conjuncts.
    RedundantConjunct,
}

impl DiagCode {
    /// The stable wire code, e.g. `QH-A04`.
    pub fn as_str(self) -> &'static str {
        match self {
            DiagCode::CmpTypeMismatch => "QH-T01",
            DiagCode::ArithNonInt => "QH-T02",
            DiagCode::LikeNonString => "QH-T03",
            DiagCode::AggArgNonInt => "QH-T04",
            DiagCode::UnknownColumn => "QH-T05",
            DiagCode::LikeNoWildcard => "QH-T10",
            DiagCode::ConstComparison => "QH-T11",
            DiagCode::AggInWhere => "QH-A01",
            DiagCode::NestedAggregate => "QH-A02",
            DiagCode::AggInGroupBy => "QH-A03",
            DiagCode::UngroupedSelect => "QH-A04",
            DiagCode::UngroupedHaving => "QH-A05",
            DiagCode::UngroupedColumn => "QH-A10",
            DiagCode::Contradiction => "QH-P01",
            DiagCode::Tautology => "QH-P02",
            DiagCode::DeadBranch => "QH-P03",
            DiagCode::RedundantConjunct => "QH-P04",
        }
    }

    /// Every code, in wire-code order (used by docs and exhaustiveness
    /// tests).
    pub fn all() -> [DiagCode; 17] {
        [
            DiagCode::CmpTypeMismatch,
            DiagCode::ArithNonInt,
            DiagCode::LikeNonString,
            DiagCode::AggArgNonInt,
            DiagCode::UnknownColumn,
            DiagCode::LikeNoWildcard,
            DiagCode::ConstComparison,
            DiagCode::AggInWhere,
            DiagCode::NestedAggregate,
            DiagCode::AggInGroupBy,
            DiagCode::UngroupedSelect,
            DiagCode::UngroupedHaving,
            DiagCode::UngroupedColumn,
            DiagCode::Contradiction,
            DiagCode::Tautology,
            DiagCode::DeadBranch,
            DiagCode::RedundantConjunct,
        ]
    }

    /// Parse a wire code back to the enum.
    pub fn parse(s: &str) -> Option<DiagCode> {
        DiagCode::all().into_iter().find(|c| c.as_str() == s)
    }

    /// The severity this code always carries.
    pub fn severity(self) -> Severity {
        match self {
            DiagCode::CmpTypeMismatch
            | DiagCode::ArithNonInt
            | DiagCode::LikeNonString
            | DiagCode::AggArgNonInt
            | DiagCode::UnknownColumn
            | DiagCode::AggInWhere
            | DiagCode::NestedAggregate
            | DiagCode::AggInGroupBy
            | DiagCode::UngroupedSelect
            | DiagCode::UngroupedHaving => Severity::Error,
            DiagCode::LikeNoWildcard
            | DiagCode::ConstComparison
            | DiagCode::UngroupedColumn
            | DiagCode::Contradiction
            | DiagCode::Tautology
            | DiagCode::DeadBranch
            | DiagCode::RedundantConjunct => Severity::Warning,
        }
    }
}

impl fmt::Display for DiagCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One analyzer finding.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Diagnostic {
    pub code: DiagCode,
    pub severity: Severity,
    pub clause: Clause,
    pub span: Span,
    pub message: String,
}

impl Diagnostic {
    /// Build a diagnostic; severity and clause derive from code and span.
    pub fn new(code: DiagCode, span: Span, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: code.severity(),
            clause: span.clause,
            span,
            message: message.into(),
        }
    }

    pub fn is_error(&self) -> bool {
        self.severity == Severity::Error
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} at {}: {}", self.severity, self.code, self.span, self.message)
    }
}

// Serde impls are hand-written: the vendored derive has no enum-as-string
// support, and the wire shape (codes and spans as their Display strings) is
// part of the server/CLI contract.
impl Serialize for Diagnostic {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("code".into(), Value::Str(self.code.as_str().into())),
            ("severity".into(), Value::Str(self.severity.as_str().into())),
            ("clause".into(), Value::Str(self.clause.as_str().into())),
            ("span".into(), Value::Str(self.span.to_string())),
            ("message".into(), Value::Str(self.message.clone())),
        ])
    }
}

impl Deserialize for Diagnostic {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let Value::Map(entries) = v else {
            return Err(DeError::custom("Diagnostic: expected an object"));
        };
        let get = |key: &str| -> Result<&str, DeError> {
            match entries.iter().find(|(k, _)| k == key) {
                Some((_, Value::Str(s))) => Ok(s.as_str()),
                Some(_) => Err(DeError::custom("Diagnostic: field must be a string")),
                None => Err(DeError::custom("Diagnostic: missing field")),
            }
        };
        let code = DiagCode::parse(get("code")?)
            .ok_or_else(|| DeError::custom("Diagnostic: unknown code"))?;
        let span: Span = get("span")?.parse().map_err(DeError::custom)?;
        let severity = match get("severity")? {
            "error" => Severity::Error,
            "warning" => Severity::Warning,
            _ => return Err(DeError::custom("Diagnostic: unknown severity")),
        };
        let clause: Clause = get("clause")?.parse().map_err(DeError::custom)?;
        let message = get("message")?.to_string();
        Ok(Diagnostic { code, severity, clause, span, message })
    }
}

/// True iff any diagnostic is an [`Severity::Error`].
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    diags.iter().any(Diagnostic::is_error)
}

/// Run all three passes over a resolved query.
///
/// Output order is fully deterministic: diagnostics are sorted by clause
/// (SQL textual order), item, predicate path, code, then message, and exact
/// duplicates are removed. The analyzer never panics on resolver-accepted
/// queries and makes no solver calls.
pub fn analyze(schema: &Schema, q: &Query) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    types::check(schema, q, &mut out);
    aggregates::check(q, &mut out);
    interp::check(q, &mut out);
    out.sort();
    out.dedup();
    out.sort_by(|a, b| {
        (a.clause, a.span.item, &a.span.path, a.code, &a.message).cmp(&(
            b.clause,
            b.span.item,
            &b.span.path,
            b.code,
            &b.message,
        ))
    });
    out
}

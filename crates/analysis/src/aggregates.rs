//! Pass 2: aggregate-placement dataflow.
//!
//! The fragment's grouping semantics (see `qrhint-engine`'s
//! `eval_scalar_grouped`) define exactly which shapes are dangerous:
//!
//! - Aggregates may not appear in WHERE (QH-A01), inside another
//!   aggregate's argument (QH-A02), or in GROUP BY (QH-A03) — the engine
//!   rejects all three at evaluation time.
//! - An aggregate query **without** GROUP BY evaluates SELECT and HAVING
//!   over one implicit group that is *empty* when no rows survive WHERE; a
//!   non-aggregate leaf (column or constant) under that empty group is a
//!   hard engine error (QH-A04 for SELECT items, QH-A05 for HAVING
//!   operands). This is the exact shape of the GROUP-BY-elision repairs the
//!   PR 6 differential oracle quarantined.
//! - With a non-empty GROUP BY, groups are built from real rows and can
//!   never be empty, so ungrouped columns merely read the group's
//!   representative row. That is well-defined but rarely intended, unless
//!   the column is *group-constant*: listed in GROUP BY, or forced to a
//!   single value per group by top-level WHERE equalities (a chain of
//!   `col = col` links reaching a grouped column or a constant pin).
//!   Non-constant ungrouped columns get the QH-A10 warning.

use std::collections::BTreeMap;

use qrhint_sqlast::{AggArg, CmpOp, Pred, Query, Scalar};

use crate::{Clause, DiagCode, Diagnostic, Span};

/// Safe to evaluate over an *empty* group: every leaf is an aggregate.
fn safe_on_empty_group(s: &Scalar) -> bool {
    match s {
        Scalar::Agg(_) => true,
        Scalar::Arith(l, _, r) => safe_on_empty_group(l) && safe_on_empty_group(r),
        Scalar::Neg(e) => safe_on_empty_group(e),
        Scalar::Col(_) | Scalar::Int(_) | Scalar::Str(_) => false,
    }
}

/// Columns (by display form) appearing outside any aggregate call.
fn bare_columns(s: &Scalar, out: &mut Vec<String>) {
    match s {
        Scalar::Col(c) => out.push(c.to_string()),
        Scalar::Int(_) | Scalar::Str(_) | Scalar::Agg(_) => {}
        Scalar::Arith(l, _, r) => {
            bare_columns(l, out);
            bare_columns(r, out);
        }
        Scalar::Neg(e) => bare_columns(e, out),
    }
}

/// Nested aggregate: an aggregate call whose argument contains another.
fn has_nested_aggregate(s: &Scalar) -> bool {
    match s {
        Scalar::Agg(call) => match &call.arg {
            AggArg::Star => false,
            AggArg::Expr(e) => e.has_aggregate(),
        },
        Scalar::Arith(l, _, r) => has_nested_aggregate(l) || has_nested_aggregate(r),
        Scalar::Neg(e) => has_nested_aggregate(e),
        Scalar::Col(_) | Scalar::Int(_) | Scalar::Str(_) => false,
    }
}

fn scan_nested_in_pred(p: &Pred, clause: Clause, path: &mut Vec<usize>, out: &mut Vec<Diagnostic>) {
    match p {
        Pred::True | Pred::False => {}
        Pred::Cmp(l, _, r) => {
            for side in [l, r] {
                if has_nested_aggregate(side) {
                    out.push(Diagnostic::new(
                        DiagCode::NestedAggregate,
                        Span::at(clause, 0, path),
                        format!("`{side}` nests an aggregate inside an aggregate"),
                    ));
                }
            }
        }
        Pred::Like { expr, .. } => {
            if has_nested_aggregate(expr) {
                out.push(Diagnostic::new(
                    DiagCode::NestedAggregate,
                    Span::at(clause, 0, path),
                    format!("`{expr}` nests an aggregate inside an aggregate"),
                ));
            }
        }
        Pred::And(cs) | Pred::Or(cs) => {
            for (i, c) in cs.iter().enumerate() {
                path.push(i);
                scan_nested_in_pred(c, clause, path, out);
                path.pop();
            }
        }
        Pred::Not(c) => {
            path.push(0);
            scan_nested_in_pred(c, clause, path, out);
            path.pop();
        }
    }
}

/// Group-constant closure from top-level WHERE equalities.
///
/// Union-find over column display forms: `a = b` unions the columns,
/// `a = <const>` pins the class. A column is group-constant when its class
/// contains a GROUP BY column or a constant pin.
struct GroupConstants {
    ids: BTreeMap<String, usize>,
    parent: Vec<usize>,
    pinned: Vec<bool>,
    grouped: Vec<bool>,
}

impl GroupConstants {
    fn build(q: &Query) -> Self {
        let mut gc = GroupConstants {
            ids: BTreeMap::new(),
            parent: Vec::new(),
            pinned: Vec::new(),
            grouped: Vec::new(),
        };
        for g in &q.group_by {
            if let Scalar::Col(c) = g {
                let id = gc.id(&c.to_string());
                gc.grouped[id] = true;
            }
        }
        let conjuncts: Vec<&Pred> = match &q.where_pred {
            Pred::And(cs) => cs.iter().collect(),
            p => vec![p],
        };
        for c in conjuncts {
            let Pred::Cmp(l, op, r) = c else { continue };
            if *op != CmpOp::Eq {
                continue;
            }
            match (l, r) {
                (Scalar::Col(a), Scalar::Col(b)) => {
                    let (ia, ib) = (gc.id(&a.to_string()), gc.id(&b.to_string()));
                    gc.union(ia, ib);
                }
                // Only literal pins count; arbitrary expressions on the
                // other side leave the class unpinned.
                (Scalar::Col(a), Scalar::Int(_) | Scalar::Str(_))
                | (Scalar::Int(_) | Scalar::Str(_), Scalar::Col(a)) => {
                    let ia = gc.id(&a.to_string());
                    let root = gc.find(ia);
                    gc.pinned[root] = true;
                }
                _ => {}
            }
        }
        gc
    }

    fn id(&mut self, key: &str) -> usize {
        if let Some(&i) = self.ids.get(key) {
            return i;
        }
        let i = self.parent.len();
        self.ids.insert(key.to_string(), i);
        self.parent.push(i);
        self.pinned.push(false);
        self.grouped.push(false);
        i
    }

    fn find(&mut self, mut i: usize) -> usize {
        while self.parent[i] != i {
            self.parent[i] = self.parent[self.parent[i]];
            i = self.parent[i];
        }
        i
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra] = rb;
            self.pinned[rb] = self.pinned[rb] || self.pinned[ra];
            self.grouped[rb] = self.grouped[rb] || self.grouped[ra];
        }
    }

    fn is_group_constant(&mut self, col: &str) -> bool {
        let Some(&i) = self.ids.get(col) else { return false };
        let root = self.find(i);
        self.pinned[root] || self.grouped[root]
    }
}

fn check_having_empty_group(
    p: &Pred,
    path: &mut Vec<usize>,
    out: &mut Vec<Diagnostic>,
) {
    match p {
        Pred::True | Pred::False => {}
        Pred::Cmp(l, _, r) => {
            for side in [l, r] {
                if !safe_on_empty_group(side) {
                    out.push(Diagnostic::new(
                        DiagCode::UngroupedHaving,
                        Span::at(Clause::Having, 0, path),
                        format!(
                            "`{side}` in HAVING is evaluated over the implicit group, which \
                             errors when empty (no GROUP BY); wrap it in an aggregate or add \
                             a GROUP BY"
                        ),
                    ));
                }
            }
        }
        Pred::Like { expr, .. } => {
            if !safe_on_empty_group(expr) {
                out.push(Diagnostic::new(
                    DiagCode::UngroupedHaving,
                    Span::at(Clause::Having, 0, path),
                    format!(
                        "`{expr}` in HAVING is evaluated over the implicit group, which \
                         errors when empty (no GROUP BY)"
                    ),
                ));
            }
        }
        Pred::And(cs) | Pred::Or(cs) => {
            for (i, c) in cs.iter().enumerate() {
                path.push(i);
                check_having_empty_group(c, path, out);
                path.pop();
            }
        }
        Pred::Not(c) => {
            path.push(0);
            check_having_empty_group(c, path, out);
            path.pop();
        }
    }
}

fn check_ungrouped_having(
    p: &Pred,
    gc: &mut GroupConstants,
    grouped_display: &[String],
    path: &mut Vec<usize>,
    out: &mut Vec<Diagnostic>,
) {
    match p {
        Pred::True | Pred::False => {}
        Pred::Cmp(l, _, r) => {
            for side in [l, r] {
                if grouped_display.contains(&side.to_string()) {
                    continue;
                }
                let mut cols = Vec::new();
                bare_columns(side, &mut cols);
                cols.dedup();
                for col in cols {
                    if !gc.is_group_constant(&col) {
                        out.push(Diagnostic::new(
                            DiagCode::UngroupedColumn,
                            Span::at(Clause::Having, 0, path),
                            format!(
                                "`{col}` in HAVING is neither grouped nor fixed by WHERE; \
                                 it reads one arbitrary row per group"
                            ),
                        ));
                    }
                }
            }
        }
        Pred::Like { expr, .. } => {
            if grouped_display.contains(&expr.to_string()) {
                return;
            }
            let mut cols = Vec::new();
            bare_columns(expr, &mut cols);
            cols.dedup();
            for col in cols {
                if !gc.is_group_constant(&col) {
                    out.push(Diagnostic::new(
                        DiagCode::UngroupedColumn,
                        Span::at(Clause::Having, 0, path),
                        format!(
                            "`{col}` in HAVING is neither grouped nor fixed by WHERE; \
                             it reads one arbitrary row per group"
                        ),
                    ));
                }
            }
        }
        Pred::And(cs) | Pred::Or(cs) => {
            for (i, c) in cs.iter().enumerate() {
                path.push(i);
                check_ungrouped_having(c, gc, grouped_display, path, out);
                path.pop();
            }
        }
        Pred::Not(c) => {
            path.push(0);
            check_ungrouped_having(c, gc, grouped_display, path, out);
            path.pop();
        }
    }
}

/// Run the aggregate-placement pass.
pub fn check(q: &Query, out: &mut Vec<Diagnostic>) {
    // Aggregates in WHERE (QH-A01), per offending atom.
    let mut path = Vec::new();
    fn scan_where(p: &Pred, path: &mut Vec<usize>, out: &mut Vec<Diagnostic>) {
        match p {
            Pred::True | Pred::False => {}
            Pred::Cmp(..) | Pred::Like { .. } => {
                if p.has_aggregate() {
                    out.push(Diagnostic::new(
                        DiagCode::AggInWhere,
                        Span::at(Clause::Where, 0, path),
                        format!(
                            "`{p}` uses an aggregate in WHERE; aggregates are only \
                             defined over groups (use HAVING)"
                        ),
                    ));
                }
            }
            Pred::And(cs) | Pred::Or(cs) => {
                for (i, c) in cs.iter().enumerate() {
                    path.push(i);
                    scan_where(c, path, out);
                    path.pop();
                }
            }
            Pred::Not(c) => {
                path.push(0);
                scan_where(c, path, out);
                path.pop();
            }
        }
    }
    scan_where(&q.where_pred, &mut path, out);

    // Nested aggregates (QH-A02) in SELECT, GROUP BY, HAVING.
    for (i, item) in q.select.iter().enumerate() {
        if has_nested_aggregate(&item.expr) {
            out.push(Diagnostic::new(
                DiagCode::NestedAggregate,
                Span::item(Clause::Select, i),
                format!("`{}` nests an aggregate inside an aggregate", item.expr),
            ));
        }
    }
    for (i, expr) in q.group_by.iter().enumerate() {
        if has_nested_aggregate(expr) {
            out.push(Diagnostic::new(
                DiagCode::NestedAggregate,
                Span::item(Clause::GroupBy, i),
                format!("`{expr}` nests an aggregate inside an aggregate"),
            ));
        }
    }
    if let Some(h) = &q.having {
        scan_nested_in_pred(h, Clause::Having, &mut Vec::new(), out);
    }

    // Aggregates in GROUP BY (QH-A03).
    for (i, expr) in q.group_by.iter().enumerate() {
        if expr.has_aggregate() {
            out.push(Diagnostic::new(
                DiagCode::AggInGroupBy,
                Span::item(Clause::GroupBy, i),
                format!("`{expr}` uses an aggregate in GROUP BY"),
            ));
        }
    }

    let aggregated = !q.group_by.is_empty()
        || q.select.iter().any(|s| s.expr.has_aggregate())
        || q.having.as_ref().is_some_and(Pred::has_aggregate);
    if !aggregated {
        return;
    }

    if q.group_by.is_empty() {
        // One implicit group, empty whenever WHERE filters out every row:
        // any non-aggregate leaf in SELECT or HAVING is an engine error on
        // that empty group (QH-A04 / QH-A05).
        for (i, item) in q.select.iter().enumerate() {
            if !safe_on_empty_group(&item.expr) {
                out.push(Diagnostic::new(
                    DiagCode::UngroupedSelect,
                    Span::item(Clause::Select, i),
                    format!(
                        "`{}` is a non-aggregated SELECT item in an aggregate query with \
                         no GROUP BY; it errors when no rows survive WHERE",
                        item.expr
                    ),
                ));
            }
        }
        if let Some(h) = &q.having {
            check_having_empty_group(h, &mut Vec::new(), out);
        }
    } else {
        // Non-empty GROUP BY: groups are never empty, so ungrouped columns
        // are merely representative-row reads — warn unless group-constant.
        let grouped_display: Vec<String> = q.group_by.iter().map(Scalar::to_string).collect();
        let mut gc = GroupConstants::build(q);
        for (i, item) in q.select.iter().enumerate() {
            if grouped_display.contains(&item.expr.to_string()) {
                continue;
            }
            let mut cols = Vec::new();
            bare_columns(&item.expr, &mut cols);
            cols.dedup();
            for col in cols {
                if !gc.is_group_constant(&col) {
                    out.push(Diagnostic::new(
                        DiagCode::UngroupedColumn,
                        Span::item(Clause::Select, i),
                        format!(
                            "`{col}` is neither grouped nor fixed by WHERE; it reads one \
                             arbitrary row per group"
                        ),
                    ));
                }
            }
        }
        if let Some(h) = &q.having {
            check_ungrouped_having(h, &mut gc, &grouped_display, &mut Vec::new(), out);
        }
    }
}

//! Pass 1: sort/type checking against the schema.
//!
//! The resolver already rejects ill-typed queries at parse time, so on the
//! normal `prepare` path this pass is a safety net — it matters for queries
//! constructed or rewritten programmatically (repair candidates, fuzzer
//! intermediates) that never went back through resolution, and it is where
//! the *lint*-grade findings live: comparisons between two constants
//! (QH-T11) and `LIKE` patterns with no wildcard (QH-T10), both well-typed
//! but almost never intended.
//!
//! Each scalar subtree reports at most one error: once a subexpression
//! fails to type, its result sort is unknown and enclosing checks are
//! suppressed rather than cascaded.

use qrhint_sqlast::{
    AggArg, AggFunc, ColRef, Pred, Query, Scalar, Schema, SqlType, TableRef,
};

use crate::{Clause, DiagCode, Diagnostic, Span};

struct Ctx<'a> {
    schema: &'a Schema,
    from: &'a [TableRef],
}

impl Ctx<'_> {
    /// Sort of a column reference, or a QH-T05 description of why it has
    /// none. Unqualified references resolve if exactly one FROM table
    /// provides the column (mirroring the resolver's scope rules).
    fn column_type(&self, c: &ColRef) -> Result<SqlType, String> {
        if !c.table.is_empty() {
            let Some(tref) = self.from.iter().find(|t| t.alias == c.table) else {
                return Err(format!("unknown table alias `{}`", c.table));
            };
            let Some(table) = self.schema.table(&tref.table) else {
                return Err(format!("table `{}` is not in the schema", tref.table));
            };
            return match table.column(&c.column) {
                Some((_, ty)) => Ok(ty),
                None => Err(format!("table `{}` has no column `{}`", tref.table, c.column)),
            };
        }
        let mut found = Vec::new();
        for tref in self.from {
            if let Some(table) = self.schema.table(&tref.table) {
                if let Some((_, ty)) = table.column(&c.column) {
                    found.push((tref.alias.clone(), ty));
                }
            }
        }
        match found.as_slice() {
            [(_, ty)] => Ok(*ty),
            [] => Err(format!("unknown column `{}`", c.column)),
            _ => Err(format!("ambiguous column `{}`", c.column)),
        }
    }

    /// Sort of a scalar; `None` if a subexpression already produced an
    /// error diagnostic.
    fn type_of(&self, s: &Scalar, span: &Span, out: &mut Vec<Diagnostic>) -> Option<SqlType> {
        match s {
            Scalar::Col(c) => match self.column_type(c) {
                Ok(ty) => Some(ty),
                Err(why) => {
                    out.push(Diagnostic::new(DiagCode::UnknownColumn, span.clone(), why));
                    None
                }
            },
            Scalar::Int(_) => Some(SqlType::Int),
            Scalar::Str(_) => Some(SqlType::Str),
            Scalar::Arith(l, op, r) => {
                let mut ok = true;
                for side in [l.as_ref(), r.as_ref()] {
                    match self.type_of(side, span, out) {
                        Some(SqlType::Int) => {}
                        Some(SqlType::Str) => {
                            ok = false;
                            out.push(Diagnostic::new(
                                DiagCode::ArithNonInt,
                                span.clone(),
                                format!("arithmetic `{}` over the string-typed `{side}`", op.sql()),
                            ));
                        }
                        None => ok = false,
                    }
                }
                ok.then_some(SqlType::Int)
            }
            Scalar::Neg(inner) => match self.type_of(inner, span, out) {
                Some(SqlType::Int) => Some(SqlType::Int),
                Some(SqlType::Str) => {
                    out.push(Diagnostic::new(
                        DiagCode::ArithNonInt,
                        span.clone(),
                        format!("negation of the string-typed `{inner}`"),
                    ));
                    None
                }
                None => None,
            },
            Scalar::Agg(call) => {
                let arg_ty = match &call.arg {
                    AggArg::Star => None,
                    AggArg::Expr(e) => {
                        let ty = self.type_of(e, span, out);
                        ty?; // suppress cascades past a broken argument
                        ty
                    }
                };
                match call.func {
                    AggFunc::Count => Some(SqlType::Int),
                    AggFunc::Sum | AggFunc::Avg => match arg_ty {
                        Some(SqlType::Int) | None => Some(SqlType::Int),
                        Some(SqlType::Str) => {
                            out.push(Diagnostic::new(
                                DiagCode::AggArgNonInt,
                                span.clone(),
                                format!("{call} aggregates a string-typed argument"),
                            ));
                            None
                        }
                    },
                    AggFunc::Min | AggFunc::Max => arg_ty.or(Some(SqlType::Int)),
                }
            }
        }
    }

    fn check_pred(
        &self,
        p: &Pred,
        clause: Clause,
        path: &mut Vec<usize>,
        out: &mut Vec<Diagnostic>,
    ) {
        match p {
            Pred::True | Pred::False => {}
            Pred::Cmp(l, op, r) => {
                let span = Span::at(clause, 0, path);
                let lt = self.type_of(l, &span, out);
                let rt = self.type_of(r, &span, out);
                if let (Some(a), Some(b)) = (lt, rt) {
                    if a != b {
                        out.push(Diagnostic::new(
                            DiagCode::CmpTypeMismatch,
                            span.clone(),
                            format!(
                                "`{l} {} {r}` compares {} with {}",
                                op.sql(),
                                sort_name(a),
                                sort_name(b)
                            ),
                        ));
                    } else if is_const(l) && is_const(r) {
                        out.push(Diagnostic::new(
                            DiagCode::ConstComparison,
                            span,
                            format!("`{l} {} {r}` compares two constants", op.sql()),
                        ));
                    }
                }
            }
            Pred::Like { expr, pattern, .. } => {
                let span = Span::at(clause, 0, path);
                match self.type_of(expr, &span, out) {
                    Some(SqlType::Str) | None => {}
                    Some(SqlType::Int) => {
                        out.push(Diagnostic::new(
                            DiagCode::LikeNonString,
                            span.clone(),
                            format!("LIKE applied to the integer-typed `{expr}`"),
                        ));
                    }
                }
                if !pattern.contains(['%', '_']) {
                    out.push(Diagnostic::new(
                        DiagCode::LikeNoWildcard,
                        span,
                        format!("LIKE pattern '{pattern}' has no wildcard; this is plain equality"),
                    ));
                }
            }
            Pred::And(cs) | Pred::Or(cs) => {
                for (i, c) in cs.iter().enumerate() {
                    path.push(i);
                    self.check_pred(c, clause, path, out);
                    path.pop();
                }
            }
            Pred::Not(c) => {
                path.push(0);
                self.check_pred(c, clause, path, out);
                path.pop();
            }
        }
    }
}

fn sort_name(t: SqlType) -> &'static str {
    match t {
        SqlType::Int => "an integer",
        SqlType::Str => "a string",
    }
}

/// Constant expression: no columns and no aggregates anywhere below.
fn is_const(s: &Scalar) -> bool {
    match s {
        Scalar::Int(_) | Scalar::Str(_) => true,
        Scalar::Col(_) | Scalar::Agg(_) => false,
        Scalar::Arith(l, _, r) => is_const(l) && is_const(r),
        Scalar::Neg(e) => is_const(e),
    }
}

/// Run the type pass.
pub fn check(schema: &Schema, q: &Query, out: &mut Vec<Diagnostic>) {
    let ctx = Ctx { schema, from: &q.from };
    for (i, tref) in q.from.iter().enumerate() {
        if schema.table(&tref.table).is_none() {
            out.push(Diagnostic::new(
                DiagCode::UnknownColumn,
                Span::item(Clause::From, i),
                format!("table `{}` is not in the schema", tref.table),
            ));
        }
    }
    for (i, item) in q.select.iter().enumerate() {
        ctx.type_of(&item.expr, &Span::item(Clause::Select, i), out);
    }
    for (i, expr) in q.group_by.iter().enumerate() {
        ctx.type_of(expr, &Span::item(Clause::GroupBy, i), out);
    }
    ctx.check_pred(&q.where_pred, Clause::Where, &mut Vec::new(), out);
    if let Some(h) = &q.having {
        ctx.check_pred(h, Clause::Having, &mut Vec::new(), out);
    }
}

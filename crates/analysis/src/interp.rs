//! Pass 3: interval/constant abstract interpretation over WHERE and HAVING.
//!
//! Atoms are abstracted into facts about *keys* (the display form of a
//! non-constant scalar, so `s.price` and `COUNT(*)` both work): integer
//! interval bounds from `key <op> <int literal>` comparisons, string
//! equality/disequality facts, and fully constant-folded comparisons.
//! Three-valued evaluation over the connective tree then yields, with no
//! solver involvement:
//!
//! - **QH-P01 contradiction** — the whole predicate folds to false (e.g.
//!   `a > 5 AND a < 3`, `x = 'a' AND x = 'b'`, `1 > 2`).
//! - **QH-P02 tautology** — the whole predicate folds to true (e.g.
//!   `a = a`, `x > 0 OR x <= 0`).
//! - **QH-P03 dead branch** — an OR alternative that can never hold.
//! - **QH-P04 redundant conjunct** — a top-level conjunct duplicated by or
//!   implied by the remaining conjuncts (`a > 5 AND a > 3`).
//!
//! Everything here is conservative: unknown shapes map to "opaque" facts
//! that never decide anything, so a diagnostic is only emitted when the
//! fragment semantics force it. All findings are warnings — these
//! predicates execute fine, they just cannot mean what the author hoped.

use std::collections::BTreeMap;

use qrhint_sqlast::{ArithOp, CmpOp, Pred, Query, Scalar};

use crate::{Clause, DiagCode, Diagnostic, Span};

/// Fold an all-literal integer expression.
fn const_int(s: &Scalar) -> Option<i64> {
    match s {
        Scalar::Int(k) => Some(*k),
        Scalar::Neg(e) => const_int(e)?.checked_neg(),
        Scalar::Arith(l, op, r) => {
            let (a, b) = (const_int(l)?, const_int(r)?);
            match op {
                ArithOp::Add => a.checked_add(b),
                ArithOp::Sub => a.checked_sub(b),
                ArithOp::Mul => a.checked_mul(b),
                ArithOp::Div => a.checked_div(b),
            }
        }
        Scalar::Col(_) | Scalar::Str(_) | Scalar::Agg(_) => None,
    }
}

/// What an atomic predicate says, abstractly.
enum Fact {
    /// `key <op> k` with an integer literal side (normalized so the key is
    /// on the left).
    IntCmp { key: String, op: CmpOp, k: i64 },
    /// `key = v` / `key <> v` with a string literal side.
    StrCmp { key: String, eq: bool, v: String },
    /// The atom folds to a constant truth value.
    Const(bool),
    /// Nothing usable.
    Opaque,
}

fn fact_of(p: &Pred) -> Fact {
    match p {
        Pred::True => Fact::Const(true),
        Pred::False => Fact::Const(false),
        Pred::Cmp(l, op, r) => {
            if let (Some(a), Some(b)) = (const_int(l), const_int(r)) {
                return Fact::Const(op.eval(&a, &b));
            }
            if let (Scalar::Str(a), Scalar::Str(b)) = (l, r) {
                return Fact::Const(op.eval(a, b));
            }
            if l == r {
                // `x <op> x` on a NULL-free fragment: division inside `x`
                // can still error at runtime, but the comparison itself is
                // decided.
                return Fact::Const(matches!(op, CmpOp::Eq | CmpOp::Le | CmpOp::Ge));
            }
            if let Some(k) = const_int(r) {
                return Fact::IntCmp { key: l.to_string(), op: *op, k };
            }
            if let Some(k) = const_int(l) {
                return Fact::IntCmp { key: r.to_string(), op: op.flip(), k };
            }
            if let Scalar::Str(v) = r {
                if matches!(op, CmpOp::Eq | CmpOp::Ne) {
                    return Fact::StrCmp { key: l.to_string(), eq: *op == CmpOp::Eq, v: v.clone() };
                }
            }
            if let Scalar::Str(v) = l {
                if matches!(op, CmpOp::Eq | CmpOp::Ne) {
                    return Fact::StrCmp { key: r.to_string(), eq: *op == CmpOp::Eq, v: v.clone() };
                }
            }
            Fact::Opaque
        }
        Pred::Like { .. } | Pred::And(_) | Pred::Or(_) | Pred::Not(_) => Fact::Opaque,
    }
}

#[derive(Default)]
struct IntFacts {
    lo: Option<i64>,
    hi: Option<i64>,
    ne: Vec<i64>,
}

#[derive(Default)]
struct StrFacts {
    eq: Option<String>,
    ne: Vec<String>,
}

/// Conjunction environment: per-key facts plus a contradiction flag.
#[derive(Default)]
struct Env {
    ints: BTreeMap<String, IntFacts>,
    strs: BTreeMap<String, StrFacts>,
    contradiction: bool,
}

impl Env {
    fn add(&mut self, fact: &Fact) {
        match fact {
            Fact::Const(false) => self.contradiction = true,
            Fact::Const(true) | Fact::Opaque => {}
            Fact::IntCmp { key, op, k } => {
                let f = self.ints.entry(key.clone()).or_default();
                match op {
                    CmpOp::Eq => {
                        f.lo = Some(f.lo.map_or(*k, |lo| lo.max(*k)));
                        f.hi = Some(f.hi.map_or(*k, |hi| hi.min(*k)));
                    }
                    CmpOp::Ne => f.ne.push(*k),
                    CmpOp::Lt => {
                        let b = k.saturating_sub(1);
                        f.hi = Some(f.hi.map_or(b, |hi| hi.min(b)));
                    }
                    CmpOp::Le => f.hi = Some(f.hi.map_or(*k, |hi| hi.min(*k))),
                    CmpOp::Gt => {
                        let b = k.saturating_add(1);
                        f.lo = Some(f.lo.map_or(b, |lo| lo.max(b)));
                    }
                    CmpOp::Ge => f.lo = Some(f.lo.map_or(*k, |lo| lo.max(*k))),
                }
                if let (Some(lo), Some(hi)) = (f.lo, f.hi) {
                    if lo > hi || (lo == hi && f.ne.contains(&lo)) {
                        self.contradiction = true;
                    }
                }
            }
            Fact::StrCmp { key, eq, v } => {
                let f = self.strs.entry(key.clone()).or_default();
                if *eq {
                    if f.eq.as_ref().is_some_and(|e| e != v) || f.ne.contains(v) {
                        self.contradiction = true;
                    }
                    f.eq = Some(v.clone());
                } else {
                    if f.eq.as_deref() == Some(v.as_str()) {
                        self.contradiction = true;
                    }
                    f.ne.push(v.clone());
                }
            }
        }
    }

    /// Does the environment force this fact to hold? Conservative: `false`
    /// when unsure.
    fn implies(&self, fact: &Fact) -> bool {
        match fact {
            Fact::Const(b) => *b,
            Fact::Opaque => false,
            Fact::IntCmp { key, op, k } => {
                let Some(f) = self.ints.get(key) else { return false };
                match op {
                    CmpOp::Gt => f.lo.is_some_and(|lo| lo > *k),
                    CmpOp::Ge => f.lo.is_some_and(|lo| lo >= *k),
                    CmpOp::Lt => f.hi.is_some_and(|hi| hi < *k),
                    CmpOp::Le => f.hi.is_some_and(|hi| hi <= *k),
                    CmpOp::Eq => f.lo == Some(*k) && f.hi == Some(*k),
                    CmpOp::Ne => {
                        f.hi.is_some_and(|hi| hi < *k)
                            || f.lo.is_some_and(|lo| lo > *k)
                            || f.ne.contains(k)
                    }
                }
            }
            Fact::StrCmp { key, eq, v } => {
                let Some(f) = self.strs.get(key) else { return false };
                if *eq {
                    f.eq.as_deref() == Some(v.as_str())
                } else {
                    f.eq.as_ref().is_some_and(|e| e != v) || f.ne.contains(v)
                }
            }
        }
    }
}

/// Three-valued static evaluation; `None` = undecided.
fn tri(p: &Pred) -> Option<bool> {
    match p {
        Pred::True => Some(true),
        Pred::False => Some(false),
        Pred::Cmp(..) | Pred::Like { .. } => match fact_of(p) {
            Fact::Const(b) => Some(b),
            _ => None,
        },
        Pred::And(cs) => {
            let ts: Vec<Option<bool>> = cs.iter().map(tri).collect();
            if ts.contains(&Some(false)) {
                return Some(false);
            }
            let mut env = Env::default();
            for c in cs {
                if c.is_atomic() {
                    env.add(&fact_of(c));
                }
            }
            if env.contradiction {
                return Some(false);
            }
            if ts.iter().all(|t| *t == Some(true)) {
                return Some(true);
            }
            None
        }
        Pred::Or(cs) => {
            let ts: Vec<Option<bool>> = cs.iter().map(tri).collect();
            if ts.contains(&Some(true)) {
                return Some(true);
            }
            // Complementary atomic pair covering the whole domain, e.g.
            // `x > 5 OR x <= 5`, `s = 'a' OR s <> 'a'`.
            let facts: Vec<Fact> = cs.iter().filter(|c| c.is_atomic()).map(fact_of).collect();
            for (i, a) in facts.iter().enumerate() {
                for b in &facts[i + 1..] {
                    let complement = match (a, b) {
                        (
                            Fact::IntCmp { key: ka, op: oa, k: na },
                            Fact::IntCmp { key: kb, op: ob, k: nb },
                        ) => ka == kb && na == nb && *ob == oa.negate(),
                        (
                            Fact::StrCmp { key: ka, eq: ea, v: va },
                            Fact::StrCmp { key: kb, eq: eb, v: vb },
                        ) => ka == kb && va == vb && ea != eb,
                        _ => false,
                    };
                    if complement {
                        return Some(true);
                    }
                }
            }
            if ts.iter().all(|t| *t == Some(false)) {
                return Some(false);
            }
            None
        }
        Pred::Not(c) => tri(c).map(|b| !b),
    }
}

/// Flag dead OR branches below an undecided root.
fn dead_branches(p: &Pred, clause: Clause, path: &mut Vec<usize>, out: &mut Vec<Diagnostic>) {
    match p {
        Pred::True | Pred::False | Pred::Cmp(..) | Pred::Like { .. } => {}
        Pred::Or(cs) => {
            for (i, c) in cs.iter().enumerate() {
                path.push(i);
                if tri(c) == Some(false) {
                    out.push(Diagnostic::new(
                        DiagCode::DeadBranch,
                        Span::at(clause, 0, path),
                        format!("OR branch `{c}` can never be true"),
                    ));
                } else {
                    dead_branches(c, clause, path, out);
                }
                path.pop();
            }
        }
        Pred::And(cs) => {
            for (i, c) in cs.iter().enumerate() {
                path.push(i);
                dead_branches(c, clause, path, out);
                path.pop();
            }
        }
        Pred::Not(c) => {
            path.push(0);
            dead_branches(c, clause, path, out);
            path.pop();
        }
    }
}

/// Analyze one predicate clause.
fn check_clause(clause: Clause, p: &Pred, out: &mut Vec<Diagnostic>) {
    // A bare `Pred::True` is the representation of an *absent* clause —
    // nothing to lint.
    if matches!(p, Pred::True) {
        return;
    }
    match tri(p) {
        Some(false) => {
            out.push(Diagnostic::new(
                DiagCode::Contradiction,
                Span::item(clause, 0),
                format!("{clause} is always false; no row can satisfy `{p}`"),
            ));
            return;
        }
        Some(true) => {
            out.push(Diagnostic::new(
                DiagCode::Tautology,
                Span::item(clause, 0),
                format!("{clause} is always true; `{p}` filters nothing"),
            ));
            return;
        }
        None => {}
    }

    dead_branches(p, clause, &mut Vec::new(), out);

    // Redundant top-level conjuncts: duplicates first, then facts implied
    // by the env of the conjuncts not already flagged.
    if let Pred::And(cs) = p {
        let mut flagged = vec![false; cs.len()];
        for i in 1..cs.len() {
            if cs[..i].contains(&cs[i]) {
                flagged[i] = true;
                out.push(Diagnostic::new(
                    DiagCode::RedundantConjunct,
                    Span::at(clause, 0, &[i]),
                    format!("`{}` duplicates an earlier conjunct", cs[i]),
                ));
            }
        }
        for i in 0..cs.len() {
            if flagged[i] || !cs[i].is_atomic() {
                continue;
            }
            let fact = fact_of(&cs[i]);
            if matches!(fact, Fact::Opaque | Fact::Const(_)) {
                continue;
            }
            let mut env = Env::default();
            for (j, c) in cs.iter().enumerate() {
                if j != i && !flagged[j] && c.is_atomic() {
                    env.add(&fact_of(c));
                }
            }
            if !env.contradiction && env.implies(&fact) {
                flagged[i] = true;
                out.push(Diagnostic::new(
                    DiagCode::RedundantConjunct,
                    Span::at(clause, 0, &[i]),
                    format!("`{}` is implied by the remaining conjuncts", cs[i]),
                ));
            }
        }
    }
}

/// Run the abstract-interpretation pass over WHERE and HAVING.
pub fn check(q: &Query, out: &mut Vec<Diagnostic>) {
    check_clause(Clause::Where, &q.where_pred, out);
    if let Some(h) = &q.having {
        check_clause(Clause::Having, h, out);
    }
}

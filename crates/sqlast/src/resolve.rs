//! Name resolution: qualify every column reference in a query with the
//! alias it binds to, and type-check references against the schema.
//!
//! Resolution follows standard SQL scoping for the single-block fragment:
//! a qualified reference `t.c` must name an alias `t` in `FROM` whose table
//! has column `c`; an unqualified reference `c` must resolve to exactly one
//! alias whose table has column `c` (ambiguity is an error).

use crate::error::{AstError, AstResult};
use crate::expr::{AggArg, AggCall, ColRef, Scalar};
use crate::pred::Pred;
use crate::query::{Query, SelectItem};
use crate::schema::{Schema, SqlType};
use std::collections::BTreeMap;

/// Resolution environment: alias → table schema name, built from `FROM`.
#[derive(Debug, Clone)]
pub struct Scope<'s> {
    schema: &'s Schema,
    /// alias → table name
    aliases: BTreeMap<String, String>,
}

impl<'s> Scope<'s> {
    /// Build the scope for a query's FROM list, checking that tables exist
    /// and aliases are unique.
    pub fn for_query(schema: &'s Schema, query: &Query) -> AstResult<Self> {
        let mut aliases = BTreeMap::new();
        for tref in &query.from {
            schema.table_or_err(&tref.table)?;
            if aliases.insert(tref.alias.clone(), tref.table.clone()).is_some() {
                return Err(AstError::DuplicateAlias { alias: tref.alias.clone() });
            }
        }
        Ok(Scope { schema, aliases })
    }

    /// Resolve a column reference, returning the qualified reference and
    /// its type.
    pub fn resolve(&self, c: &ColRef) -> AstResult<(ColRef, SqlType)> {
        if !c.is_unqualified() {
            let table = self
                .aliases
                .get(&c.table)
                .ok_or_else(|| AstError::UnknownAlias { alias: c.table.clone() })?;
            let schema = self.schema.table_or_err(table)?;
            let (_, ty) = schema.column(&c.column).ok_or_else(|| {
                AstError::NoSuchColumnInTable { table: table.clone(), column: c.column.clone() }
            })?;
            return Ok((c.clone(), ty));
        }
        let mut hits: Vec<(String, SqlType)> = Vec::new();
        for (alias, table) in &self.aliases {
            let schema = self.schema.table_or_err(table)?;
            if let Some((_, ty)) = schema.column(&c.column) {
                hits.push((alias.clone(), ty));
            }
        }
        match hits.len() {
            0 => Err(AstError::UnknownColumn { column: c.column.clone() }),
            1 => {
                let (alias, ty) = hits.pop().unwrap();
                Ok((ColRef { table: alias, column: c.column.clone() }, ty))
            }
            _ => Err(AstError::AmbiguousColumn {
                column: c.column.clone(),
                candidates: hits.into_iter().map(|(a, _)| a).collect(),
            }),
        }
    }

    /// Type of a (resolved) scalar expression. Arithmetic requires Int
    /// operands; aggregates are Int-typed except MIN/MAX which preserve the
    /// argument type.
    pub fn type_of(&self, e: &Scalar) -> AstResult<SqlType> {
        match e {
            Scalar::Col(c) => Ok(self.resolve(c)?.1),
            Scalar::Int(_) => Ok(SqlType::Int),
            Scalar::Str(_) => Ok(SqlType::Str),
            Scalar::Arith(l, op, r) => {
                let (lt, rt) = (self.type_of(l)?, self.type_of(r)?);
                if lt != SqlType::Int || rt != SqlType::Int {
                    return Err(AstError::TypeError {
                        detail: format!("arithmetic `{}` requires integer operands", op.sql()),
                    });
                }
                Ok(SqlType::Int)
            }
            Scalar::Neg(inner) => {
                if self.type_of(inner)? != SqlType::Int {
                    return Err(AstError::TypeError {
                        detail: "unary minus requires an integer operand".into(),
                    });
                }
                Ok(SqlType::Int)
            }
            Scalar::Agg(AggCall { func, arg, .. }) => match arg {
                AggArg::Star => Ok(SqlType::Int),
                AggArg::Expr(inner) => {
                    let t = self.type_of(inner)?;
                    use crate::expr::AggFunc::*;
                    match func {
                        Count => Ok(SqlType::Int),
                        Min | Max => Ok(t),
                        Sum | Avg => {
                            if t != SqlType::Int {
                                return Err(AstError::TypeError {
                                    detail: format!("{}(..) requires integer input", func.sql()),
                                });
                            }
                            Ok(SqlType::Int)
                        }
                    }
                }
            },
        }
    }
}

fn resolve_scalar(scope: &Scope<'_>, e: &Scalar) -> AstResult<Scalar> {
    let resolved = match e {
        Scalar::Col(c) => Scalar::Col(scope.resolve(c)?.0),
        Scalar::Int(_) | Scalar::Str(_) => e.clone(),
        Scalar::Arith(l, op, r) => Scalar::Arith(
            Box::new(resolve_scalar(scope, l)?),
            *op,
            Box::new(resolve_scalar(scope, r)?),
        ),
        Scalar::Neg(inner) => Scalar::Neg(Box::new(resolve_scalar(scope, inner)?)),
        Scalar::Agg(call) => {
            let arg = match &call.arg {
                AggArg::Star => AggArg::Star,
                AggArg::Expr(inner) => AggArg::Expr(Box::new(resolve_scalar(scope, inner)?)),
            };
            Scalar::Agg(AggCall { func: call.func, distinct: call.distinct, arg })
        }
    };
    // Type-check as we go so errors surface early.
    scope.type_of(&resolved)?;
    Ok(resolved)
}

fn resolve_pred(scope: &Scope<'_>, p: &Pred) -> AstResult<Pred> {
    Ok(match p {
        Pred::True => Pred::True,
        Pred::False => Pred::False,
        Pred::Cmp(l, op, r) => {
            let (l, r) = (resolve_scalar(scope, l)?, resolve_scalar(scope, r)?);
            let (lt, rt) = (scope.type_of(&l)?, scope.type_of(&r)?);
            if lt != rt {
                return Err(AstError::TypeError {
                    detail: format!("cannot compare {lt} with {rt} in `{l} {} {r}`", op.sql()),
                });
            }
            Pred::Cmp(l, *op, r)
        }
        Pred::Like { expr, pattern, negated } => {
            let expr = resolve_scalar(scope, expr)?;
            if scope.type_of(&expr)? != SqlType::Str {
                return Err(AstError::TypeError {
                    detail: "LIKE requires a string operand".into(),
                });
            }
            Pred::Like { expr, pattern: pattern.clone(), negated: *negated }
        }
        Pred::And(cs) => Pred::And(cs.iter().map(|c| resolve_pred(scope, c)).collect::<AstResult<_>>()?),
        Pred::Or(cs) => Pred::Or(cs.iter().map(|c| resolve_pred(scope, c)).collect::<AstResult<_>>()?),
        Pred::Not(c) => Pred::Not(Box::new(resolve_pred(scope, c)?)),
    })
}

/// Resolve every column reference in `query` against `schema`, returning a
/// fully qualified, type-checked query.
pub fn resolve_query(schema: &Schema, query: &Query) -> AstResult<Query> {
    let scope = Scope::for_query(schema, query)?;
    let select = query
        .select
        .iter()
        .map(|s| {
            Ok(SelectItem { expr: resolve_scalar(&scope, &s.expr)?, alias: s.alias.clone() })
        })
        .collect::<AstResult<Vec<_>>>()?;
    Ok(Query {
        distinct: query.distinct,
        select,
        from: query.from.clone(),
        where_pred: resolve_pred(&scope, &query.where_pred)?,
        group_by: query
            .group_by
            .iter()
            .map(|g| resolve_scalar(&scope, g))
            .collect::<AstResult<_>>()?,
        having: match &query.having {
            Some(h) => Some(resolve_pred(&scope, h)?),
            None => None,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pred::CmpOp;
    use crate::query::TableRef;

    fn beers() -> Schema {
        Schema::new()
            .with_table(
                "Likes",
                &[("drinker", SqlType::Str), ("beer", SqlType::Str)],
                &["drinker", "beer"],
            )
            .with_table(
                "Frequents",
                &[("drinker", SqlType::Str), ("bar", SqlType::Str)],
                &["drinker", "bar"],
            )
            .with_table(
                "Serves",
                &[("bar", SqlType::Str), ("beer", SqlType::Str), ("price", SqlType::Int)],
                &["bar", "beer"],
            )
    }

    fn q(from: Vec<TableRef>, where_pred: Pred) -> Query {
        Query {
            distinct: false,
            select: vec![SelectItem::expr(Scalar::Int(1))],
            from,
            where_pred,
            group_by: vec![],
            having: None,
        }
    }

    #[test]
    fn unqualified_unique_column_resolves() {
        let schema = beers();
        let query = q(
            vec![TableRef::plain("Likes"), TableRef::aliased("Serves", "s1")],
            Pred::cmp(
                Scalar::Col(ColRef::unqualified("price")),
                CmpOp::Gt,
                Scalar::Int(3),
            ),
        );
        let r = resolve_query(&schema, &query).unwrap();
        assert!(r.to_string().contains("s1.price > 3"));
    }

    #[test]
    fn ambiguous_column_errors() {
        let schema = beers();
        let query = q(
            vec![TableRef::plain("Likes"), TableRef::plain("Frequents")],
            Pred::cmp(
                Scalar::Col(ColRef::unqualified("drinker")),
                CmpOp::Eq,
                Scalar::Str("Amy".into()),
            ),
        );
        match resolve_query(&schema, &query) {
            Err(AstError::AmbiguousColumn { column, candidates }) => {
                assert_eq!(column, "drinker");
                assert_eq!(candidates.len(), 2);
            }
            other => panic!("expected ambiguity error, got {other:?}"),
        }
    }

    #[test]
    fn unknown_alias_and_column_error() {
        let schema = beers();
        let query = q(
            vec![TableRef::plain("Likes")],
            Pred::cmp(Scalar::col("zzz", "beer"), CmpOp::Eq, Scalar::Str("IPA".into())),
        );
        assert!(matches!(
            resolve_query(&schema, &query),
            Err(AstError::UnknownAlias { .. })
        ));
        let query2 = q(
            vec![TableRef::plain("Likes")],
            Pred::cmp(
                Scalar::Col(ColRef::unqualified("nonexistent")),
                CmpOp::Eq,
                Scalar::Int(1),
            ),
        );
        assert!(matches!(
            resolve_query(&schema, &query2),
            Err(AstError::UnknownColumn { .. })
        ));
    }

    #[test]
    fn duplicate_alias_rejected() {
        let schema = beers();
        let query = q(
            vec![TableRef::aliased("Serves", "s"), TableRef::aliased("Likes", "s")],
            Pred::True,
        );
        assert!(matches!(
            resolve_query(&schema, &query),
            Err(AstError::DuplicateAlias { .. })
        ));
    }

    #[test]
    fn type_mismatch_rejected() {
        let schema = beers();
        let query = q(
            vec![TableRef::plain("Serves")],
            Pred::cmp(
                Scalar::col("serves", "price"),
                CmpOp::Eq,
                Scalar::col("serves", "beer"),
            ),
        );
        assert!(matches!(resolve_query(&schema, &query), Err(AstError::TypeError { .. })));
    }

    #[test]
    fn like_on_int_rejected() {
        let schema = beers();
        let query = q(
            vec![TableRef::plain("Serves")],
            Pred::Like {
                expr: Scalar::col("serves", "price"),
                pattern: "1%".into(),
                negated: false,
            },
        );
        assert!(matches!(resolve_query(&schema, &query), Err(AstError::TypeError { .. })));
    }
}

//! Single-block queries: SELECT / FROM / WHERE / GROUP BY / HAVING.

use crate::expr::{ColRef, Scalar};
use crate::pred::Pred;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// One table reference in `FROM`, with its alias (defaults to the table
/// name per §4 of the paper).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TableRef {
    /// Underlying table name (lower-cased).
    pub table: String,
    /// Alias bound in this query (lower-cased; equals `table` if no alias
    /// was written).
    pub alias: String,
}

impl TableRef {
    /// Table reference with explicit alias.
    pub fn aliased(table: &str, alias: &str) -> Self {
        TableRef { table: crate::ident(table), alias: crate::ident(alias) }
    }

    /// Table reference whose alias defaults to the table name.
    pub fn plain(table: &str) -> Self {
        let t = crate::ident(table);
        TableRef { table: t.clone(), alias: t }
    }
}

impl fmt::Display for TableRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.alias == self.table {
            write!(f, "{}", self.table)
        } else {
            write!(f, "{} {}", self.table, self.alias)
        }
    }
}

/// One output expression in `SELECT`, with an optional output alias.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SelectItem {
    pub expr: Scalar,
    pub alias: Option<String>,
}

impl SelectItem {
    /// Unaliased select item.
    pub fn expr(expr: Scalar) -> Self {
        SelectItem { expr, alias: None }
    }
}

impl fmt::Display for SelectItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.expr)?;
        if let Some(a) = &self.alias {
            write!(f, " AS {a}")?;
        }
        Ok(())
    }
}

/// A single-block SPJ/SPJA query (§3).
///
/// `Hash`/`Eq` make resolved queries usable as memoization keys in the
/// session layer (`qrhint-core`'s `PreparedTarget`); the serde derives
/// make advice (which embeds fixed queries) machine-consumable.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Query {
    pub distinct: bool,
    pub select: Vec<SelectItem>,
    pub from: Vec<TableRef>,
    /// WHERE predicate; defaults to [`Pred::True`] when missing.
    pub where_pred: Pred,
    /// GROUP BY expressions (empty when absent).
    pub group_by: Vec<Scalar>,
    /// HAVING predicate; `None` when absent (§3 treats a missing HAVING as
    /// TRUE, but we keep the distinction for faithful pretty-printing).
    pub having: Option<Pred>,
}

impl Query {
    /// Whether the query is SPJA: it has grouping, aggregation or DISTINCT
    /// (§3's definition).
    pub fn is_spja(&self) -> bool {
        self.distinct
            || !self.group_by.is_empty()
            || self.having.is_some()
            || self.select.iter().any(|s| s.expr.has_aggregate())
            || self.having.as_ref().is_some_and(Pred::has_aggregate)
    }

    /// The multiset `Tables(Q)` of §4: table name → number of references.
    pub fn table_multiset(&self) -> BTreeMap<String, usize> {
        let mut m = BTreeMap::new();
        for t in &self.from {
            *m.entry(t.table.clone()).or_insert(0) += 1;
        }
        m
    }

    /// The alias set `Aliases(Q)` of §4, in FROM order.
    pub fn aliases(&self) -> Vec<&str> {
        self.from.iter().map(|t| t.alias.as_str()).collect()
    }

    /// `Aliases(Q, T)`: aliases associated with table `table`.
    pub fn aliases_of(&self, table: &str) -> Vec<&str> {
        let table = crate::ident(table);
        self.from
            .iter()
            .filter(|t| t.table == table)
            .map(|t| t.alias.as_str())
            .collect()
    }

    /// `Table(Q, alias)`: the table an alias refers to.
    pub fn table_of_alias(&self, alias: &str) -> Option<&str> {
        let alias = crate::ident(alias);
        self.from
            .iter()
            .find(|t| t.alias == alias)
            .map(|t| t.table.as_str())
    }

    /// HAVING as a predicate (TRUE when absent).
    pub fn having_pred(&self) -> Pred {
        self.having.clone().unwrap_or(Pred::True)
    }

    /// Every column reference in the query, across all clauses.
    pub fn collect_columns(&self) -> Vec<ColRef> {
        let mut out = Vec::new();
        for item in &self.select {
            item.expr.collect_columns(&mut out);
        }
        self.where_pred.collect_columns(&mut out);
        for g in &self.group_by {
            g.collect_columns(&mut out);
        }
        if let Some(h) = &self.having {
            h.collect_columns(&mut out);
        }
        out
    }

    /// Rebuild the query applying `f` to every column reference (used when
    /// renaming aliases under a table mapping).
    pub fn map_columns(&self, f: &impl Fn(&ColRef) -> ColRef) -> Query {
        Query {
            distinct: self.distinct,
            select: self
                .select
                .iter()
                .map(|s| SelectItem { expr: s.expr.map_columns(f), alias: s.alias.clone() })
                .collect(),
            from: self.from.clone(),
            where_pred: self.where_pred.map_columns(f),
            group_by: self.group_by.iter().map(|g| g.map_columns(f)).collect(),
            having: self.having.as_ref().map(|h| h.map_columns(f)),
        }
    }

    /// Total syntax-tree size over all clauses (used for diagnostics).
    pub fn size(&self) -> usize {
        self.select.iter().map(|s| s.expr.size()).sum::<usize>()
            + self.from.len()
            + self.where_pred.size()
            + self.group_by.iter().map(Scalar::size).sum::<usize>()
            + self.having.as_ref().map_or(0, Pred::size)
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT ")?;
        if self.distinct {
            write!(f, "DISTINCT ")?;
        }
        for (i, s) in self.select.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{s}")?;
        }
        write!(f, " FROM ")?;
        for (i, t) in self.from.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        if self.where_pred != Pred::True {
            write!(f, " WHERE {}", self.where_pred)?;
        }
        if !self.group_by.is_empty() {
            write!(f, " GROUP BY ")?;
            for (i, g) in self.group_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{g}")?;
            }
        }
        if let Some(h) = &self.having {
            write!(f, " HAVING {h}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{AggArg, AggCall, AggFunc};
    use crate::pred::CmpOp;

    fn sample() -> Query {
        Query {
            distinct: false,
            select: vec![
                SelectItem::expr(Scalar::col("l", "beer")),
                SelectItem::expr(Scalar::Agg(AggCall {
                    func: AggFunc::Count,
                    distinct: false,
                    arg: AggArg::Star,
                })),
            ],
            from: vec![TableRef::aliased("Likes", "l"), TableRef::plain("Serves")],
            where_pred: Pred::cmp(
                Scalar::col("l", "beer"),
                CmpOp::Eq,
                Scalar::col("serves", "beer"),
            ),
            group_by: vec![Scalar::col("l", "beer")],
            having: None,
        }
    }

    #[test]
    fn spja_detection() {
        let q = sample();
        assert!(q.is_spja());
        let mut spj = q.clone();
        spj.select = vec![SelectItem::expr(Scalar::col("l", "beer"))];
        spj.group_by.clear();
        assert!(!spj.is_spja());
        spj.distinct = true;
        assert!(spj.is_spja());
    }

    #[test]
    fn table_multiset_counts_duplicates() {
        let q = Query {
            from: vec![
                TableRef::aliased("Serves", "s1"),
                TableRef::aliased("Serves", "s2"),
                TableRef::plain("Likes"),
            ],
            ..sample()
        };
        let m = q.table_multiset();
        assert_eq!(m["serves"], 2);
        assert_eq!(m["likes"], 1);
        assert_eq!(q.aliases_of("serves"), vec!["s1", "s2"]);
        assert_eq!(q.table_of_alias("s2"), Some("serves"));
        assert_eq!(q.table_of_alias("zzz"), None);
    }

    #[test]
    fn display_full_query() {
        let q = sample();
        assert_eq!(
            q.to_string(),
            "SELECT l.beer, COUNT(*) FROM likes l, serves \
             WHERE l.beer = serves.beer GROUP BY l.beer"
        );
    }

    #[test]
    fn map_columns_renames() {
        let q = sample();
        let renamed = q.map_columns(&|c: &ColRef| {
            if c.table == "l" {
                ColRef::new("likes", &c.column)
            } else {
                c.clone()
            }
        });
        assert!(renamed.to_string().contains("likes.beer = serves.beer"));
    }
}

//! Error types shared by AST construction and name resolution.

use std::fmt;

/// Result alias for AST-level operations.
pub type AstResult<T> = Result<T, AstError>;

/// Errors raised while building or resolving ASTs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AstError {
    /// A column reference did not resolve to any table in scope.
    UnknownColumn { column: String },
    /// A column reference resolved to more than one table in scope.
    AmbiguousColumn { column: String, candidates: Vec<String> },
    /// A table alias was referenced but never introduced in `FROM`.
    UnknownAlias { alias: String },
    /// The same alias was introduced twice in one `FROM` clause.
    DuplicateAlias { alias: String },
    /// A table name does not exist in the schema.
    UnknownTable { table: String },
    /// The referenced column does not exist in the referenced table.
    NoSuchColumnInTable { table: String, column: String },
    /// The query uses a SQL feature outside the Qr-Hint fragment
    /// (subqueries, set operators, outer joins, NULL handling, ...).
    UnsupportedFeature { feature: String },
    /// A type error (e.g. comparing a string to an integer).
    TypeError { detail: String },
}

impl fmt::Display for AstError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AstError::UnknownColumn { column } => {
                write!(f, "unknown column `{column}`")
            }
            AstError::AmbiguousColumn { column, candidates } => write!(
                f,
                "ambiguous column `{column}` (could belong to {})",
                candidates.join(", ")
            ),
            AstError::UnknownAlias { alias } => write!(f, "unknown table alias `{alias}`"),
            AstError::DuplicateAlias { alias } => {
                write!(f, "duplicate table alias `{alias}` in FROM")
            }
            AstError::UnknownTable { table } => write!(f, "unknown table `{table}`"),
            AstError::NoSuchColumnInTable { table, column } => {
                write!(f, "table `{table}` has no column `{column}`")
            }
            AstError::UnsupportedFeature { feature } => {
                write!(f, "unsupported SQL feature: {feature}")
            }
            AstError::TypeError { detail } => write!(f, "type error: {detail}"),
        }
    }
}

impl std::error::Error for AstError {}

//! Database schemas: table definitions, column types, keys.
//!
//! Qr-Hint assumes all columns are `NOT NULL` (§3 Limitations) and ignores
//! key/foreign-key constraints during reasoning; keys are still recorded so
//! workload generators can produce realistic data.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

use crate::error::{AstError, AstResult};

/// Column types of the fragment. Everything is `NOT NULL`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum SqlType {
    /// 64-bit integers (covers INT, DECIMAL-without-fraction use in the
    /// paper's workloads).
    Int,
    /// Variable-length strings.
    Str,
}

impl fmt::Display for SqlType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlType::Int => write!(f, "INT"),
            SqlType::Str => write!(f, "VARCHAR"),
        }
    }
}

/// A column definition.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ColumnDef {
    pub name: String,
    pub ty: SqlType,
}

/// A table definition.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableSchema {
    pub name: String,
    pub columns: Vec<ColumnDef>,
    /// Names of key columns (informational; not used in reasoning).
    pub key: Vec<String>,
    /// Row-level `CHECK` constraints over this table's columns
    /// (unqualified references). §3 "Limitations" item 4 notes that
    /// database constraints "can, in theory, be encoded as logical
    /// assertions and included as part of the context when calling Z3" —
    /// these per-row domain constraints are exactly the fragment of that
    /// idea that stays quantifier-free, so including them is cheap (see
    /// [`Schema::domain_context`]).
    #[serde(default)]
    pub checks: Vec<crate::pred::Pred>,
}

impl TableSchema {
    /// Position and type of a column, if present.
    pub fn column(&self, name: &str) -> Option<(usize, SqlType)> {
        let name = crate::ident(name);
        self.columns
            .iter()
            .position(|c| c.name == name)
            .map(|i| (i, self.columns[i].ty))
    }

    /// Column names in declaration order.
    pub fn column_names(&self) -> impl Iterator<Item = &str> {
        self.columns.iter().map(|c| c.name.as_str())
    }
}

/// A database schema: a set of tables.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    tables: BTreeMap<String, TableSchema>,
}

impl Schema {
    /// Empty schema.
    pub fn new() -> Self {
        Schema::default()
    }

    /// Builder-style table registration.
    ///
    /// ```
    /// use qrhint_sqlast::{Schema, SqlType};
    /// let schema = Schema::new()
    ///     .with_table("Likes", &[("drinker", SqlType::Str), ("beer", SqlType::Str)], &["drinker", "beer"]);
    /// assert!(schema.table("likes").is_some());
    /// ```
    pub fn with_table(mut self, name: &str, cols: &[(&str, SqlType)], key: &[&str]) -> Self {
        let t = TableSchema {
            name: crate::ident(name),
            columns: cols
                .iter()
                .map(|(n, ty)| ColumnDef { name: crate::ident(n), ty: *ty })
                .collect(),
            key: key.iter().map(|k| crate::ident(k)).collect(),
            checks: Vec::new(),
        };
        self.tables.insert(t.name.clone(), t);
        self
    }

    /// Render as `CREATE TABLE` DDL that round-trips through the
    /// front-end's schema parser. This is the bridge that lets the
    /// bundled workload schemas (built programmatically with
    /// [`Schema::with_table`]) be registered with the `qr-hint serve`
    /// daemon, whose registration API takes DDL text.
    ///
    /// Types render as `INT`/`TEXT` (the fragment's two types), keys as
    /// a table-level `PRIMARY KEY (...)`, and `CHECK` constraints via
    /// their predicate rendering.
    pub fn to_ddl(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for t in self.tables.values() {
            let _ = write!(out, "CREATE TABLE {} (", t.name);
            let mut first = true;
            for c in &t.columns {
                let ty = match c.ty {
                    SqlType::Int => "INT",
                    SqlType::Str => "TEXT",
                };
                let _ = write!(out, "{}{} {ty}", if first { "" } else { ", " }, c.name);
                first = false;
            }
            if !t.key.is_empty() {
                let _ = write!(out, ", PRIMARY KEY ({})", t.key.join(", "));
            }
            for check in &t.checks {
                let _ = write!(out, ", CHECK ({check})");
            }
            out.push_str(");\n");
        }
        out
    }

    /// Builder-style `CHECK` constraint registration: `check` must
    /// reference columns of `table` (unqualified). Unknown tables are a
    /// no-op (builder convenience; [`Schema::domain_context`] never
    /// fabricates constraints).
    pub fn with_check(mut self, table: &str, check: crate::pred::Pred) -> Self {
        if let Some(t) = self.tables.get_mut(&crate::ident(table)) {
            t.checks.push(check);
        }
        self
    }

    /// Instantiate every `CHECK` constraint of every table referenced by
    /// `q`'s FROM clause, qualifying column references with the FROM
    /// alias. The result is a list of predicates that hold on **every**
    /// row of `F(Q)` — a sound, quantifier-free context for the WHERE
    /// stage's equivalence and repair reasoning (§3 Limitations item 4).
    pub fn domain_context(&self, q: &crate::query::Query) -> Vec<crate::pred::Pred> {
        let mut out = Vec::new();
        for tref in &q.from {
            let Some(ts) = self.table(&tref.table) else { continue };
            for check in &ts.checks {
                let alias = tref.alias.clone();
                out.push(check.map_columns(&|c: &crate::expr::ColRef| {
                    if c.is_unqualified() {
                        crate::expr::ColRef::new(&alias, &c.column)
                    } else {
                        c.clone()
                    }
                }));
            }
        }
        out
    }

    /// Look up a table by name (case-insensitive).
    pub fn table(&self, name: &str) -> Option<&TableSchema> {
        self.tables.get(&crate::ident(name))
    }

    /// Look up a table or raise [`AstError::UnknownTable`].
    pub fn table_or_err(&self, name: &str) -> AstResult<&TableSchema> {
        self.table(name)
            .ok_or_else(|| AstError::UnknownTable { table: name.to_string() })
    }

    /// Iterate over all tables in name order.
    pub fn tables(&self) -> impl Iterator<Item = &TableSchema> {
        self.tables.values()
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// Whether the schema has no tables.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn beers() -> Schema {
        Schema::new()
            .with_table(
                "Likes",
                &[("drinker", SqlType::Str), ("beer", SqlType::Str)],
                &["drinker", "beer"],
            )
            .with_table(
                "Serves",
                &[("bar", SqlType::Str), ("beer", SqlType::Str), ("price", SqlType::Int)],
                &["bar", "beer"],
            )
    }

    #[test]
    fn lookup_is_case_insensitive() {
        let s = beers();
        assert!(s.table("LIKES").is_some());
        assert!(s.table("likes").is_some());
        assert!(s.table("nope").is_none());
        assert!(s.table_or_err("nope").is_err());
    }

    #[test]
    fn column_lookup() {
        let s = beers();
        let serves = s.table("serves").unwrap();
        assert_eq!(serves.column("PRICE"), Some((2, SqlType::Int)));
        assert_eq!(serves.column("missing"), None);
        assert_eq!(serves.column_names().collect::<Vec<_>>(), vec!["bar", "beer", "price"]);
    }

    #[test]
    fn len_and_iter() {
        let s = beers();
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        assert_eq!(s.tables().count(), 2);
    }
}

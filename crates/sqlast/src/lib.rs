//! # qrhint-sqlast
//!
//! Abstract syntax tree, type system, schemas and pretty-printing for the
//! SQL fragment handled by Qr-Hint (SIGMOD 2024): single-block
//! select-project-join queries with an optional single level of grouping
//! and aggregation (SPJ / SPJA queries, §3 of the paper).
//!
//! The crate is deliberately independent of the parser and the solver so
//! that every other crate in the workspace (engine, core, workloads) can
//! share one query representation.
//!
//! ## Highlights
//!
//! * [`Query`] — a single-block SPJ/SPJA query.
//! * [`Pred`] — quantifier-free predicate syntax trees with explicit
//!   n-ary `AND`/`OR` nodes, exactly the shape Algorithms 1–3 of the paper
//!   operate on.
//! * [`Scalar`] — scalar expressions (columns, literals, arithmetic,
//!   aggregate calls).
//! * [`Schema`] / [`schema`] — database schemas and name resolution.
//! * Every node type knows its own [`Pred::size`] (syntax-tree node count),
//!   the unit in which the paper's repair cost (Definition 3) is expressed.

#![forbid(unsafe_code)]

pub mod expr;
pub mod pred;
pub mod query;
pub mod schema;
pub mod resolve;
pub mod error;

pub use error::{AstError, AstResult};
pub use expr::{null_indicator, null_literal, AggArg, AggCall, AggFunc, ArithOp, ColRef, Scalar, NULL_INDICATOR_SUFFIX};
pub use pred::{CmpOp, Pred};
pub use query::{Query, SelectItem, TableRef};
pub use schema::{ColumnDef, Schema, SqlType, TableSchema};

/// Identifiers in this SQL dialect are case-insensitive; we canonicalize by
/// lower-casing at construction time. This helper is the single place where
/// that rule lives.
pub fn ident(s: &str) -> String {
    s.to_ascii_lowercase()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ident_lowercases() {
        assert_eq!(ident("Likes"), "likes");
        assert_eq!(ident("S1"), "s1");
        assert_eq!(ident("already_lower"), "already_lower");
    }
}

//! Predicate syntax trees.
//!
//! Predicates are represented exactly as in §5 of the paper: internal nodes
//! are the logical operators `AND`/`OR` (n-ary, ≥ 2 children) and `NOT`
//! (1 child); leaves are atomic predicates over scalar expressions.
//! [`Pred::size`] reports the node count used in the repair cost model.

use crate::expr::{ColRef, Scalar};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Comparison operators of atomic predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    /// SQL spelling.
    pub fn sql(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }

    /// Logical negation of the operator (`¬(a < b) ⇔ a >= b`).
    pub fn negate(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }

    /// Operator with operands swapped (`a < b ⇔ b > a`).
    pub fn flip(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }

    /// Evaluate the comparison on a totally ordered domain.
    pub fn eval<T: PartialOrd>(self, l: &T, r: &T) -> bool {
        match self {
            CmpOp::Eq => l == r,
            CmpOp::Ne => l != r,
            CmpOp::Lt => l < r,
            CmpOp::Le => l <= r,
            CmpOp::Gt => l > r,
            CmpOp::Ge => l >= r,
        }
    }
}

/// A quantifier-free predicate.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Pred {
    /// Constant TRUE (e.g. a missing WHERE clause).
    True,
    /// Constant FALSE.
    False,
    /// Atomic comparison `lhs op rhs`.
    Cmp(Scalar, CmpOp, Scalar),
    /// `expr [NOT] LIKE 'pattern'` (with `%`/`_` wildcards).
    Like {
        expr: Scalar,
        pattern: String,
        negated: bool,
    },
    /// n-ary conjunction (≥ 2 children after normalization).
    And(Vec<Pred>),
    /// n-ary disjunction (≥ 2 children after normalization).
    Or(Vec<Pred>),
    /// Negation.
    Not(Box<Pred>),
}

#[allow(clippy::should_implement_trait)] // `not` is the smart-negation constructor
impl Pred {
    /// Build an atomic comparison.
    pub fn cmp(lhs: Scalar, op: CmpOp, rhs: Scalar) -> Pred {
        Pred::Cmp(lhs, op, rhs)
    }

    /// Build an equality atom between two columns.
    pub fn col_eq(lt: &str, lc: &str, rt: &str, rc: &str) -> Pred {
        Pred::Cmp(Scalar::col(lt, lc), CmpOp::Eq, Scalar::col(rt, rc))
    }

    /// Smart conjunction: flattens nested `And`s, drops `True`, collapses
    /// to `False` on any `False` child, unwraps singletons.
    pub fn and(children: Vec<Pred>) -> Pred {
        let mut flat = Vec::with_capacity(children.len());
        for c in children {
            match c {
                Pred::True => {}
                Pred::False => return Pred::False,
                Pred::And(grand) => flat.extend(grand),
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => Pred::True,
            1 => flat.pop().unwrap(),
            _ => Pred::And(flat),
        }
    }

    /// Smart disjunction, dual of [`Pred::and`].
    pub fn or(children: Vec<Pred>) -> Pred {
        let mut flat = Vec::with_capacity(children.len());
        for c in children {
            match c {
                Pred::False => {}
                Pred::True => return Pred::True,
                Pred::Or(grand) => flat.extend(grand),
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => Pred::False,
            1 => flat.pop().unwrap(),
            _ => Pred::Or(flat),
        }
    }

    /// Smart negation: collapses constants and double negation, pushes
    /// negation into atomic comparisons (`¬(a<b)` becomes `a>=b`).
    pub fn not(p: Pred) -> Pred {
        match p {
            Pred::True => Pred::False,
            Pred::False => Pred::True,
            Pred::Not(inner) => *inner,
            Pred::Cmp(l, op, r) => Pred::Cmp(l, op.negate(), r),
            Pred::Like { expr, pattern, negated } => Pred::Like { expr, pattern, negated: !negated },
            other => Pred::Not(Box::new(other)),
        }
    }

    /// Negation pushed all the way to the leaves (negation normal form):
    /// applies De Morgan's laws through `AND`/`OR` and negates atoms.
    /// Used by the parser to desugar `NOT IN` / `NOT BETWEEN`.
    pub fn negated_nnf(&self) -> Pred {
        match self {
            Pred::True => Pred::False,
            Pred::False => Pred::True,
            Pred::Cmp(l, op, r) => Pred::Cmp(l.clone(), op.negate(), r.clone()),
            Pred::Like { expr, pattern, negated } => Pred::Like {
                expr: expr.clone(),
                pattern: pattern.clone(),
                negated: !negated,
            },
            Pred::And(cs) => Pred::or(cs.iter().map(Pred::negated_nnf).collect()),
            Pred::Or(cs) => Pred::and(cs.iter().map(Pred::negated_nnf).collect()),
            Pred::Not(c) => (**c).clone(),
        }
    }

    /// Whether this node is an atomic predicate (leaf).
    pub fn is_atomic(&self) -> bool {
        matches!(self, Pred::True | Pred::False | Pred::Cmp(..) | Pred::Like { .. })
    }

    /// Number of syntax-tree nodes, counting each atomic predicate's
    /// scalar operands. This is `|P|` in Definition 3.
    pub fn size(&self) -> usize {
        match self {
            Pred::True | Pred::False => 1,
            Pred::Cmp(l, _, r) => 1 + l.size() + r.size(),
            Pred::Like { expr, .. } => 2 + expr.size(),
            Pred::And(cs) | Pred::Or(cs) => 1 + cs.iter().map(Pred::size).sum::<usize>(),
            Pred::Not(c) => 1 + c.size(),
        }
    }

    /// Number of atomic-predicate leaves.
    pub fn atom_count(&self) -> usize {
        match self {
            p if p.is_atomic() => 1,
            Pred::And(cs) | Pred::Or(cs) => cs.iter().map(Pred::atom_count).sum(),
            Pred::Not(c) => c.atom_count(),
            _ => unreachable!(),
        }
    }

    /// Collect all atomic sub-predicates in left-to-right order.
    pub fn atoms(&self) -> Vec<&Pred> {
        let mut out = Vec::new();
        fn go<'a>(p: &'a Pred, out: &mut Vec<&'a Pred>) {
            if p.is_atomic() {
                out.push(p);
            } else {
                match p {
                    Pred::And(cs) | Pred::Or(cs) => cs.iter().for_each(|c| go(c, out)),
                    Pred::Not(c) => go(c, out),
                    _ => unreachable!(),
                }
            }
        }
        go(self, &mut out);
        out
    }

    /// Collect every column reference appearing in the predicate.
    pub fn collect_columns(&self, out: &mut Vec<ColRef>) {
        match self {
            Pred::True | Pred::False => {}
            Pred::Cmp(l, _, r) => {
                l.collect_columns(out);
                r.collect_columns(out);
            }
            Pred::Like { expr, .. } => expr.collect_columns(out),
            Pred::And(cs) | Pred::Or(cs) => cs.iter().for_each(|c| c.collect_columns(out)),
            Pred::Not(c) => c.collect_columns(out),
        }
    }

    /// Apply `f` to every column reference, rebuilding the predicate.
    pub fn map_columns(&self, f: &impl Fn(&ColRef) -> ColRef) -> Pred {
        match self {
            Pred::True => Pred::True,
            Pred::False => Pred::False,
            Pred::Cmp(l, op, r) => Pred::Cmp(l.map_columns(f), *op, r.map_columns(f)),
            Pred::Like { expr, pattern, negated } => Pred::Like {
                expr: expr.map_columns(f),
                pattern: pattern.clone(),
                negated: *negated,
            },
            Pred::And(cs) => Pred::And(cs.iter().map(|c| c.map_columns(f)).collect()),
            Pred::Or(cs) => Pred::Or(cs.iter().map(|c| c.map_columns(f)).collect()),
            Pred::Not(c) => Pred::Not(Box::new(c.map_columns(f))),
        }
    }

    /// Whether the predicate mentions any aggregate call (legal only in
    /// HAVING).
    pub fn has_aggregate(&self) -> bool {
        match self {
            Pred::True | Pred::False => false,
            Pred::Cmp(l, _, r) => l.has_aggregate() || r.has_aggregate(),
            Pred::Like { expr, .. } => expr.has_aggregate(),
            Pred::And(cs) | Pred::Or(cs) => cs.iter().any(Pred::has_aggregate),
            Pred::Not(c) => c.has_aggregate(),
        }
    }
}

impl fmt::Display for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Precedence: OR(1) < AND(2) < NOT(3) < atoms.
        fn go(p: &Pred, parent: u8, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match p {
                Pred::True => write!(f, "TRUE"),
                Pred::False => write!(f, "FALSE"),
                Pred::Cmp(l, op, r) => write!(f, "{l} {} {r}", op.sql()),
                Pred::Like { expr, pattern, negated } => {
                    let not = if *negated { " NOT" } else { "" };
                    write!(f, "{expr}{not} LIKE '{}'", pattern.replace('\'', "''"))
                }
                Pred::And(cs) => {
                    let need = parent > 2;
                    if need {
                        write!(f, "(")?;
                    }
                    for (i, c) in cs.iter().enumerate() {
                        if i > 0 {
                            write!(f, " AND ")?;
                        }
                        go(c, 2, f)?;
                    }
                    if need {
                        write!(f, ")")?;
                    }
                    Ok(())
                }
                Pred::Or(cs) => {
                    let need = parent > 1;
                    if need {
                        write!(f, "(")?;
                    }
                    for (i, c) in cs.iter().enumerate() {
                        if i > 0 {
                            write!(f, " OR ")?;
                        }
                        go(c, 1, f)?;
                    }
                    if need {
                        write!(f, ")")?;
                    }
                    Ok(())
                }
                Pred::Not(c) => {
                    write!(f, "NOT ")?;
                    go(c, 3, f)
                }
            }
        }
        go(self, 0, f)
    }
}

/// Path from a predicate root to a subtree: sequence of child indices.
/// Used by the repair machinery to name repair sites stably.
pub type PredPath = Vec<usize>;

impl Pred {
    /// Return the subtree at `path`, or `None` if the path is invalid.
    pub fn at_path(&self, path: &[usize]) -> Option<&Pred> {
        let mut cur = self;
        for &i in path {
            cur = match cur {
                Pred::And(cs) | Pred::Or(cs) => cs.get(i)?,
                Pred::Not(c) if i == 0 => c,
                _ => return None,
            };
        }
        Some(cur)
    }

    /// Replace the subtree at `path` with `replacement`, returning the new
    /// predicate. Panics on invalid paths (repair machinery only produces
    /// valid ones).
    pub fn replace_at(&self, path: &[usize], replacement: &Pred) -> Pred {
        if path.is_empty() {
            return replacement.clone();
        }
        match self {
            Pred::And(cs) => {
                let mut cs = cs.clone();
                cs[path[0]] = cs[path[0]].replace_at(&path[1..], replacement);
                Pred::And(cs)
            }
            Pred::Or(cs) => {
                let mut cs = cs.clone();
                cs[path[0]] = cs[path[0]].replace_at(&path[1..], replacement);
                Pred::Or(cs)
            }
            Pred::Not(c) => {
                assert_eq!(path[0], 0, "NOT has a single child");
                Pred::Not(Box::new(c.replace_at(&path[1..], replacement)))
            }
            _ => panic!("replace_at: path descends into a leaf"),
        }
    }

    /// Enumerate all subtree paths in pre-order (including the root `[]`).
    pub fn all_paths(&self) -> Vec<PredPath> {
        let mut out = Vec::new();
        fn go(p: &Pred, prefix: &mut PredPath, out: &mut Vec<PredPath>) {
            out.push(prefix.clone());
            match p {
                Pred::And(cs) | Pred::Or(cs) => {
                    for (i, c) in cs.iter().enumerate() {
                        prefix.push(i);
                        go(c, prefix, out);
                        prefix.pop();
                    }
                }
                Pred::Not(c) => {
                    prefix.push(0);
                    go(c, prefix, out);
                    prefix.pop();
                }
                _ => {}
            }
        }
        go(self, &mut Vec::new(), &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a() -> Pred {
        Pred::cmp(Scalar::col("t", "a"), CmpOp::Eq, Scalar::Int(1))
    }
    fn b() -> Pred {
        Pred::cmp(Scalar::col("t", "b"), CmpOp::Gt, Scalar::Int(2))
    }
    fn c() -> Pred {
        Pred::cmp(Scalar::col("t", "c"), CmpOp::Lt, Scalar::Int(3))
    }

    #[test]
    fn smart_and_flattens_and_collapses() {
        assert_eq!(Pred::and(vec![]), Pred::True);
        assert_eq!(Pred::and(vec![a()]), a());
        assert_eq!(Pred::and(vec![a(), Pred::False, b()]), Pred::False);
        let nested = Pred::and(vec![a(), Pred::and(vec![b(), c()])]);
        assert_eq!(nested, Pred::And(vec![a(), b(), c()]));
        assert_eq!(Pred::and(vec![Pred::True, a()]), a());
    }

    #[test]
    fn smart_or_flattens_and_collapses() {
        assert_eq!(Pred::or(vec![]), Pred::False);
        assert_eq!(Pred::or(vec![a(), Pred::True]), Pred::True);
        let nested = Pred::or(vec![Pred::or(vec![a(), b()]), c()]);
        assert_eq!(nested, Pred::Or(vec![a(), b(), c()]));
    }

    #[test]
    fn not_pushes_into_atoms() {
        assert_eq!(
            Pred::not(a()),
            Pred::cmp(Scalar::col("t", "a"), CmpOp::Ne, Scalar::Int(1))
        );
        assert_eq!(Pred::not(Pred::not(Pred::Or(vec![a(), b()]))), Pred::Or(vec![a(), b()]));
        assert_eq!(Pred::not(Pred::True), Pred::False);
    }

    #[test]
    fn size_matches_paper_example() {
        // Example 5's P has 12 nodes under the paper's counting:
        // (A=C AND (D<>E OR D>F)) OR (A=C AND (D>11 OR D<7 OR E<=5)).
        // The paper counts each atom as one node plus logical nodes:
        // atoms: 7, logical: OR, AND, OR, AND, OR = 5, total 12.
        // Our size() counts scalar operands too; expose atom-based size via
        // the cost module in qrhint-core instead. Here just sanity-check
        // monotonicity.
        let p = Pred::Or(vec![
            Pred::And(vec![a(), Pred::Or(vec![b(), c()])]),
            Pred::And(vec![a(), Pred::Or(vec![b(), c(), a()])]),
        ]);
        assert_eq!(p.atom_count(), 7);
        assert!(p.size() > p.atom_count());
    }

    #[test]
    fn paths_roundtrip() {
        let p = Pred::Or(vec![Pred::And(vec![a(), b()]), c()]);
        let paths = p.all_paths();
        assert!(paths.contains(&vec![]));
        assert!(paths.contains(&vec![0, 1]));
        assert_eq!(p.at_path(&[0, 1]), Some(&b()));
        let q = p.replace_at(&[0, 1], &c());
        assert_eq!(q, Pred::Or(vec![Pred::And(vec![a(), c()]), c()]));
        assert_eq!(p.at_path(&[5]), None);
    }

    #[test]
    fn display_parenthesizes_or_under_and() {
        let p = Pred::And(vec![Pred::Or(vec![a(), b()]), c()]);
        assert_eq!(p.to_string(), "(t.a = 1 OR t.b > 2) AND t.c < 3");
    }

    #[test]
    fn atoms_in_order() {
        let p = Pred::Or(vec![Pred::And(vec![a(), b()]), Pred::Not(Box::new(c()))]);
        let atoms = p.atoms();
        assert_eq!(atoms.len(), 3);
        assert_eq!(atoms[0], &a());
        assert_eq!(atoms[2], &c());
    }
}

//! Scalar expressions: column references, literals, arithmetic and
//! aggregate function calls.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A (possibly qualified) column reference.
///
/// Before name resolution ([`crate::resolve`]) the `table` component may be
/// empty (unqualified reference); after resolution every reference carries
/// the table *alias* it binds to.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ColRef {
    /// Table alias this column binds to ("" if not yet resolved).
    pub table: String,
    /// Column name.
    pub column: String,
}

impl ColRef {
    /// Construct a qualified column reference; identifiers are
    /// canonicalized to lower case.
    pub fn new(table: &str, column: &str) -> Self {
        ColRef { table: crate::ident(table), column: crate::ident(column) }
    }

    /// Construct an unqualified reference (to be resolved later).
    pub fn unqualified(column: &str) -> Self {
        ColRef { table: String::new(), column: crate::ident(column) }
    }

    /// Whether the reference still lacks a table qualifier.
    pub fn is_unqualified(&self) -> bool {
        self.table.is_empty()
    }
}

/// Suffix of the companion NULL-indicator column used by the NULL
/// prototype (two-variable encoding of \[58\]; see `qrhint-core`'s
/// `nullsafe` module): `c__isnull` is 1 when `c` is NULL, 0 otherwise.
pub const NULL_INDICATOR_SUFFIX: &str = "__isnull";

/// The indicator column paired with `c` under the NULL prototype's
/// two-variable encoding.
pub fn null_indicator(c: &ColRef) -> ColRef {
    ColRef::new(&c.table, &format!("{}{}", c.column, NULL_INDICATOR_SUFFIX))
}

/// The reserved pseudo-column standing for a `NULL` literal in the NULL
/// prototype: an always-null "column" (its not-null guard is the
/// constant FALSE), so `x = NULL` correctly evaluates to UNKNOWN under
/// the 3VL encoding — and is filtered by WHERE — in both positive and
/// negated positions. Produced by `parse_pred_nullable`; ordinary name
/// resolution never sees it.
pub fn null_literal() -> ColRef {
    ColRef::new("__sql", "null_literal")
}

impl fmt::Display for ColRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.table.is_empty() {
            write!(f, "{}", self.column)
        } else {
            write!(f, "{}.{}", self.table, self.column)
        }
    }
}

/// Binary arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ArithOp {
    Add,
    Sub,
    Mul,
    Div,
}

impl ArithOp {
    /// SQL spelling of the operator.
    pub fn sql(self) -> &'static str {
        match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "/",
        }
    }

    /// Precedence level used by the pretty-printer (higher binds tighter).
    pub fn precedence(self) -> u8 {
        match self {
            ArithOp::Add | ArithOp::Sub => 1,
            ArithOp::Mul | ArithOp::Div => 2,
        }
    }
}

/// SQL aggregate functions supported by the fragment (§7, Appendix E).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum AggFunc {
    Count,
    Sum,
    Avg,
    Min,
    Max,
}

impl AggFunc {
    /// SQL spelling.
    pub fn sql(self) -> &'static str {
        match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
        }
    }
}

/// Argument of an aggregate call: `*` (COUNT only) or a scalar expression.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum AggArg {
    /// `COUNT(*)`.
    Star,
    /// `AGG(expr)`.
    Expr(Box<Scalar>),
}

/// An aggregate function call, e.g. `COUNT(DISTINCT t.author)`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AggCall {
    pub func: AggFunc,
    pub distinct: bool,
    pub arg: AggArg,
}

impl fmt::Display for AggCall {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.func.sql())?;
        if self.distinct {
            write!(f, "DISTINCT ")?;
        }
        match &self.arg {
            AggArg::Star => write!(f, "*")?,
            AggArg::Expr(e) => write!(f, "{e}")?,
        }
        write!(f, ")")
    }
}

/// A scalar expression.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Scalar {
    /// Column reference.
    Col(ColRef),
    /// Integer literal.
    Int(i64),
    /// String literal.
    Str(String),
    /// Binary arithmetic.
    Arith(Box<Scalar>, ArithOp, Box<Scalar>),
    /// Unary negation.
    Neg(Box<Scalar>),
    /// Aggregate call (only legal in SELECT/HAVING of SPJA queries).
    Agg(AggCall),
}

impl Scalar {
    /// Convenience constructor for `lhs op rhs`.
    pub fn arith(lhs: Scalar, op: ArithOp, rhs: Scalar) -> Scalar {
        Scalar::Arith(Box::new(lhs), op, Box::new(rhs))
    }

    /// Column reference constructor.
    pub fn col(table: &str, column: &str) -> Scalar {
        Scalar::Col(ColRef::new(table, column))
    }

    /// Number of syntax-tree nodes in the expression (used by the cost
    /// model, Definition 3).
    pub fn size(&self) -> usize {
        match self {
            Scalar::Col(_) | Scalar::Int(_) | Scalar::Str(_) => 1,
            Scalar::Arith(l, _, r) => 1 + l.size() + r.size(),
            Scalar::Neg(e) => 1 + e.size(),
            Scalar::Agg(call) => {
                1 + match &call.arg {
                    AggArg::Star => 1,
                    AggArg::Expr(e) => e.size(),
                }
            }
        }
    }

    /// Whether the expression contains any aggregate call.
    pub fn has_aggregate(&self) -> bool {
        match self {
            Scalar::Col(_) | Scalar::Int(_) | Scalar::Str(_) => false,
            Scalar::Arith(l, _, r) => l.has_aggregate() || r.has_aggregate(),
            Scalar::Neg(e) => e.has_aggregate(),
            Scalar::Agg(_) => true,
        }
    }

    /// Collect all column references (outside and inside aggregates) into
    /// `out`, preserving first-visit order.
    pub fn collect_columns(&self, out: &mut Vec<ColRef>) {
        match self {
            Scalar::Col(c) => out.push(c.clone()),
            Scalar::Int(_) | Scalar::Str(_) => {}
            Scalar::Arith(l, _, r) => {
                l.collect_columns(out);
                r.collect_columns(out);
            }
            Scalar::Neg(e) => e.collect_columns(out),
            Scalar::Agg(call) => {
                if let AggArg::Expr(e) = &call.arg {
                    e.collect_columns(out);
                }
            }
        }
    }

    /// Apply `f` to every column reference, rebuilding the expression.
    /// Used to rename aliases when unifying queries under a table mapping
    /// (Definition 1 of the paper).
    pub fn map_columns(&self, f: &impl Fn(&ColRef) -> ColRef) -> Scalar {
        match self {
            Scalar::Col(c) => Scalar::Col(f(c)),
            Scalar::Int(_) | Scalar::Str(_) => self.clone(),
            Scalar::Arith(l, op, r) => {
                Scalar::Arith(Box::new(l.map_columns(f)), *op, Box::new(r.map_columns(f)))
            }
            Scalar::Neg(e) => Scalar::Neg(Box::new(e.map_columns(f))),
            Scalar::Agg(call) => {
                let arg = match &call.arg {
                    AggArg::Star => AggArg::Star,
                    AggArg::Expr(e) => AggArg::Expr(Box::new(e.map_columns(f))),
                };
                Scalar::Agg(AggCall { func: call.func, distinct: call.distinct, arg })
            }
        }
    }
}

impl fmt::Display for Scalar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn go(e: &Scalar, parent_prec: u8, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match e {
                Scalar::Col(c) => write!(f, "{c}"),
                Scalar::Int(v) => write!(f, "{v}"),
                Scalar::Str(s) => write!(f, "'{}'", s.replace('\'', "''")),
                Scalar::Arith(l, op, r) => {
                    let prec = op.precedence();
                    let need_parens = prec < parent_prec;
                    if need_parens {
                        write!(f, "(")?;
                    }
                    go(l, prec, f)?;
                    write!(f, " {} ", op.sql())?;
                    // Right operand of -, / needs parens at equal precedence.
                    go(r, prec + 1, f)?;
                    if need_parens {
                        write!(f, ")")?;
                    }
                    Ok(())
                }
                Scalar::Neg(inner) => {
                    write!(f, "-")?;
                    go(inner, 3, f)
                }
                Scalar::Agg(call) => write!(f, "{call}"),
            }
        }
        go(self, 0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_arith_parenthesization() {
        // (a + b) * 2
        let e = Scalar::arith(
            Scalar::arith(Scalar::col("t", "a"), ArithOp::Add, Scalar::col("t", "b")),
            ArithOp::Mul,
            Scalar::Int(2),
        );
        assert_eq!(e.to_string(), "(t.a + t.b) * 2");
        // a - (b - c) keeps parens on the right
        let e2 = Scalar::arith(
            Scalar::col("t", "a"),
            ArithOp::Sub,
            Scalar::arith(Scalar::col("t", "b"), ArithOp::Sub, Scalar::col("t", "c")),
        );
        assert_eq!(e2.to_string(), "t.a - (t.b - t.c)");
    }

    #[test]
    fn display_string_literal_escaping() {
        assert_eq!(Scalar::Str("O'Brien".into()).to_string(), "'O''Brien'");
    }

    #[test]
    fn agg_display() {
        let c = AggCall { func: AggFunc::Count, distinct: true, arg: AggArg::Star };
        assert_eq!(c.to_string(), "COUNT(DISTINCT *)");
        let s = AggCall {
            func: AggFunc::Sum,
            distinct: false,
            arg: AggArg::Expr(Box::new(Scalar::arith(
                Scalar::col("s", "d"),
                ArithOp::Mul,
                Scalar::Int(2),
            ))),
        };
        assert_eq!(s.to_string(), "SUM(s.d * 2)");
    }

    #[test]
    fn size_counts_nodes() {
        let e = Scalar::arith(Scalar::col("t", "a"), ArithOp::Add, Scalar::Int(1));
        assert_eq!(e.size(), 3);
        let agg = Scalar::Agg(AggCall {
            func: AggFunc::Max,
            distinct: false,
            arg: AggArg::Expr(Box::new(e.clone())),
        });
        assert_eq!(agg.size(), 4);
    }

    #[test]
    fn collect_and_map_columns() {
        let e = Scalar::arith(Scalar::col("s1", "price"), ArithOp::Add, Scalar::col("s2", "price"));
        let mut cols = vec![];
        e.collect_columns(&mut cols);
        assert_eq!(cols.len(), 2);
        let renamed = e.map_columns(&|c: &ColRef| {
            if c.table == "s1" {
                ColRef::new("x", &c.column)
            } else {
                c.clone()
            }
        });
        assert_eq!(renamed.to_string(), "x.price + s2.price");
    }

    #[test]
    fn has_aggregate_detection() {
        assert!(!Scalar::col("t", "a").has_aggregate());
        let agg = Scalar::Agg(AggCall {
            func: AggFunc::Count,
            distinct: false,
            arg: AggArg::Star,
        });
        assert!(Scalar::arith(agg, ArithOp::Mul, Scalar::Int(2)).has_aggregate());
    }
}

//! Property-based soundness tests for the solver, cross-checked against
//! brute-force evaluation over a small integer grid (the ground truth
//! never touches the solver's own code paths).

use proptest::prelude::*;
use qrhint_smt::{Atom, Formula, Model, Rel, SatResult, Solver, Sort, Term, Value, VarPool};

const NVARS: usize = 3;
const GRID: i64 = 4; // values 0..GRID per variable

fn pool() -> VarPool {
    let mut p = VarPool::new();
    for i in 0..NVARS {
        p.fresh(&format!("x{i}"), Sort::Int);
    }
    p
}

fn var(i: usize) -> Term {
    Term::var(qrhint_smt::VarId(i as u32))
}

fn arb_term() -> impl Strategy<Value = Term> {
    prop_oneof![
        (0..NVARS).prop_map(var),
        (0i64..4).prop_map(Term::IntConst),
        ((0..NVARS), (1i64..3), (-2i64..3)).prop_map(|(v, c, k)| Term::add(
            Term::mul(Term::IntConst(c), var(v)),
            Term::IntConst(k)
        )),
        ((0..NVARS), (0..NVARS)).prop_map(|(a, b)| Term::sub(var(a), var(b))),
    ]
}

fn arb_rel() -> impl Strategy<Value = Rel> {
    prop_oneof![
        Just(Rel::Eq),
        Just(Rel::Ne),
        Just(Rel::Lt),
        Just(Rel::Le),
        Just(Rel::Gt),
        Just(Rel::Ge),
    ]
}

fn arb_formula() -> impl Strategy<Value = Formula> {
    let atom = (arb_term(), arb_rel(), arb_term())
        .prop_map(|(l, r, t)| Formula::Atom(Atom::Cmp(l, r, t)));
    atom.prop_recursive(3, 12, 3, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 2..4).prop_map(Formula::And),
            prop::collection::vec(inner.clone(), 2..4).prop_map(Formula::Or),
            inner.prop_map(|f| Formula::Not(Box::new(f))),
        ]
    })
}

/// Evaluate via the Model machinery at a grid point (Model::eval_formula
/// uses the real term semantics, independent of the search).
fn eval_at(f: &Formula, vals: &[i64]) -> Option<bool> {
    let mut m = Model::new();
    for (i, v) in vals.iter().enumerate() {
        m.set(qrhint_smt::VarId(i as u32), Value::Int(*v));
    }
    m.eval_formula(f)
}

fn grid_sat(f: &Formula) -> bool {
    for a in 0..GRID {
        for b in 0..GRID {
            for c in 0..GRID {
                if eval_at(f, &[a, b, c]) == Some(true) {
                    return true;
                }
            }
        }
    }
    false
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// Unsat verdicts are never wrong: no grid point satisfies the
    /// formula. (The converse does not hold — grid-unsat formulas may be
    /// satisfiable outside the grid — so only this direction is checked.)
    #[test]
    fn unsat_is_sound(f in arb_formula()) {
        let solver = Solver::default();
        let mut p = pool();
        let outcome = solver.check(&f, &mut p);
        if outcome.result == SatResult::Unsat {
            prop_assert!(!grid_sat(&f), "solver said Unsat but grid satisfies {f}");
        }
    }

    /// Sat verdicts come with models that really satisfy the formula.
    #[test]
    fn sat_models_validate(f in arb_formula()) {
        let solver = Solver::default();
        let mut p = pool();
        let outcome = solver.check(&f, &mut p);
        if outcome.result == SatResult::Sat {
            let m = outcome.model.expect("Sat implies model");
            prop_assert_eq!(m.eval_formula(&f), Some(true), "model fails {}", f);
        }
    }

    /// Grid-satisfiable formulas are never called Unsat, and whenever the
    /// grid has a witness the solver must find Sat (completeness on this
    /// easy fragment — all atoms are linear with small constants).
    #[test]
    fn grid_witness_implies_sat(f in arb_formula()) {
        if grid_sat(&f) {
            let solver = Solver::default();
            let mut p = pool();
            let outcome = solver.check(&f, &mut p);
            prop_assert_eq!(outcome.result, SatResult::Sat, "grid-sat {} got {:?}", f, outcome.result);
        }
    }

    /// Double negation and De Morgan preserve the verdict.
    #[test]
    fn negation_laws(f in arb_formula()) {
        let solver = Solver::default();
        let mut p = pool();
        let direct = solver.check(&f, &mut p).result;
        let mut p2 = pool();
        let doubled = solver
            .check(&Formula::Not(Box::new(Formula::Not(Box::new(f.clone())))), &mut p2)
            .result;
        // Definitive verdicts must agree (Unknowns may differ).
        if direct != SatResult::Unknown && doubled != SatResult::Unknown {
            prop_assert_eq!(direct, doubled);
        }
    }

    /// `f ∧ ¬f` is never Sat.
    #[test]
    fn contradiction_never_sat(f in arb_formula()) {
        let solver = Solver::default();
        let mut p = pool();
        let contra = Formula::and(vec![f.clone(), Formula::not(f.clone())]);
        let outcome = solver.check(&contra, &mut p);
        prop_assert_ne!(outcome.result, SatResult::Sat, "f ∧ ¬f Sat for {}", f);
    }
}

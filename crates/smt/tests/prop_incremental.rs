//! Parity of the incremental assumption-stack theory with the
//! from-scratch conjunction check, plus the regression guard that the
//! assumption stack keeps per-branch theory work linear in depth.

use proptest::prelude::*;
use qrhint_smt::conj::{check_conjunction, Lit, Translation};
use qrhint_smt::theory::TheoryState;
use qrhint_smt::{Atom, Formula, Rel, SatResult, Solver, Sort, Term, VarId, VarPool};

const NI: usize = 3; // int vars, ids 0..NI
const NS: usize = 2; // str vars, ids NI..NI+NS

fn base_pool() -> VarPool {
    let mut p = VarPool::new();
    for i in 0..NI {
        p.fresh(&format!("x{i}"), Sort::Int);
    }
    for i in 0..NS {
        p.fresh(&format!("s{i}"), Sort::Str);
    }
    p
}

fn int_var(i: usize) -> Term {
    Term::Var(VarId(i as u32))
}

fn str_var(i: usize) -> Term {
    Term::Var(VarId((NI + i) as u32))
}

fn arb_int_term() -> impl Strategy<Value = Term> {
    prop_oneof![
        (0..NI).prop_map(int_var),
        (-4i64..5).prop_map(Term::IntConst),
        ((0..NI), -3i64..4, -4i64..5).prop_map(|(v, c, k)| Term::add(
            Term::mul(Term::IntConst(c), int_var(v)),
            Term::IntConst(k)
        )),
        ((0..NI), (0..NI)).prop_map(|(a, b)| Term::mul(int_var(a), int_var(b))),
        ((0..NI), (0..NI)).prop_map(|(a, b)| Term::sub(int_var(a), int_var(b))),
    ]
}

fn arb_rel() -> impl Strategy<Value = Rel> {
    prop_oneof![
        Just(Rel::Eq),
        Just(Rel::Ne),
        Just(Rel::Lt),
        Just(Rel::Le),
        Just(Rel::Gt),
        Just(Rel::Ge),
    ]
}

fn arb_str_term() -> impl Strategy<Value = Term> {
    prop_oneof![
        (0..NS).prop_map(str_var),
        prop_oneof![Just("Amy"), Just("Bob"), Just("Eve"), Just("")]
            .prop_map(|s| Term::StrConst(s.into())),
    ]
}

/// Random literals over both sorts, including disequalities (which the
/// conjunction check case-splits) and LIKE patterns.
fn arb_lit() -> impl Strategy<Value = Lit> {
    let int_atom = (arb_int_term(), arb_rel(), arb_int_term())
        .prop_map(|(l, r, t)| Atom::Cmp(l, r, t).canonical().0);
    let str_atom = (arb_str_term(), arb_rel(), arb_str_term())
        .prop_map(|(l, r, t)| Atom::Cmp(l, r, t).canonical().0);
    let like_atom = ((0..NS), prop_oneof![Just("A%"), Just("_m%"), Just("B_b"), Just("%")])
        .prop_map(|(v, p)| Atom::Like(str_var(v), p.into()));
    (prop_oneof![int_atom, str_atom, like_atom], any::<bool>())
}

fn arb_formula() -> impl Strategy<Value = Formula> {
    let leaf = arb_lit().prop_map(|(a, p)| {
        let f = Formula::atom(a);
        if p {
            f
        } else {
            Formula::not(f)
        }
    });
    leaf.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 1..4).prop_map(Formula::and),
            proptest::collection::vec(inner.clone(), 1..4).prop_map(Formula::or),
            inner.prop_map(Formula::not),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Pushing a literal stack one element at a time gives the exact
    /// verdict *and model* of a from-scratch `check_conjunction` at every
    /// prefix.
    #[test]
    fn incremental_check_matches_from_scratch(
        lits in proptest::collection::vec(arb_lit(), 0..10),
    ) {
        let base = base_pool();
        let mut inc_pool = base.clone();
        let mut th = TheoryState::new();
        for (i, (a, pol)) in lits.iter().enumerate() {
            th.push(a.clone(), *pol, &mut inc_pool);
            let mut fs_pool = base.clone();
            let expect = check_conjunction(&lits[..=i], &mut fs_pool);
            let got = th.check_full();
            prop_assert_eq!(got.0, expect.0, "verdict diverged at prefix {}", i + 1);
            prop_assert_eq!(got.1, expect.1, "model diverged at prefix {}", i + 1);
        }
    }

    /// Arbitrary push/pop interleavings leave the theory state exactly
    /// where a from-scratch translation of the surviving stack would be
    /// (verdict, model, and pool allocation all agree).
    #[test]
    fn pop_restores_from_scratch_state(
        lits in proptest::collection::vec(arb_lit(), 1..10),
        ops in proptest::collection::vec(any::<bool>(), 1..20),
    ) {
        let base = base_pool();
        let mut inc_pool = base.clone();
        let mut th = TheoryState::new();
        let mut reference: Vec<Lit> = Vec::new();
        let mut next = 0usize;
        for push in ops {
            if push || reference.is_empty() {
                let (a, p) = lits[next % lits.len()].clone();
                next += 1;
                th.push(a.clone(), p, &mut inc_pool);
                reference.push((a, p));
            } else {
                th.pop(&mut inc_pool);
                reference.pop();
            }
            prop_assert_eq!(th.depth(), reference.len());
            let mut fs_pool = base.clone();
            let expect = check_conjunction(&reference, &mut fs_pool);
            let got = th.check_full();
            prop_assert_eq!(got.0, expect.0, "verdict diverged");
            prop_assert_eq!(got.1, expect.1, "model diverged");
            // Pool allocation must match a full from-scratch translation
            // of the surviving stack. (`check_conjunction` itself can
            // return early on a constant conflict, skipping later
            // literals' opaque allocations, so translate explicitly.)
            let mut tr_pool = base.clone();
            let mut tr = Translation::default();
            for (a, p) in &reference {
                tr.push_lit(a, *p, &mut tr_pool);
            }
            prop_assert_eq!(inc_pool.len(), tr_pool.len(), "pool allocation diverged");
        }
    }

    /// Full-solver cross-mode compatibility: the incremental search may
    /// refine `Unknown` to a definitive verdict via quick-conflict
    /// pruning but must never contradict the from-scratch search, and a
    /// shared `Sat` verdict carries the same assignment for the user's
    /// variables.
    #[test]
    fn solver_modes_never_contradict(f in arb_formula()) {
        let mut p_inc = base_pool();
        let mut p_fs = base_pool();
        let inc = Solver::new();
        let fs = Solver { incremental: false, ..Solver::default() };
        let a = inc.check(&f, &mut p_inc);
        let b = fs.check(&f, &mut p_fs);
        match (a.result, b.result) {
            (SatResult::Sat, SatResult::Unsat) | (SatResult::Unsat, SatResult::Sat) => {
                prop_assert!(false, "modes contradict: inc={:?} fs={:?}", a.result, b.result);
            }
            (SatResult::Sat, SatResult::Sat) => {
                let (ma, mb) = (a.model.unwrap(), b.model.unwrap());
                prop_assert_eq!(ma.eval_formula(&f), Some(true));
                prop_assert_eq!(mb.eval_formula(&f), Some(true));
                // Same first satisfying branch ⇒ same model on the
                // user's variables (solver-internal opaque vars may
                // differ in id between the two modes).
                for v in 0..(NI + NS) {
                    prop_assert_eq!(ma.get(VarId(v as u32)), mb.get(VarId(v as u32)));
                }
            }
            _ => {}
        }
    }
}

/// Regression guard for the stride-prune bugfix: along one branch of
/// depth `d` the from-scratch path retranslates the whole prefix at
/// every pruning stride and at the leaf (O(d²) literals), while the
/// assumption stack translates each pushed literal once (O(d)).
#[test]
fn incremental_theory_work_is_linear_in_depth() {
    let run = |d: usize, incremental: bool| {
        let mut p = VarPool::new();
        let parts: Vec<Formula> = (0..d)
            .map(|i| {
                let v = Term::var(p.fresh(&format!("y{i}"), Sort::Int));
                Formula::cmp(v, Rel::Ge, Term::IntConst(0))
            })
            .collect();
        let f = Formula::and(parts);
        let s = Solver { max_atoms: 64, incremental, ..Solver::default() };
        let out = s.check(&f, &mut p);
        assert_eq!(out.result, SatResult::Sat);
        out.stats
    };
    let inc16 = run(16, true);
    let inc32 = run(32, true);
    assert!(
        inc32.theory_lits_translated <= inc16.theory_lits_translated * 5 / 2,
        "incremental translation work grew superlinearly with depth: {} -> {}",
        inc16.theory_lits_translated,
        inc32.theory_lits_translated,
    );
    // Document the quadratic baseline this guards against: doubling the
    // depth more than triples the from-scratch translation work.
    let fs16 = run(16, false);
    let fs32 = run(32, false);
    assert!(
        fs32.theory_lits_translated > fs16.theory_lits_translated * 3,
        "expected the from-scratch baseline to stay quadratic ({} -> {})",
        fs16.theory_lits_translated,
        fs32.theory_lits_translated,
    );
}

//! Interval prescreen: decide *unsatisfiability* of a formula conjunction
//! by per-variable interval reasoning alone — no Boolean search, no theory
//! solver.
//!
//! The oracle layer's hottest call shape is `sat_f(f, ctx)` where `f` is a
//! conjunction whose top level mixes atoms from a student predicate with
//! the negation of a target predicate (`implies` lowers to exactly this).
//! When a student writes a statically contradictory predicate
//! (`a > 5 AND a < 3`), the smart constructors flatten those conjuncts to
//! the top level, so a linear scan that keeps one integer interval and one
//! string equality fact per *variable* refutes the whole query without the
//! DPLL(T) machinery.
//!
//! Soundness: only a **subset** of conjuncts is interpreted — top-level
//! atoms (and their `Not`-wrapped forms) whose shape is `var ⋈ constant`,
//! `var ⋈ var` with identical terms, or constant ⋈ constant. Every ignored
//! conjunct can only constrain the conjunction *further*, so "the
//! interpreted subset is unsatisfiable" implies the conjunction is. A
//! `true` return is therefore always safe to report as `Unsat`; `false`
//! means "not decided here", never "satisfiable".

use std::collections::BTreeMap;

use crate::formula::{Atom, Formula, Rel};
use crate::term::{Term, VarId};

/// Fold a constant integer term.
fn const_int(t: &Term) -> Option<i64> {
    match t {
        Term::IntConst(k) => Some(*k),
        Term::Neg(e) => const_int(e)?.checked_neg(),
        Term::Add(l, r) => const_int(l)?.checked_add(const_int(r)?),
        Term::Sub(l, r) => const_int(l)?.checked_sub(const_int(r)?),
        Term::Mul(l, r) => const_int(l)?.checked_mul(const_int(r)?),
        Term::Div(l, r) => {
            let d = const_int(r)?;
            if d == 0 {
                None
            } else {
                const_int(l)?.checked_div(d)
            }
        }
        Term::Var(_) | Term::StrConst(_) => None,
    }
}

#[derive(Default)]
struct IntFacts {
    lo: Option<i64>,
    hi: Option<i64>,
    ne: Vec<i64>,
}

#[derive(Default)]
struct StrFacts {
    eq: Option<String>,
    ne: Vec<String>,
}

#[derive(Default)]
struct Env {
    ints: BTreeMap<VarId, IntFacts>,
    strs: BTreeMap<VarId, StrFacts>,
    contradiction: bool,
}

impl Env {
    fn add_int(&mut self, v: VarId, rel: Rel, k: i64) {
        let f = self.ints.entry(v).or_default();
        match rel {
            Rel::Eq => {
                f.lo = Some(f.lo.map_or(k, |lo| lo.max(k)));
                f.hi = Some(f.hi.map_or(k, |hi| hi.min(k)));
            }
            Rel::Ne => f.ne.push(k),
            Rel::Lt => {
                let b = k.saturating_sub(1);
                f.hi = Some(f.hi.map_or(b, |hi| hi.min(b)));
            }
            Rel::Le => f.hi = Some(f.hi.map_or(k, |hi| hi.min(k))),
            Rel::Gt => {
                let b = k.saturating_add(1);
                f.lo = Some(f.lo.map_or(b, |lo| lo.max(b)));
            }
            Rel::Ge => f.lo = Some(f.lo.map_or(k, |lo| lo.max(k))),
        }
        if let (Some(lo), Some(hi)) = (f.lo, f.hi) {
            if lo > hi || (lo == hi && f.ne.contains(&lo)) {
                self.contradiction = true;
            }
        }
    }

    fn add_str(&mut self, v: VarId, rel: Rel, s: &str) {
        let f = self.strs.entry(v).or_default();
        match rel {
            Rel::Eq => {
                if f.eq.as_deref().is_some_and(|e| e != s) || f.ne.iter().any(|n| n == s) {
                    self.contradiction = true;
                }
                f.eq = Some(s.to_string());
            }
            Rel::Ne => {
                if f.eq.as_deref() == Some(s) {
                    self.contradiction = true;
                }
                f.ne.push(s.to_string());
            }
            // Ordered string comparisons are rare in the fragment; skip.
            _ => {}
        }
    }

    /// Interpret one top-level conjunct; `negated` tracks `Not` wrappers.
    fn add_conjunct(&mut self, f: &Formula, negated: bool) {
        match f {
            Formula::True => {
                if negated {
                    self.contradiction = true;
                }
            }
            Formula::False => {
                if !negated {
                    self.contradiction = true;
                }
            }
            Formula::Not(inner) => self.add_conjunct(inner, !negated),
            Formula::Atom(Atom::Cmp(l, rel, r)) => {
                let rel = if negated { rel.negate() } else { *rel };
                if let (Some(a), Some(b)) = (const_int(l), const_int(r)) {
                    if !rel.eval(&a, &b) {
                        self.contradiction = true;
                    }
                    return;
                }
                if let (Term::StrConst(a), Term::StrConst(b)) = (l, r) {
                    if !rel.eval(a, b) {
                        self.contradiction = true;
                    }
                    return;
                }
                if l == r {
                    // `t ⋈ t` over a NULL-free logic.
                    if !matches!(rel, Rel::Eq | Rel::Le | Rel::Ge) {
                        self.contradiction = true;
                    }
                    return;
                }
                match (l, r) {
                    (Term::Var(v), t) => {
                        if let Some(k) = const_int(t) {
                            self.add_int(*v, rel, k);
                        } else if let Term::StrConst(s) = t {
                            self.add_str(*v, rel, s);
                        }
                    }
                    (t, Term::Var(v)) => {
                        if let Some(k) = const_int(t) {
                            self.add_int(*v, rel.flip(), k);
                        } else if let Term::StrConst(s) = t {
                            self.add_str(*v, rel.flip(), s);
                        }
                    }
                    _ => {}
                }
            }
            // LIKE atoms and nested connectives carry no interval facts.
            // (A negated And/Or is a disjunction — also opaque here.)
            Formula::Atom(Atom::Like(..)) | Formula::Or(_) => {}
            Formula::And(cs) => {
                if !negated {
                    for c in cs {
                        self.add_conjunct(c, false);
                    }
                }
            }
        }
    }
}

/// True iff `f ∧ ctx[0] ∧ …` is refuted by top-level interval facts alone.
///
/// Conservative and sound for `Unsat`: `false` only means this prescreen
/// could not decide — never that the conjunction is satisfiable.
pub fn conjunction_unsat(f: &Formula, ctx: &[Formula]) -> bool {
    let mut parts: Vec<&Formula> = Vec::with_capacity(1 + ctx.len());
    parts.push(f);
    parts.extend(ctx.iter());
    conjunction_unsat_parts(&parts)
}

/// [`conjunction_unsat`] over an already-assembled part list — the shape
/// the oracle's memoized lowering produces (shared `Arc` subtrees instead
/// of one owned conjunction).
pub fn conjunction_unsat_parts(parts: &[&Formula]) -> bool {
    let mut env = Env::default();
    for p in parts {
        if env.contradiction {
            return true;
        }
        env.add_conjunct(p, false);
    }
    env.contradiction
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> Term {
        Term::Var(VarId(i))
    }

    fn cmp(l: Term, rel: Rel, r: Term) -> Formula {
        Formula::cmp(l, rel, r)
    }

    #[test]
    fn interval_contradiction_is_refuted() {
        let f = Formula::and(vec![
            cmp(v(0), Rel::Gt, Term::IntConst(5)),
            cmp(v(0), Rel::Lt, Term::IntConst(3)),
        ]);
        assert!(conjunction_unsat(&f, &[]));
    }

    #[test]
    fn integer_tightening_applies() {
        // x > 4 ∧ x < 6 has the single model x = 5 — satisfiable.
        let sat = Formula::and(vec![
            cmp(v(0), Rel::Gt, Term::IntConst(4)),
            cmp(v(0), Rel::Lt, Term::IntConst(6)),
        ]);
        assert!(!conjunction_unsat(&sat, &[]));
        // x > 4 ∧ x < 5 has none over the integers.
        let unsat = Formula::and(vec![
            cmp(v(0), Rel::Gt, Term::IntConst(4)),
            cmp(v(0), Rel::Lt, Term::IntConst(5)),
        ]);
        assert!(conjunction_unsat(&unsat, &[]));
    }

    #[test]
    fn string_equalities_conflict() {
        let f = Formula::and(vec![
            cmp(v(0), Rel::Eq, Term::StrConst("a".into())),
            cmp(v(0), Rel::Eq, Term::StrConst("b".into())),
        ]);
        assert!(conjunction_unsat(&f, &[]));
        let f = Formula::and(vec![
            cmp(v(0), Rel::Eq, Term::StrConst("a".into())),
            Formula::not(cmp(v(0), Rel::Eq, Term::StrConst("a".into()))),
        ]);
        assert!(conjunction_unsat(&f, &[]));
    }

    #[test]
    fn context_formulas_participate() {
        let f = cmp(v(0), Rel::Ge, Term::IntConst(10));
        let ctx = [cmp(v(0), Rel::Le, Term::IntConst(3))];
        assert!(conjunction_unsat(&f, &ctx));
    }

    #[test]
    fn opaque_shapes_never_decide() {
        // A disjunction and a LIKE atom carry no facts.
        let f = Formula::or(vec![
            cmp(v(0), Rel::Gt, Term::IntConst(5)),
            cmp(v(0), Rel::Lt, Term::IntConst(3)),
        ]);
        assert!(!conjunction_unsat(&f, &[]));
        let like = Formula::Atom(Atom::Like(v(1), "x%".into()));
        assert!(!conjunction_unsat(&like, &[]));
        // Different variables never conflict.
        let f = Formula::and(vec![
            cmp(v(0), Rel::Gt, Term::IntConst(5)),
            cmp(v(1), Rel::Lt, Term::IntConst(3)),
        ]);
        assert!(!conjunction_unsat(&f, &[]));
    }

    #[test]
    fn trivial_constants_fold() {
        assert!(conjunction_unsat(&cmp(Term::IntConst(1), Rel::Gt, Term::IntConst(2)), &[]));
        assert!(conjunction_unsat(&cmp(v(0), Rel::Ne, v(0)), &[]));
        assert!(!conjunction_unsat(&cmp(v(0), Rel::Eq, v(0)), &[]));
        assert!(conjunction_unsat(&Formula::False, &[]));
        assert!(!conjunction_unsat(&Formula::True, &[]));
    }
}

//! String theory: equalities, disequalities and LIKE patterns over string
//! variables and constants.
//!
//! The decision procedure is witness-based: it builds equivalence classes
//! with a union-find, checks constant conflicts, and then constructs a
//! concrete string for every class that satisfies all attached patterns
//! and differs from every disequal class. `Unsat` is only reported on a
//! definitive conflict; if witness search fails the result is `Unknown`
//! (sound, mirroring Z3's incomplete string reasoning).

use crate::pattern;
use std::collections::BTreeMap;

/// A string operand: a variable (by dense local index) or a constant.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum StrOperand {
    Var(usize),
    Const(String),
}

/// String-theory constraints over operands.
#[derive(Debug, Clone)]
pub enum StrConstraint {
    Eq(StrOperand, StrOperand),
    Ne(StrOperand, StrOperand),
    Like { operand: StrOperand, pattern: String, positive: bool },
}

/// Outcome of the string check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StrResult {
    /// Assignment for each variable index.
    Sat(BTreeMap<usize, String>),
    Unsat,
    Unknown,
}

struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind { parent: (0..n).collect() }
    }

    fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra] = rb;
        }
    }
}

/// Decide a conjunction of string constraints over `num_vars` variables.
pub fn check(num_vars: usize, constraints: &[StrConstraint]) -> StrResult {
    // Node ids: 0..num_vars are variables; constants are appended.
    let mut const_ids: BTreeMap<String, usize> = BTreeMap::new();
    let mut consts: Vec<String> = Vec::new();
    let mut id_of = |op: &StrOperand, consts: &mut Vec<String>| -> usize {
        match op {
            StrOperand::Var(i) => *i,
            StrOperand::Const(s) => *const_ids.entry(s.clone()).or_insert_with(|| {
                consts.push(s.clone());
                num_vars + consts.len() - 1
            }),
        }
    };

    // Materialize ids first so the union-find can be sized.
    let mut materialized: Vec<(usize, usize, u8, String)> = Vec::new(); // (a, b, kind, pattern)
    // kind: 0 = eq, 1 = ne, 2 = like+, 3 = like-
    for c in constraints {
        match c {
            StrConstraint::Eq(a, b) => {
                let (ia, ib) = (id_of(a, &mut consts), id_of(b, &mut consts));
                materialized.push((ia, ib, 0, String::new()));
            }
            StrConstraint::Ne(a, b) => {
                let (ia, ib) = (id_of(a, &mut consts), id_of(b, &mut consts));
                materialized.push((ia, ib, 1, String::new()));
            }
            StrConstraint::Like { operand, pattern, positive } => {
                let ia = id_of(operand, &mut consts);
                materialized.push((ia, ia, if *positive { 2 } else { 3 }, pattern.clone()));
            }
        }
    }
    let n = num_vars + consts.len();
    let mut uf = UnionFind::new(n);
    for (a, b, kind, _) in &materialized {
        if *kind == 0 {
            uf.union(*a, *b);
        }
    }

    // Class data.
    let mut class_const: BTreeMap<usize, String> = BTreeMap::new();
    for (ci, s) in consts.iter().enumerate() {
        let root = uf.find(num_vars + ci);
        if let Some(existing) = class_const.get(&root) {
            if existing != s {
                return StrResult::Unsat; // two distinct constants equated
            }
        } else {
            class_const.insert(root, s.clone());
        }
    }
    let mut pos_patterns: BTreeMap<usize, Vec<String>> = BTreeMap::new();
    let mut neg_patterns: BTreeMap<usize, Vec<String>> = BTreeMap::new();
    let mut diseqs: Vec<(usize, usize)> = Vec::new();
    for (a, b, kind, pat) in &materialized {
        match kind {
            1 => {
                let (ra, rb) = (uf.find(*a), uf.find(*b));
                if ra == rb {
                    return StrResult::Unsat; // x ≠ x
                }
                diseqs.push((ra, rb));
            }
            2 => pos_patterns.entry(uf.find(*a)).or_default().push(pat.clone()),
            3 => neg_patterns.entry(uf.find(*a)).or_default().push(pat.clone()),
            _ => {}
        }
    }

    // Constant-vs-constant disequalities are satisfied by construction
    // (distinct constants are distinct nodes); check pattern constraints on
    // constant classes.
    for (root, value) in &class_const {
        for p in pos_patterns.get(root).into_iter().flatten() {
            if !pattern::like_match(value, p) {
                return StrResult::Unsat;
            }
        }
        for p in neg_patterns.get(root).into_iter().flatten() {
            if pattern::like_match(value, p) {
                return StrResult::Unsat;
            }
        }
    }

    // Assign witnesses to non-constant classes.
    let mut assignment: BTreeMap<usize, String> = class_const.clone(); // root → value
    let mut unknown = false;
    let mut fresh_counter = 0usize;
    // Deterministic order over variable class roots.
    let mut roots: Vec<usize> = (0..num_vars).map(|v| uf.find(v)).collect();
    roots.sort_unstable();
    roots.dedup();
    for root in roots {
        if assignment.contains_key(&root) {
            continue;
        }
        let pos: Vec<&str> =
            pos_patterns.get(&root).into_iter().flatten().map(String::as_str).collect();
        let negs: Vec<&str> =
            neg_patterns.get(&root).into_iter().flatten().map(String::as_str).collect();
        // Values this class must avoid: anything already assigned to a
        // class it is disequal to (we conservatively avoid all assigned
        // values — cannot cause a false Unsat because failure here yields
        // Unknown, never Unsat).
        let taken: Vec<&String> = assignment.values().collect();
        let candidates: Vec<String> = if pos.is_empty() {
            // Unconstrained: generate fresh strings until distinct.
            let mut out = Vec::new();
            while out.len() < taken.len() + negs.len() + 2 {
                out.push(format!("\u{03BE}{fresh_counter}")); // ξ0, ξ1, ...
                fresh_counter += 1;
            }
            out
        } else {
            let ws = pattern::intersection_witnesses(&pos, taken.len() + negs.len() + 4);
            if ws.is_empty() {
                // Positive patterns definitively contradict each other.
                return StrResult::Unsat;
            }
            ws
        };
        let chosen = candidates.into_iter().find(|w| {
            !taken.contains(&w) && negs.iter().all(|n| !pattern::like_match(w, n))
        });
        match chosen {
            Some(w) => {
                assignment.insert(root, w);
            }
            None => {
                unknown = true;
                // Leave unassigned; diseq check below may still find a
                // conflict elsewhere, but we can no longer claim Sat.
            }
        }
    }

    if unknown {
        return StrResult::Unknown;
    }

    // Final diseq verification (also covers const-vs-var).
    for (ra, rb) in &diseqs {
        let (va, vb) = (assignment.get(ra), assignment.get(rb));
        if let (Some(va), Some(vb)) = (va, vb) {
            if va == vb {
                // Should not happen given avoidance; be safe.
                return StrResult::Unknown;
            }
        }
    }

    let model = (0..num_vars)
        .map(|v| {
            let root = uf.find(v);
            (v, assignment.get(&root).cloned().unwrap_or_default())
        })
        .collect();
    StrResult::Sat(model)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn var(i: usize) -> StrOperand {
        StrOperand::Var(i)
    }
    fn cst(s: &str) -> StrOperand {
        StrOperand::Const(s.to_string())
    }

    #[test]
    fn equality_chains_and_constant_conflict() {
        // x = 'Amy', y = x, y = 'Bob' → unsat
        let r = check(
            2,
            &[
                StrConstraint::Eq(var(0), cst("Amy")),
                StrConstraint::Eq(var(1), var(0)),
                StrConstraint::Eq(var(1), cst("Bob")),
            ],
        );
        assert_eq!(r, StrResult::Unsat);
        // Without the conflict: sat with x = y = 'Amy'.
        let r2 = check(
            2,
            &[StrConstraint::Eq(var(0), cst("Amy")), StrConstraint::Eq(var(1), var(0))],
        );
        match r2 {
            StrResult::Sat(m) => {
                assert_eq!(m[&0], "Amy");
                assert_eq!(m[&1], "Amy");
            }
            other => panic!("expected sat, got {other:?}"),
        }
    }

    #[test]
    fn disequality_of_same_class_unsat() {
        let r = check(
            2,
            &[StrConstraint::Eq(var(0), var(1)), StrConstraint::Ne(var(0), var(1))],
        );
        assert_eq!(r, StrResult::Unsat);
    }

    #[test]
    fn disequalities_get_distinct_witnesses() {
        let r = check(3, &[StrConstraint::Ne(var(0), var(1)), StrConstraint::Ne(var(1), var(2))]);
        match r {
            StrResult::Sat(m) => {
                assert_ne!(m[&0], m[&1]);
                assert_ne!(m[&1], m[&2]);
            }
            other => panic!("expected sat, got {other:?}"),
        }
    }

    #[test]
    fn like_on_constant() {
        let r = check(
            1,
            &[
                StrConstraint::Eq(var(0), cst("Everest")),
                StrConstraint::Like { operand: var(0), pattern: "Eve%".into(), positive: true },
            ],
        );
        assert!(matches!(r, StrResult::Sat(_)));
        let r2 = check(
            1,
            &[
                StrConstraint::Eq(var(0), cst("Bob")),
                StrConstraint::Like { operand: var(0), pattern: "Eve%".into(), positive: true },
            ],
        );
        assert_eq!(r2, StrResult::Unsat);
    }

    #[test]
    fn contradictory_patterns_unsat() {
        let r = check(
            1,
            &[
                StrConstraint::Like { operand: var(0), pattern: "A%".into(), positive: true },
                StrConstraint::Like { operand: var(0), pattern: "B%".into(), positive: true },
            ],
        );
        assert_eq!(r, StrResult::Unsat);
    }

    #[test]
    fn positive_and_negative_patterns() {
        // x LIKE 'A%' and x NOT LIKE 'AB%' → witness like "A" works.
        let r = check(
            1,
            &[
                StrConstraint::Like { operand: var(0), pattern: "A%".into(), positive: true },
                StrConstraint::Like { operand: var(0), pattern: "AB%".into(), positive: false },
            ],
        );
        match r {
            StrResult::Sat(m) => {
                assert!(pattern::like_match(&m[&0], "A%"));
                assert!(!pattern::like_match(&m[&0], "AB%"));
            }
            other => panic!("expected sat, got {other:?}"),
        }
    }

    #[test]
    fn like_and_not_like_same_pattern() {
        let r = check(
            1,
            &[
                StrConstraint::Like { operand: var(0), pattern: "A_".into(), positive: true },
                StrConstraint::Like { operand: var(0), pattern: "A_".into(), positive: false },
            ],
        );
        // Definitively unsat... but witness search reports Unknown here
        // (every witness of the positive matches the negative). Either
        // Unsat or Unknown is sound; Sat would be a bug.
        assert!(!matches!(r, StrResult::Sat(_)));
    }

    #[test]
    fn var_ne_constant() {
        let r = check(
            1,
            &[
                StrConstraint::Ne(var(0), cst("Amy")),
                StrConstraint::Like { operand: var(0), pattern: "Am_".into(), positive: true },
            ],
        );
        match r {
            StrResult::Sat(m) => {
                assert_ne!(m[&0], "Amy");
                assert!(pattern::like_match(&m[&0], "Am_"));
            }
            other => panic!("expected sat, got {other:?}"),
        }
    }
}

//! # qrhint-smt
//!
//! A from-scratch DPLL(T)-lite SMT solver covering exactly the logic
//! Qr-Hint (SIGMOD 2024) exercises through Z3 in the original system:
//!
//! * quantifier-free formulas over two sorts (INT, VARCHAR, all NOT NULL);
//! * linear integer arithmetic (comparisons, +, −, ×/÷ by constants) via
//!   Fourier–Motzkin elimination with integer tightening and integer model
//!   reconstruction ([`lia`]);
//! * equalities/disequalities and SQL `LIKE` patterns over strings via a
//!   witness-constructing union-find theory ([`strings`], [`pattern`]);
//! * non-linear escape hatch: non-affine terms are abstracted as opaque
//!   congruence variables and every `Sat` verdict is validated against the
//!   original semantics ([`model`]).
//!
//! ## Soundness contract (paper §3)
//!
//! The three primitives `IsSatisfiable`, `IsUnSatisfiable` and `IsEquiv`
//! return three-valued answers. Definitive answers are never wrong:
//! `Unsat` is backed by a theory-level refutation of every Boolean branch
//! and `Sat` by a concrete model that the original formula evaluates true
//! under. All Qr-Hint algorithms act only on definitive answers, so hint
//! *correctness* never depends on solver completeness — only hint
//! *optimality* does, exactly as in the paper.

#![forbid(unsafe_code)]

pub mod conj;
pub mod formula;
pub mod intern;
pub mod interval;
pub mod lia;
pub mod model;
pub mod pattern;
pub mod solver;
pub mod strings;
pub mod term;
pub mod theory;

pub use formula::{Atom, Formula, Rel};
pub use intern::{FormulaId, Interner, TermId};
pub use model::{Model, Value};
pub use solver::{AssumptionPrefix, CheckOutcome, SolveStats, Solver};
pub use theory::TheoryState;
pub use term::{LinExpr, Sort, Term, VarId, VarPool};

/// Three-valued satisfiability verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SatResult {
    Sat,
    Unsat,
    Unknown,
}

/// Three-valued Boolean used by the solver's high-level predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TriBool {
    True,
    False,
    Unknown,
}

impl TriBool {
    /// Definitively true?
    pub fn is_true(self) -> bool {
        self == TriBool::True
    }

    /// Definitively false?
    pub fn is_false(self) -> bool {
        self == TriBool::False
    }

    pub fn negate(self) -> TriBool {
        match self {
            TriBool::True => TriBool::False,
            TriBool::False => TriBool::True,
            TriBool::Unknown => TriBool::Unknown,
        }
    }

    /// Kleene conjunction.
    pub fn and(self, other: TriBool) -> TriBool {
        match (self, other) {
            (TriBool::False, _) | (_, TriBool::False) => TriBool::False,
            (TriBool::True, TriBool::True) => TriBool::True,
            _ => TriBool::Unknown,
        }
    }

    /// Kleene disjunction.
    pub fn or(self, other: TriBool) -> TriBool {
        match (self, other) {
            (TriBool::True, _) | (_, TriBool::True) => TriBool::True,
            (TriBool::False, TriBool::False) => TriBool::False,
            _ => TriBool::Unknown,
        }
    }

    pub fn from_bool(b: bool) -> TriBool {
        if b {
            TriBool::True
        } else {
            TriBool::False
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tribool_algebra() {
        use TriBool::*;
        assert_eq!(True.and(Unknown), Unknown);
        assert_eq!(False.and(Unknown), False);
        assert_eq!(True.or(Unknown), True);
        assert_eq!(False.or(Unknown), Unknown);
        assert_eq!(Unknown.negate(), Unknown);
        assert!(TriBool::from_bool(true).is_true());
        assert!(TriBool::from_bool(false).is_false());
    }
}

//! Quantifier-free formulas and their atoms — the *tree* representation.
//!
//! Two representations coexist in this crate:
//!
//! * the boxed trees here ([`Formula`], [`crate::term::Term`]), which the
//!   solver consumes and tests construct directly; and
//! * the hash-consed arena ([`crate::intern::Interner`] with
//!   [`crate::intern::FormulaId`] ids), which the oracle layer builds
//!   formulas in: structurally equal subformulas intern to one node, so
//!   equality/hashing are integer compares and verdict caches key on ids
//!   instead of walking trees.
//!
//! The smart constructors below ([`Formula::and`], [`Formula::or`],
//! [`Formula::not`]) define the canonical simplified shape; the interner's
//! constructors replicate them node-for-node, so a tree extracted from the
//! arena is exactly what the constructors here would have produced.

use crate::term::{Term, VarId};
use std::fmt;

/// Comparison relations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rel {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl Rel {
    /// Logical negation.
    pub fn negate(self) -> Rel {
        match self {
            Rel::Eq => Rel::Ne,
            Rel::Ne => Rel::Eq,
            Rel::Lt => Rel::Ge,
            Rel::Le => Rel::Gt,
            Rel::Gt => Rel::Le,
            Rel::Ge => Rel::Lt,
        }
    }

    /// Relation with the operands swapped.
    pub fn flip(self) -> Rel {
        match self {
            Rel::Eq => Rel::Eq,
            Rel::Ne => Rel::Ne,
            Rel::Lt => Rel::Gt,
            Rel::Le => Rel::Ge,
            Rel::Gt => Rel::Lt,
            Rel::Ge => Rel::Le,
        }
    }

    pub fn eval<T: PartialOrd>(self, l: &T, r: &T) -> bool {
        match self {
            Rel::Eq => l == r,
            Rel::Ne => l != r,
            Rel::Lt => l < r,
            Rel::Le => l <= r,
            Rel::Gt => l > r,
            Rel::Ge => l >= r,
        }
    }
}

impl fmt::Display for Rel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Rel::Eq => "=",
            Rel::Ne => "!=",
            Rel::Lt => "<",
            Rel::Le => "<=",
            Rel::Gt => ">",
            Rel::Ge => ">=",
        };
        write!(f, "{s}")
    }
}

/// Atomic formulas.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Atom {
    /// `lhs rel rhs` over terms (both int-sorted or both str-sorted).
    Cmp(Term, Rel, Term),
    /// `term LIKE 'pattern'` with SQL `%`/`_` wildcards. The negated form
    /// is a negative literal over this atom.
    Like(Term, String),
}

impl Atom {
    pub fn collect_vars(&self, out: &mut Vec<VarId>) {
        match self {
            Atom::Cmp(l, _, r) => {
                l.collect_vars(out);
                r.collect_vars(out);
            }
            Atom::Like(t, _) => t.collect_vars(out),
        }
    }

    /// Canonical form used for atom deduplication in the Boolean skeleton:
    /// orders comparison operands so `a < b` and `b > a` become one atom.
    pub fn canonical(&self) -> (Atom, bool) {
        match self {
            Atom::Cmp(l, rel, r) => {
                // Flip so that lhs <= rhs structurally; polarity unchanged
                // (flip keeps logical meaning).
                if l > r {
                    (Atom::Cmp(r.clone(), rel.flip(), l.clone()), false)
                } else {
                    (self.clone(), false)
                }
            }
            Atom::Like(..) => (self.clone(), false),
        }
    }
}

/// Quantifier-free formulas.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Formula {
    True,
    False,
    Atom(Atom),
    And(Vec<Formula>),
    Or(Vec<Formula>),
    Not(Box<Formula>),
}

#[allow(clippy::should_implement_trait)] // `not` is the smart-negation constructor
impl Formula {
    pub fn atom(a: Atom) -> Formula {
        Formula::Atom(a)
    }

    pub fn cmp(l: Term, rel: Rel, r: Term) -> Formula {
        Formula::Atom(Atom::Cmp(l, rel, r))
    }

    /// Smart conjunction (flattens, short-circuits constants).
    pub fn and(children: Vec<Formula>) -> Formula {
        let mut flat = Vec::with_capacity(children.len());
        for c in children {
            match c {
                Formula::True => {}
                Formula::False => return Formula::False,
                Formula::And(g) => flat.extend(g),
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => Formula::True,
            1 => flat.pop().unwrap(),
            _ => Formula::And(flat),
        }
    }

    /// Smart disjunction.
    pub fn or(children: Vec<Formula>) -> Formula {
        let mut flat = Vec::with_capacity(children.len());
        for c in children {
            match c {
                Formula::False => {}
                Formula::True => return Formula::True,
                Formula::Or(g) => flat.extend(g),
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => Formula::False,
            1 => flat.pop().unwrap(),
            _ => Formula::Or(flat),
        }
    }

    /// Smart negation.
    pub fn not(f: Formula) -> Formula {
        match f {
            Formula::True => Formula::False,
            Formula::False => Formula::True,
            Formula::Not(inner) => *inner,
            other => Formula::Not(Box::new(other)),
        }
    }

    /// Collect distinct atoms in first-occurrence order (canonicalized).
    pub fn collect_atoms(&self, out: &mut Vec<Atom>) {
        match self {
            Formula::True | Formula::False => {}
            Formula::Atom(a) => {
                let (c, _) = a.canonical();
                if !out.contains(&c) {
                    out.push(c);
                }
            }
            Formula::And(cs) | Formula::Or(cs) => cs.iter().for_each(|c| c.collect_atoms(out)),
            Formula::Not(c) => c.collect_atoms(out),
        }
    }

    pub fn collect_vars(&self, out: &mut Vec<VarId>) {
        match self {
            Formula::True | Formula::False => {}
            Formula::Atom(a) => a.collect_vars(out),
            Formula::And(cs) | Formula::Or(cs) => cs.iter().for_each(|c| c.collect_vars(out)),
            Formula::Not(c) => c.collect_vars(out),
        }
    }

    /// Three-valued evaluation under a partial atom assignment
    /// (`None` = unassigned). Used to prune the skeleton search.
    pub fn eval3(&self, assign: &impl Fn(&Atom) -> Option<bool>) -> Option<bool> {
        match self {
            Formula::True => Some(true),
            Formula::False => Some(false),
            Formula::Atom(a) => {
                let (c, _) = a.canonical();
                assign(&c)
            }
            Formula::And(cs) => {
                let mut any_unknown = false;
                for c in cs {
                    match c.eval3(assign) {
                        Some(false) => return Some(false),
                        None => any_unknown = true,
                        Some(true) => {}
                    }
                }
                if any_unknown {
                    None
                } else {
                    Some(true)
                }
            }
            Formula::Or(cs) => {
                let mut any_unknown = false;
                for c in cs {
                    match c.eval3(assign) {
                        Some(true) => return Some(true),
                        None => any_unknown = true,
                        Some(false) => {}
                    }
                }
                if any_unknown {
                    None
                } else {
                    Some(false)
                }
            }
            Formula::Not(c) => c.eval3(assign).map(|b| !b),
        }
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::True => write!(f, "true"),
            Formula::False => write!(f, "false"),
            Formula::Atom(Atom::Cmp(l, rel, r)) => write!(f, "({l:?} {rel} {r:?})"),
            Formula::Atom(Atom::Like(t, p)) => write!(f, "({t:?} LIKE '{p}')"),
            Formula::And(cs) => {
                write!(f, "(and")?;
                for c in cs {
                    write!(f, " {c}")?;
                }
                write!(f, ")")
            }
            Formula::Or(cs) => {
                write!(f, "(or")?;
                for c in cs {
                    write!(f, " {c}")?;
                }
                write!(f, ")")
            }
            Formula::Not(c) => write!(f, "(not {c})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::{Sort, VarPool};

    #[test]
    fn canonical_merges_flipped_atoms() {
        let mut p = VarPool::new();
        let a = Term::var(p.fresh("a", Sort::Int));
        let b = Term::var(p.fresh("b", Sort::Int));
        let f = Formula::and(vec![
            Formula::cmp(a.clone(), Rel::Lt, b.clone()),
            Formula::cmp(b.clone(), Rel::Gt, a.clone()),
        ]);
        let mut atoms = vec![];
        f.collect_atoms(&mut atoms);
        assert_eq!(atoms.len(), 1, "a<b and b>a should canonicalize to one atom");
    }

    #[test]
    fn smart_constructors() {
        assert_eq!(Formula::and(vec![]), Formula::True);
        assert_eq!(Formula::or(vec![]), Formula::False);
        assert_eq!(Formula::not(Formula::True), Formula::False);
        let mut p = VarPool::new();
        let a = Term::var(p.fresh("a", Sort::Int));
        let atom = Formula::cmp(a, Rel::Eq, Term::IntConst(1));
        assert_eq!(
            Formula::and(vec![Formula::True, atom.clone()]),
            atom.clone()
        );
        assert_eq!(Formula::or(vec![Formula::True, atom.clone()]), Formula::True);
        assert_eq!(Formula::not(Formula::not(atom.clone())), atom);
    }

    #[test]
    fn eval3_three_valued() {
        let mut p = VarPool::new();
        let a = Atom::Cmp(Term::var(p.fresh("a", Sort::Int)), Rel::Eq, Term::IntConst(1));
        let b = Atom::Cmp(Term::var(p.fresh("b", Sort::Int)), Rel::Eq, Term::IntConst(2));
        let f = Formula::or(vec![Formula::atom(a.clone()), Formula::atom(b.clone())]);
        // b unknown, a true => true
        assert_eq!(
            f.eval3(&|x| if *x == a { Some(true) } else { None }),
            Some(true)
        );
        // a false, b unknown => unknown
        assert_eq!(f.eval3(&|x| if *x == a { Some(false) } else { None }), None);
        // both false => false
        assert_eq!(f.eval3(&|_| Some(false)), Some(false));
    }
}

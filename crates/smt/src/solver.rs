//! The top-level solver: Boolean-skeleton enumeration over canonicalized
//! atoms with three-valued pruning and per-branch theory checks.
//!
//! This implements the three primitives of §3 of the paper —
//! `IsSatisfiable`, `IsUnSatisfiable` and `IsEquiv` — with the same
//! soundness contract as the paper's use of Z3: definitive answers are
//! never wrong; `Unknown` is possible and callers act only on definitive
//! answers.
//!
//! The solver consumes the *tree* representation. Callers that work in
//! interned ids ([`crate::intern`]) extract trees only when they are
//! about to pay for a real check (their verdict caches answer everything
//! else), so the per-check tree cost is dominated by the search itself.

use std::sync::Arc;

use crate::conj::{check_conjunction, Lit};
use crate::formula::{Atom, Formula};
use crate::model::Model;
use crate::term::VarPool;
use crate::theory::TheoryState;
use crate::{SatResult, TriBool};

/// Solver configuration.
#[derive(Debug, Clone)]
pub struct Solver {
    /// Maximum number of distinct atoms before giving up with `Unknown`.
    pub max_atoms: usize,
    /// Run an intermediate theory check every this many assigned atoms
    /// (prunes contradictory partial assignments early).
    pub partial_check_stride: usize,
    /// Hard cap on theory-checked leaves per `check` call.
    pub max_leaves: usize,
    /// Maintain a push/pop [`TheoryState`] along the branch search
    /// instead of retranslating the whole literal prefix at every leaf
    /// and pruning stride. Definitive verdicts and models agree with the
    /// from-scratch path; the incremental path additionally prunes
    /// branches the quick conflict detector refutes at push time.
    pub incremental: bool,
}

impl Default for Solver {
    fn default() -> Self {
        Solver {
            max_atoms: 20,
            partial_check_stride: 4,
            max_leaves: 1 << 20,
            incremental: true,
        }
    }
}

/// Counters describing the theory work one `check` call performed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolveStats {
    /// Literals run through theory translation. The incremental path
    /// translates each stack push once; the from-scratch path counts the
    /// whole prefix again at every full check, so this grows
    /// quadratically with branch depth there.
    pub theory_lits_translated: u64,
    /// Full string+LIA conjunction checks (leaves plus stride prunes).
    pub theory_full_checks: u64,
    /// Branches pruned by the quick conflict detector at push time.
    pub quick_conflicts: u64,
    /// Theory-checked leaves.
    pub leaves: u64,
}

impl SolveStats {
    pub fn add(&mut self, other: &SolveStats) {
        self.theory_lits_translated += other.theory_lits_translated;
        self.theory_full_checks += other.theory_full_checks;
        self.quick_conflicts += other.quick_conflicts;
        self.leaves += other.leaves;
    }
}

/// Outcome of a `check` call: verdict plus a validated model on `Sat`.
#[derive(Debug, Clone)]
pub struct CheckOutcome {
    pub result: SatResult,
    pub model: Option<Model>,
    pub stats: SolveStats,
}

impl CheckOutcome {
    fn unsat() -> Self {
        CheckOutcome { result: SatResult::Unsat, model: None, stats: SolveStats::default() }
    }

    fn unknown() -> Self {
        CheckOutcome { result: SatResult::Unknown, model: None, stats: SolveStats::default() }
    }
}

/// A context digested once by [`Solver::prepare_prefix`] and shared by a
/// batch of [`Solver::check_assuming`] calls: the parts themselves (for
/// defensive model validation), their canonical atoms, and their
/// abstracted skeletons. Per-candidate work is then limited to the one
/// formula pushed on top of the prefix.
#[derive(Debug, Clone)]
pub struct AssumptionPrefix {
    parts: Vec<Arc<Formula>>,
    atoms: Vec<Atom>,
    iforms: Vec<IForm>,
    has_false: bool,
    too_many_atoms: bool,
}

/// Formula abstracted over canonical atom indices: the hot structure the
/// skeleton search evaluates (avoids re-canonicalizing and re-comparing
/// atoms at every search node).
#[derive(Debug, Clone)]
enum IForm {
    True,
    False,
    Atom(usize),
    And(Vec<IForm>),
    Or(Vec<IForm>),
    Not(Box<IForm>),
}

fn abstract_formula(f: &Formula, atoms: &[Atom]) -> IForm {
    match f {
        Formula::True => IForm::True,
        Formula::False => IForm::False,
        Formula::Atom(a) => {
            let (c, _) = a.canonical();
            let idx = atoms.iter().position(|x| *x == c).expect("atom registered");
            IForm::Atom(idx)
        }
        Formula::And(cs) => IForm::And(cs.iter().map(|c| abstract_formula(c, atoms)).collect()),
        Formula::Or(cs) => IForm::Or(cs.iter().map(|c| abstract_formula(c, atoms)).collect()),
        Formula::Not(c) => IForm::Not(Box::new(abstract_formula(c, atoms))),
    }
}

fn eval3_idx(f: &IForm, assign: &[Option<bool>]) -> Option<bool> {
    match f {
        IForm::True => Some(true),
        IForm::False => Some(false),
        IForm::Atom(i) => assign[*i],
        IForm::And(cs) => {
            let mut unknown = false;
            for c in cs {
                match eval3_idx(c, assign) {
                    Some(false) => return Some(false),
                    None => unknown = true,
                    Some(true) => {}
                }
            }
            if unknown {
                None
            } else {
                Some(true)
            }
        }
        IForm::Or(cs) => {
            let mut unknown = false;
            for c in cs {
                match eval3_idx(c, assign) {
                    Some(true) => return Some(true),
                    None => unknown = true,
                    Some(false) => {}
                }
            }
            if unknown {
                None
            } else {
                Some(false)
            }
        }
        IForm::Not(c) => eval3_idx(c, assign).map(|b| !b),
    }
}

struct Search<'a> {
    solver: &'a Solver,
    /// Conjunction parts of the query (for defensive model validation).
    parts: &'a [&'a Formula],
    iform: &'a IForm,
    atoms: Vec<Atom>,
    assign: Vec<Option<bool>>,
    pool: &'a mut VarPool,
    /// Incremental assumption stack; `None` runs the from-scratch path.
    theory: Option<TheoryState>,
    stats: SolveStats,
    unknown_seen: bool,
    leaves: usize,
}

impl Search<'_> {
    fn literals(&self) -> Vec<Lit> {
        self.atoms
            .iter()
            .zip(&self.assign)
            .filter_map(|(a, v)| v.map(|b| (a.clone(), b)))
            .collect()
    }

    /// Full theory check of the currently assigned literals. The
    /// incremental stack holds exactly those literals in assignment
    /// order, so both arms decide the same conjunction.
    fn full_check(&mut self) -> (SatResult, Option<Model>) {
        self.stats.theory_full_checks += 1;
        match &self.theory {
            Some(th) => th.check_full(),
            None => {
                let lits = self.literals();
                self.stats.theory_lits_translated += lits.len() as u64;
                check_conjunction(&lits, self.pool)
            }
        }
    }

    /// Returns `Some(model)` when a satisfying, validated model is found.
    fn dfs(&mut self, depth: usize) -> Option<Model> {
        if self.leaves > self.solver.max_leaves {
            self.unknown_seen = true;
            return None;
        }
        // Three-valued evaluation under the current partial assignment.
        let value = eval3_idx(self.iform, &self.assign);
        match value {
            Some(false) => return None,
            Some(true) => {
                // Formula already true: theory-check the assigned literals.
                self.leaves += 1;
                self.stats.leaves += 1;
                let (r, m) = self.full_check();
                match r {
                    SatResult::Sat => {
                        let m = m.expect("Sat implies model");
                        // Defensive final validation on the whole formula.
                        if self.parts.iter().all(|p| m.eval_formula(p) == Some(true)) {
                            return Some(m);
                        }
                        self.unknown_seen = true;
                        return None;
                    }
                    SatResult::Unsat => return None,
                    SatResult::Unknown => {
                        self.unknown_seen = true;
                        return None;
                    }
                }
            }
            None => {}
        }
        // Periodic partial-conjunction pruning.
        if depth > 0 && depth.is_multiple_of(self.solver.partial_check_stride) {
            if let (SatResult::Unsat, _) = self.full_check() {
                return None;
            }
        }
        // Branch on the first unassigned atom.
        let next = self.assign.iter().position(Option::is_none);
        let Some(i) = next else {
            // Fully assigned but formula undetermined cannot happen.
            return None;
        };
        for b in [true, false] {
            self.assign[i] = Some(b);
            if let Some(th) = self.theory.as_mut() {
                self.stats.theory_lits_translated += 1;
                if th.push(self.atoms[i].clone(), b, self.pool) {
                    // Quick conflict: the stacked prefix is already
                    // unsatisfiable, so no leaf below can be Sat.
                    self.stats.quick_conflicts += 1;
                    th.pop(self.pool);
                    self.assign[i] = None;
                    continue;
                }
            }
            let found = self.dfs(depth + 1);
            if let Some(th) = self.theory.as_mut() {
                th.pop(self.pool);
            }
            self.assign[i] = None;
            if found.is_some() {
                return found;
            }
        }
        None
    }
}

impl Solver {
    pub fn new() -> Self {
        Solver::default()
    }

    /// Check satisfiability of `formula`; returns a validated model on
    /// `Sat`.
    pub fn check(&self, formula: &Formula, pool: &mut VarPool) -> CheckOutcome {
        self.check_parts(&[formula], pool)
    }

    /// Check satisfiability of the conjunction of `parts`. Equivalent to
    /// `check(&Formula::and(parts))` — any `False` part short-circuits to
    /// `Unsat`, atoms are collected across parts in order — but without
    /// cloning the parts into a single tree.
    pub fn check_parts(&self, parts: &[&Formula], pool: &mut VarPool) -> CheckOutcome {
        if parts.iter().any(|p| matches!(p, Formula::False)) {
            return CheckOutcome::unsat();
        }
        let mut atoms = Vec::new();
        for p in parts {
            p.collect_atoms(&mut atoms);
        }
        if atoms.len() > self.max_atoms {
            return CheckOutcome::unknown();
        }
        let iform = IForm::And(parts.iter().map(|p| abstract_formula(p, &atoms)).collect());
        self.run(parts, &iform, atoms, pool)
    }

    fn run(
        &self,
        parts: &[&Formula],
        iform: &IForm,
        atoms: Vec<Atom>,
        pool: &mut VarPool,
    ) -> CheckOutcome {
        let n = atoms.len();
        let mut search = Search {
            solver: self,
            parts,
            iform,
            atoms,
            assign: vec![None; n],
            pool,
            theory: self.incremental.then(TheoryState::new),
            stats: SolveStats::default(),
            unknown_seen: false,
            leaves: 0,
        };
        match search.dfs(0) {
            Some(m) => {
                CheckOutcome { result: SatResult::Sat, model: Some(m), stats: search.stats }
            }
            None => CheckOutcome {
                result: if search.unknown_seen { SatResult::Unknown } else { SatResult::Unsat },
                model: None,
                stats: search.stats,
            },
        }
    }

    /// Check satisfiability of `formula` under a context of assertions
    /// (the paper's `IsSatisfiable_C`).
    pub fn check_with_ctx(
        &self,
        formula: &Formula,
        ctx: &[Formula],
        pool: &mut VarPool,
    ) -> CheckOutcome {
        let mut parts: Vec<&Formula> = ctx.iter().collect();
        parts.push(formula);
        self.check_parts(&parts, pool)
    }

    /// Digest a context once so a batch of [`Solver::check_assuming`]
    /// calls shares its atom collection and skeleton abstraction instead
    /// of redoing both per candidate.
    pub fn prepare_prefix(&self, ctx: &[Arc<Formula>]) -> AssumptionPrefix {
        let has_false = ctx.iter().any(|p| matches!(p.as_ref(), Formula::False));
        let mut atoms = Vec::new();
        if !has_false {
            for p in ctx {
                p.collect_atoms(&mut atoms);
            }
        }
        let too_many_atoms = atoms.len() > self.max_atoms;
        let iforms = if has_false || too_many_atoms {
            Vec::new()
        } else {
            ctx.iter().map(|p| abstract_formula(p, &atoms)).collect()
        };
        AssumptionPrefix { parts: ctx.to_vec(), atoms, iforms, has_false, too_many_atoms }
    }

    /// `check_with_ctx` against a prepared prefix. Returns exactly what
    /// `check_with_ctx(formula, ctx, pool)` would: the context atoms are
    /// a stable prefix of the combined atom list, so the prepared
    /// skeletons' atom indices stay valid in the extended search.
    pub fn check_assuming(
        &self,
        prefix: &AssumptionPrefix,
        formula: &Formula,
        pool: &mut VarPool,
    ) -> CheckOutcome {
        if prefix.has_false || matches!(formula, Formula::False) {
            return CheckOutcome::unsat();
        }
        let mut atoms = prefix.atoms.clone();
        formula.collect_atoms(&mut atoms);
        if prefix.too_many_atoms || atoms.len() > self.max_atoms {
            return CheckOutcome::unknown();
        }
        let mut iforms = prefix.iforms.clone();
        iforms.push(abstract_formula(formula, &atoms));
        let iform = IForm::And(iforms);
        let mut parts: Vec<&Formula> = prefix.parts.iter().map(|a| a.as_ref()).collect();
        parts.push(formula);
        self.run(&parts, &iform, atoms, pool)
    }

    /// `IsSatisfiable` with tri-valued result.
    pub fn is_satisfiable(&self, f: &Formula, ctx: &[Formula], pool: &mut VarPool) -> TriBool {
        match self.check_with_ctx(f, ctx, pool).result {
            SatResult::Sat => TriBool::True,
            SatResult::Unsat => TriBool::False,
            SatResult::Unknown => TriBool::Unknown,
        }
    }

    /// `IsUnSatisfiable` with tri-valued result.
    pub fn is_unsatisfiable(&self, f: &Formula, ctx: &[Formula], pool: &mut VarPool) -> TriBool {
        self.is_satisfiable(f, ctx, pool).negate()
    }

    /// Does `f ⟹ g` hold under the context? (`Unsat(ctx ∧ f ∧ ¬g)`)
    pub fn implies(&self, f: &Formula, g: &Formula, ctx: &[Formula], pool: &mut VarPool) -> TriBool {
        let q = Formula::and(vec![f.clone(), Formula::not(g.clone())]);
        self.is_unsatisfiable(&q, ctx, pool)
    }

    /// `IsEquiv`: does `f ⇔ g` hold under the context?
    pub fn equiv(&self, f: &Formula, g: &Formula, ctx: &[Formula], pool: &mut VarPool) -> TriBool {
        match self.implies(f, g, ctx, pool) {
            TriBool::False => TriBool::False,
            fw => match self.implies(g, f, ctx, pool) {
                TriBool::False => TriBool::False,
                bw => fw.and(bw),
            },
        }
    }

    /// Is `f` a tautology under the context?
    pub fn is_valid(&self, f: &Formula, ctx: &[Formula], pool: &mut VarPool) -> TriBool {
        self.is_unsatisfiable(&Formula::not(f.clone()), ctx, pool)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formula::Rel;
    use crate::term::{Sort, Term};

    fn setup() -> (Solver, VarPool, Term, Term, Term, Term, Term) {
        let mut p = VarPool::new();
        let a = Term::var(p.fresh("a", Sort::Int));
        let b = Term::var(p.fresh("b", Sort::Int));
        let c = Term::var(p.fresh("c", Sort::Int));
        let d = Term::var(p.fresh("d", Sort::Int));
        let e = Term::var(p.fresh("e", Sort::Int));
        (Solver::new(), p, a, b, c, d, e)
    }

    #[test]
    fn tautology_and_contradiction() {
        let (s, mut p, a, ..) = setup();
        // a ≤ 5 ∨ a > 5 is valid.
        let f = Formula::or(vec![
            Formula::cmp(a.clone(), Rel::Le, Term::IntConst(5)),
            Formula::cmp(a.clone(), Rel::Gt, Term::IntConst(5)),
        ]);
        assert_eq!(s.is_valid(&f, &[], &mut p), TriBool::True);
        // a ≤ 5 ∧ a > 5 is unsat.
        let g = Formula::and(vec![
            Formula::cmp(a.clone(), Rel::Le, Term::IntConst(5)),
            Formula::cmp(a, Rel::Gt, Term::IntConst(5)),
        ]);
        assert_eq!(s.is_unsatisfiable(&g, &[], &mut p), TriBool::True);
    }

    #[test]
    fn equivalence_via_transitivity() {
        let (s, mut p, a, b, c, ..) = setup();
        // Under ctx a=b: (a=c) ⇔ (b=c).
        let ctx = vec![Formula::cmp(a.clone(), Rel::Eq, b.clone())];
        let f = Formula::cmp(a, Rel::Eq, c.clone());
        let g = Formula::cmp(b, Rel::Eq, c);
        assert_eq!(s.equiv(&f, &g, &ctx, &mut p), TriBool::True);
    }

    #[test]
    fn paper_example5_equivalence_check() {
        // P*: (A=C ∧ (E<5 ∨ D>10 ∨ D<7)) ∨ (A=B ∧ (D≠E ∨ D>F))
        // P : (A=C ∧ (D≠E ∨ D>F)) ∨ (A=C ∧ (D>11 ∨ D<7 ∨ E≤5))
        // These are NOT equivalent.
        let mut p = VarPool::new();
        let a = Term::var(p.fresh("A", Sort::Int));
        let b = Term::var(p.fresh("B", Sort::Int));
        let c = Term::var(p.fresh("C", Sort::Int));
        let d = Term::var(p.fresh("D", Sort::Int));
        let e = Term::var(p.fresh("E", Sort::Int));
        let ff = Term::var(p.fresh("F", Sort::Int));
        let s = Solver::new();
        let pstar = Formula::or(vec![
            Formula::and(vec![
                Formula::cmp(a.clone(), Rel::Eq, c.clone()),
                Formula::or(vec![
                    Formula::cmp(e.clone(), Rel::Lt, Term::IntConst(5)),
                    Formula::cmp(d.clone(), Rel::Gt, Term::IntConst(10)),
                    Formula::cmp(d.clone(), Rel::Lt, Term::IntConst(7)),
                ]),
            ]),
            Formula::and(vec![
                Formula::cmp(a.clone(), Rel::Eq, b.clone()),
                Formula::or(vec![
                    Formula::cmp(d.clone(), Rel::Ne, e.clone()),
                    Formula::cmp(d.clone(), Rel::Gt, ff.clone()),
                ]),
            ]),
        ]);
        let pwork = Formula::or(vec![
            Formula::and(vec![
                Formula::cmp(a.clone(), Rel::Eq, c.clone()),
                Formula::or(vec![
                    Formula::cmp(d.clone(), Rel::Ne, e.clone()),
                    Formula::cmp(d.clone(), Rel::Gt, ff.clone()),
                ]),
            ]),
            Formula::and(vec![
                Formula::cmp(a.clone(), Rel::Eq, c.clone()),
                Formula::or(vec![
                    Formula::cmp(d.clone(), Rel::Gt, Term::IntConst(11)),
                    Formula::cmp(d.clone(), Rel::Lt, Term::IntConst(7)),
                    Formula::cmp(e.clone(), Rel::Le, Term::IntConst(5)),
                ]),
            ]),
        ]);
        assert_eq!(s.equiv(&pstar, &pwork, &[], &mut p), TriBool::False);
        // And the fixed version (x4→A=B, x10→D>10, x12→E<5) IS equivalent.
        let pfixed = Formula::or(vec![
            Formula::and(vec![
                Formula::cmp(a.clone(), Rel::Eq, b.clone()),
                Formula::or(vec![
                    Formula::cmp(d.clone(), Rel::Ne, e.clone()),
                    Formula::cmp(d.clone(), Rel::Gt, ff.clone()),
                ]),
            ]),
            Formula::and(vec![
                Formula::cmp(a.clone(), Rel::Eq, c.clone()),
                Formula::or(vec![
                    Formula::cmp(d.clone(), Rel::Gt, Term::IntConst(10)),
                    Formula::cmp(d.clone(), Rel::Lt, Term::IntConst(7)),
                    Formula::cmp(e.clone(), Rel::Lt, Term::IntConst(5)),
                ]),
            ]),
        ]);
        assert_eq!(s.equiv(&pstar, &pfixed, &[], &mut p), TriBool::True);
    }

    #[test]
    fn inequality_tightening_example() {
        let (s, mut p, a, ..) = setup();
        // a > 100 implies a ≥ 101 over the integers (paper Example 3's
        // per-row core).
        let f = Formula::cmp(a.clone(), Rel::Gt, Term::IntConst(100));
        let g = Formula::cmp(a, Rel::Ge, Term::IntConst(101));
        assert_eq!(s.equiv(&f, &g, &[], &mut p), TriBool::True);
    }

    #[test]
    fn strings_and_like_in_full_solver() {
        let mut p = VarPool::new();
        let name = Term::var(p.fresh("name", Sort::Str));
        let s = Solver::new();
        // name = 'Amy' ∧ name NOT LIKE 'A%' is unsat.
        let f = Formula::and(vec![
            Formula::cmp(name.clone(), Rel::Eq, Term::StrConst("Amy".into())),
            Formula::not(Formula::atom(Atom::Like(name.clone(), "A%".into()))),
        ]);
        assert_eq!(s.is_unsatisfiable(&f, &[], &mut p), TriBool::True);
        // name LIKE 'A%' ∧ name ≠ 'Amy' is sat.
        let g = Formula::and(vec![
            Formula::atom(Atom::Like(name.clone(), "A%".into())),
            Formula::cmp(name, Rel::Ne, Term::StrConst("Amy".into())),
        ]);
        let out = s.check(&g, &mut p);
        assert_eq!(out.result, SatResult::Sat);
        assert_eq!(out.model.unwrap().eval_formula(&g), Some(true));
    }

    #[test]
    fn too_many_atoms_is_unknown() {
        let mut p = VarPool::new();
        let s = Solver { max_atoms: 3, ..Solver::default() };
        let mut parts = vec![];
        for i in 0..5 {
            let v = Term::var(p.fresh(&format!("x{i}"), Sort::Int));
            parts.push(Formula::cmp(v, Rel::Gt, Term::IntConst(i)));
        }
        let f = Formula::and(parts);
        assert_eq!(s.check(&f, &mut p).result, SatResult::Unknown);
    }

    #[test]
    fn tautological_where_condition() {
        // The Brass-et-al efficiency issue: A >= B OR A < B is a tautology
        // — Qr-Hint must see the equivalence with TRUE.
        let (s, mut p, a, b, ..) = setup();
        let f = Formula::or(vec![
            Formula::cmp(a.clone(), Rel::Ge, b.clone()),
            Formula::cmp(a, Rel::Lt, b),
        ]);
        assert_eq!(s.equiv(&f, &Formula::True, &[], &mut p), TriBool::True);
    }

    #[test]
    fn context_makes_condition_redundant() {
        let (s, mut p, a, b, ..) = setup();
        // Under ctx {a > 4}: (a > 4 ∧ b = 1) ⇔ (b = 1).
        let ctx = vec![Formula::cmp(a.clone(), Rel::Gt, Term::IntConst(4))];
        let f = Formula::and(vec![
            Formula::cmp(a, Rel::Gt, Term::IntConst(4)),
            Formula::cmp(b.clone(), Rel::Eq, Term::IntConst(1)),
        ]);
        let g = Formula::cmp(b, Rel::Eq, Term::IntConst(1));
        assert_eq!(s.equiv(&f, &g, &ctx, &mut p), TriBool::True);
    }
}

//! The top-level solver: Boolean-skeleton enumeration over canonicalized
//! atoms with three-valued pruning and per-branch theory checks.
//!
//! This implements the three primitives of §3 of the paper —
//! `IsSatisfiable`, `IsUnSatisfiable` and `IsEquiv` — with the same
//! soundness contract as the paper's use of Z3: definitive answers are
//! never wrong; `Unknown` is possible and callers act only on definitive
//! answers.
//!
//! The solver consumes the *tree* representation. Callers that work in
//! interned ids ([`crate::intern`]) extract trees only when they are
//! about to pay for a real check (their verdict caches answer everything
//! else), so the per-check tree cost is dominated by the search itself.

use crate::conj::{check_conjunction, Lit};
use crate::formula::{Atom, Formula};
use crate::model::Model;
use crate::term::VarPool;
use crate::{SatResult, TriBool};

/// Solver configuration.
#[derive(Debug, Clone)]
pub struct Solver {
    /// Maximum number of distinct atoms before giving up with `Unknown`.
    pub max_atoms: usize,
    /// Run an intermediate theory check every this many assigned atoms
    /// (prunes contradictory partial assignments early).
    pub partial_check_stride: usize,
    /// Hard cap on theory-checked leaves per `check` call.
    pub max_leaves: usize,
}

impl Default for Solver {
    fn default() -> Self {
        Solver { max_atoms: 20, partial_check_stride: 4, max_leaves: 1 << 20 }
    }
}

/// Outcome of a `check` call: verdict plus a validated model on `Sat`.
#[derive(Debug, Clone)]
pub struct CheckOutcome {
    pub result: SatResult,
    pub model: Option<Model>,
}

/// Formula abstracted over canonical atom indices: the hot structure the
/// skeleton search evaluates (avoids re-canonicalizing and re-comparing
/// atoms at every search node).
enum IForm {
    True,
    False,
    Atom(usize),
    And(Vec<IForm>),
    Or(Vec<IForm>),
    Not(Box<IForm>),
}

fn abstract_formula(f: &Formula, atoms: &[Atom]) -> IForm {
    match f {
        Formula::True => IForm::True,
        Formula::False => IForm::False,
        Formula::Atom(a) => {
            let (c, _) = a.canonical();
            let idx = atoms.iter().position(|x| *x == c).expect("atom registered");
            IForm::Atom(idx)
        }
        Formula::And(cs) => IForm::And(cs.iter().map(|c| abstract_formula(c, atoms)).collect()),
        Formula::Or(cs) => IForm::Or(cs.iter().map(|c| abstract_formula(c, atoms)).collect()),
        Formula::Not(c) => IForm::Not(Box::new(abstract_formula(c, atoms))),
    }
}

fn eval3_idx(f: &IForm, assign: &[Option<bool>]) -> Option<bool> {
    match f {
        IForm::True => Some(true),
        IForm::False => Some(false),
        IForm::Atom(i) => assign[*i],
        IForm::And(cs) => {
            let mut unknown = false;
            for c in cs {
                match eval3_idx(c, assign) {
                    Some(false) => return Some(false),
                    None => unknown = true,
                    Some(true) => {}
                }
            }
            if unknown {
                None
            } else {
                Some(true)
            }
        }
        IForm::Or(cs) => {
            let mut unknown = false;
            for c in cs {
                match eval3_idx(c, assign) {
                    Some(true) => return Some(true),
                    None => unknown = true,
                    Some(false) => {}
                }
            }
            if unknown {
                None
            } else {
                Some(false)
            }
        }
        IForm::Not(c) => eval3_idx(c, assign).map(|b| !b),
    }
}

struct Search<'a> {
    solver: &'a Solver,
    formula: &'a Formula,
    iform: &'a IForm,
    atoms: Vec<Atom>,
    assign: Vec<Option<bool>>,
    pool: &'a mut VarPool,
    unknown_seen: bool,
    leaves: usize,
}

impl Search<'_> {
    fn literals(&self) -> Vec<Lit> {
        self.atoms
            .iter()
            .zip(&self.assign)
            .filter_map(|(a, v)| v.map(|b| (a.clone(), b)))
            .collect()
    }

    /// Returns `Some(model)` when a satisfying, validated model is found.
    fn dfs(&mut self, depth: usize) -> Option<Model> {
        if self.leaves > self.solver.max_leaves {
            self.unknown_seen = true;
            return None;
        }
        // Three-valued evaluation under the current partial assignment.
        let value = eval3_idx(self.iform, &self.assign);
        match value {
            Some(false) => return None,
            Some(true) => {
                // Formula already true: theory-check the assigned literals.
                self.leaves += 1;
                let lits = self.literals();
                let (r, m) = check_conjunction(&lits, self.pool);
                match r {
                    SatResult::Sat => {
                        let m = m.expect("Sat implies model");
                        // Defensive final validation on the whole formula.
                        if m.eval_formula(self.formula) == Some(true) {
                            return Some(m);
                        }
                        self.unknown_seen = true;
                        return None;
                    }
                    SatResult::Unsat => return None,
                    SatResult::Unknown => {
                        self.unknown_seen = true;
                        return None;
                    }
                }
            }
            None => {}
        }
        // Periodic partial-conjunction pruning.
        if depth > 0 && depth.is_multiple_of(self.solver.partial_check_stride) {
            let lits = self.literals();
            if let (SatResult::Unsat, _) = check_conjunction(&lits, self.pool) {
                return None;
            }
        }
        // Branch on the first unassigned atom.
        let next = self.assign.iter().position(Option::is_none);
        let Some(i) = next else {
            // Fully assigned but formula undetermined cannot happen.
            return None;
        };
        for b in [true, false] {
            self.assign[i] = Some(b);
            if let Some(m) = self.dfs(depth + 1) {
                self.assign[i] = None;
                return Some(m);
            }
            self.assign[i] = None;
        }
        None
    }
}

impl Solver {
    pub fn new() -> Self {
        Solver::default()
    }

    /// Check satisfiability of `formula`; returns a validated model on
    /// `Sat`.
    pub fn check(&self, formula: &Formula, pool: &mut VarPool) -> CheckOutcome {
        let mut atoms = Vec::new();
        formula.collect_atoms(&mut atoms);
        if atoms.len() > self.max_atoms {
            return CheckOutcome { result: SatResult::Unknown, model: None };
        }
        let n = atoms.len();
        let iform = abstract_formula(formula, &atoms);
        let mut search = Search {
            solver: self,
            formula,
            iform: &iform,
            atoms,
            assign: vec![None; n],
            pool,
            unknown_seen: false,
            leaves: 0,
        };
        match search.dfs(0) {
            Some(m) => CheckOutcome { result: SatResult::Sat, model: Some(m) },
            None => {
                if search.unknown_seen {
                    CheckOutcome { result: SatResult::Unknown, model: None }
                } else {
                    CheckOutcome { result: SatResult::Unsat, model: None }
                }
            }
        }
    }

    /// Check satisfiability of `formula` under a context of assertions
    /// (the paper's `IsSatisfiable_C`).
    pub fn check_with_ctx(
        &self,
        formula: &Formula,
        ctx: &[Formula],
        pool: &mut VarPool,
    ) -> CheckOutcome {
        let mut parts: Vec<Formula> = ctx.to_vec();
        parts.push(formula.clone());
        self.check(&Formula::and(parts), pool)
    }

    /// `IsSatisfiable` with tri-valued result.
    pub fn is_satisfiable(&self, f: &Formula, ctx: &[Formula], pool: &mut VarPool) -> TriBool {
        match self.check_with_ctx(f, ctx, pool).result {
            SatResult::Sat => TriBool::True,
            SatResult::Unsat => TriBool::False,
            SatResult::Unknown => TriBool::Unknown,
        }
    }

    /// `IsUnSatisfiable` with tri-valued result.
    pub fn is_unsatisfiable(&self, f: &Formula, ctx: &[Formula], pool: &mut VarPool) -> TriBool {
        self.is_satisfiable(f, ctx, pool).negate()
    }

    /// Does `f ⟹ g` hold under the context? (`Unsat(ctx ∧ f ∧ ¬g)`)
    pub fn implies(&self, f: &Formula, g: &Formula, ctx: &[Formula], pool: &mut VarPool) -> TriBool {
        let q = Formula::and(vec![f.clone(), Formula::not(g.clone())]);
        self.is_unsatisfiable(&q, ctx, pool)
    }

    /// `IsEquiv`: does `f ⇔ g` hold under the context?
    pub fn equiv(&self, f: &Formula, g: &Formula, ctx: &[Formula], pool: &mut VarPool) -> TriBool {
        match self.implies(f, g, ctx, pool) {
            TriBool::False => TriBool::False,
            fw => match self.implies(g, f, ctx, pool) {
                TriBool::False => TriBool::False,
                bw => fw.and(bw),
            },
        }
    }

    /// Is `f` a tautology under the context?
    pub fn is_valid(&self, f: &Formula, ctx: &[Formula], pool: &mut VarPool) -> TriBool {
        self.is_unsatisfiable(&Formula::not(f.clone()), ctx, pool)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formula::Rel;
    use crate::term::{Sort, Term};

    fn setup() -> (Solver, VarPool, Term, Term, Term, Term, Term) {
        let mut p = VarPool::new();
        let a = Term::var(p.fresh("a", Sort::Int));
        let b = Term::var(p.fresh("b", Sort::Int));
        let c = Term::var(p.fresh("c", Sort::Int));
        let d = Term::var(p.fresh("d", Sort::Int));
        let e = Term::var(p.fresh("e", Sort::Int));
        (Solver::new(), p, a, b, c, d, e)
    }

    #[test]
    fn tautology_and_contradiction() {
        let (s, mut p, a, ..) = setup();
        // a ≤ 5 ∨ a > 5 is valid.
        let f = Formula::or(vec![
            Formula::cmp(a.clone(), Rel::Le, Term::IntConst(5)),
            Formula::cmp(a.clone(), Rel::Gt, Term::IntConst(5)),
        ]);
        assert_eq!(s.is_valid(&f, &[], &mut p), TriBool::True);
        // a ≤ 5 ∧ a > 5 is unsat.
        let g = Formula::and(vec![
            Formula::cmp(a.clone(), Rel::Le, Term::IntConst(5)),
            Formula::cmp(a, Rel::Gt, Term::IntConst(5)),
        ]);
        assert_eq!(s.is_unsatisfiable(&g, &[], &mut p), TriBool::True);
    }

    #[test]
    fn equivalence_via_transitivity() {
        let (s, mut p, a, b, c, ..) = setup();
        // Under ctx a=b: (a=c) ⇔ (b=c).
        let ctx = vec![Formula::cmp(a.clone(), Rel::Eq, b.clone())];
        let f = Formula::cmp(a, Rel::Eq, c.clone());
        let g = Formula::cmp(b, Rel::Eq, c);
        assert_eq!(s.equiv(&f, &g, &ctx, &mut p), TriBool::True);
    }

    #[test]
    fn paper_example5_equivalence_check() {
        // P*: (A=C ∧ (E<5 ∨ D>10 ∨ D<7)) ∨ (A=B ∧ (D≠E ∨ D>F))
        // P : (A=C ∧ (D≠E ∨ D>F)) ∨ (A=C ∧ (D>11 ∨ D<7 ∨ E≤5))
        // These are NOT equivalent.
        let mut p = VarPool::new();
        let a = Term::var(p.fresh("A", Sort::Int));
        let b = Term::var(p.fresh("B", Sort::Int));
        let c = Term::var(p.fresh("C", Sort::Int));
        let d = Term::var(p.fresh("D", Sort::Int));
        let e = Term::var(p.fresh("E", Sort::Int));
        let ff = Term::var(p.fresh("F", Sort::Int));
        let s = Solver::new();
        let pstar = Formula::or(vec![
            Formula::and(vec![
                Formula::cmp(a.clone(), Rel::Eq, c.clone()),
                Formula::or(vec![
                    Formula::cmp(e.clone(), Rel::Lt, Term::IntConst(5)),
                    Formula::cmp(d.clone(), Rel::Gt, Term::IntConst(10)),
                    Formula::cmp(d.clone(), Rel::Lt, Term::IntConst(7)),
                ]),
            ]),
            Formula::and(vec![
                Formula::cmp(a.clone(), Rel::Eq, b.clone()),
                Formula::or(vec![
                    Formula::cmp(d.clone(), Rel::Ne, e.clone()),
                    Formula::cmp(d.clone(), Rel::Gt, ff.clone()),
                ]),
            ]),
        ]);
        let pwork = Formula::or(vec![
            Formula::and(vec![
                Formula::cmp(a.clone(), Rel::Eq, c.clone()),
                Formula::or(vec![
                    Formula::cmp(d.clone(), Rel::Ne, e.clone()),
                    Formula::cmp(d.clone(), Rel::Gt, ff.clone()),
                ]),
            ]),
            Formula::and(vec![
                Formula::cmp(a.clone(), Rel::Eq, c.clone()),
                Formula::or(vec![
                    Formula::cmp(d.clone(), Rel::Gt, Term::IntConst(11)),
                    Formula::cmp(d.clone(), Rel::Lt, Term::IntConst(7)),
                    Formula::cmp(e.clone(), Rel::Le, Term::IntConst(5)),
                ]),
            ]),
        ]);
        assert_eq!(s.equiv(&pstar, &pwork, &[], &mut p), TriBool::False);
        // And the fixed version (x4→A=B, x10→D>10, x12→E<5) IS equivalent.
        let pfixed = Formula::or(vec![
            Formula::and(vec![
                Formula::cmp(a.clone(), Rel::Eq, b.clone()),
                Formula::or(vec![
                    Formula::cmp(d.clone(), Rel::Ne, e.clone()),
                    Formula::cmp(d.clone(), Rel::Gt, ff.clone()),
                ]),
            ]),
            Formula::and(vec![
                Formula::cmp(a.clone(), Rel::Eq, c.clone()),
                Formula::or(vec![
                    Formula::cmp(d.clone(), Rel::Gt, Term::IntConst(10)),
                    Formula::cmp(d.clone(), Rel::Lt, Term::IntConst(7)),
                    Formula::cmp(e.clone(), Rel::Lt, Term::IntConst(5)),
                ]),
            ]),
        ]);
        assert_eq!(s.equiv(&pstar, &pfixed, &[], &mut p), TriBool::True);
    }

    #[test]
    fn inequality_tightening_example() {
        let (s, mut p, a, ..) = setup();
        // a > 100 implies a ≥ 101 over the integers (paper Example 3's
        // per-row core).
        let f = Formula::cmp(a.clone(), Rel::Gt, Term::IntConst(100));
        let g = Formula::cmp(a, Rel::Ge, Term::IntConst(101));
        assert_eq!(s.equiv(&f, &g, &[], &mut p), TriBool::True);
    }

    #[test]
    fn strings_and_like_in_full_solver() {
        let mut p = VarPool::new();
        let name = Term::var(p.fresh("name", Sort::Str));
        let s = Solver::new();
        // name = 'Amy' ∧ name NOT LIKE 'A%' is unsat.
        let f = Formula::and(vec![
            Formula::cmp(name.clone(), Rel::Eq, Term::StrConst("Amy".into())),
            Formula::not(Formula::atom(Atom::Like(name.clone(), "A%".into()))),
        ]);
        assert_eq!(s.is_unsatisfiable(&f, &[], &mut p), TriBool::True);
        // name LIKE 'A%' ∧ name ≠ 'Amy' is sat.
        let g = Formula::and(vec![
            Formula::atom(Atom::Like(name.clone(), "A%".into())),
            Formula::cmp(name, Rel::Ne, Term::StrConst("Amy".into())),
        ]);
        let out = s.check(&g, &mut p);
        assert_eq!(out.result, SatResult::Sat);
        assert_eq!(out.model.unwrap().eval_formula(&g), Some(true));
    }

    #[test]
    fn too_many_atoms_is_unknown() {
        let mut p = VarPool::new();
        let s = Solver { max_atoms: 3, ..Solver::default() };
        let mut parts = vec![];
        for i in 0..5 {
            let v = Term::var(p.fresh(&format!("x{i}"), Sort::Int));
            parts.push(Formula::cmp(v, Rel::Gt, Term::IntConst(i)));
        }
        let f = Formula::and(parts);
        assert_eq!(s.check(&f, &mut p).result, SatResult::Unknown);
    }

    #[test]
    fn tautological_where_condition() {
        // The Brass-et-al efficiency issue: A >= B OR A < B is a tautology
        // — Qr-Hint must see the equivalence with TRUE.
        let (s, mut p, a, b, ..) = setup();
        let f = Formula::or(vec![
            Formula::cmp(a.clone(), Rel::Ge, b.clone()),
            Formula::cmp(a, Rel::Lt, b),
        ]);
        assert_eq!(s.equiv(&f, &Formula::True, &[], &mut p), TriBool::True);
    }

    #[test]
    fn context_makes_condition_redundant() {
        let (s, mut p, a, b, ..) = setup();
        // Under ctx {a > 4}: (a > 4 ∧ b = 1) ⇔ (b = 1).
        let ctx = vec![Formula::cmp(a.clone(), Rel::Gt, Term::IntConst(4))];
        let f = Formula::and(vec![
            Formula::cmp(a, Rel::Gt, Term::IntConst(4)),
            Formula::cmp(b.clone(), Rel::Eq, Term::IntConst(1)),
        ]);
        let g = Formula::cmp(b, Rel::Eq, Term::IntConst(1));
        assert_eq!(s.equiv(&f, &g, &ctx, &mut p), TriBool::True);
    }
}

//! Models: concrete assignments of solver variables, and evaluation of
//! terms, atoms and formulas under a model with full (non-abstracted)
//! semantics.
//!
//! Model validation is the linchpin of the solver's soundness: a `Sat`
//! verdict is only ever reported after the original formula evaluates to
//! `true` under the candidate model, so abstractions used during solving
//! (opaque non-linear terms, string witnesses) can never produce false
//! positives.

use crate::formula::{Atom, Formula, Rel};
use crate::pattern;
use crate::term::{Term, VarId};
use std::collections::BTreeMap;
use std::fmt;

/// A concrete value.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    Int(i64),
    Str(String),
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "'{s}'"),
        }
    }
}

/// A (partial) assignment of variables to values. Variables missing from
/// the model default to `0` / `""` during evaluation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Model {
    assign: BTreeMap<VarId, Value>,
}

impl Model {
    pub fn new() -> Self {
        Model::default()
    }

    pub fn set(&mut self, v: VarId, val: Value) {
        self.assign.insert(v, val);
    }

    pub fn get(&self, v: VarId) -> Option<&Value> {
        self.assign.get(&v)
    }

    pub fn iter(&self) -> impl Iterator<Item = (&VarId, &Value)> {
        self.assign.iter()
    }

    pub fn len(&self) -> usize {
        self.assign.len()
    }

    pub fn is_empty(&self) -> bool {
        self.assign.is_empty()
    }

    /// Merge another model into this one (right-biased).
    pub fn merge(&mut self, other: &Model) {
        for (v, val) in &other.assign {
            self.assign.insert(*v, val.clone());
        }
    }

    /// Evaluate an integer-sorted term; `None` on division by zero or if a
    /// string value flows into arithmetic (type-confused input).
    pub fn eval_int(&self, t: &Term) -> Option<i64> {
        match t {
            Term::Var(v) => match self.assign.get(v) {
                Some(Value::Int(x)) => Some(*x),
                Some(Value::Str(_)) => None,
                None => Some(0),
            },
            Term::IntConst(c) => Some(*c),
            Term::StrConst(_) => None,
            Term::Add(l, r) => self.eval_int(l)?.checked_add(self.eval_int(r)?),
            Term::Sub(l, r) => self.eval_int(l)?.checked_sub(self.eval_int(r)?),
            Term::Mul(l, r) => self.eval_int(l)?.checked_mul(self.eval_int(r)?),
            Term::Div(l, r) => {
                let d = self.eval_int(r)?;
                if d == 0 {
                    None
                } else {
                    self.eval_int(l)?.checked_div(d)
                }
            }
            Term::Neg(x) => self.eval_int(x)?.checked_neg(),
        }
    }

    /// Evaluate a string-sorted term (only vars and constants are
    /// string-sorted).
    pub fn eval_str(&self, t: &Term) -> Option<String> {
        match t {
            Term::Var(v) => match self.assign.get(v) {
                Some(Value::Str(s)) => Some(s.clone()),
                Some(Value::Int(_)) => None,
                None => Some(String::new()),
            },
            Term::StrConst(s) => Some(s.clone()),
            _ => None,
        }
    }

    /// Evaluate an atom; `None` when evaluation is undefined (division by
    /// zero, sort confusion).
    pub fn eval_atom(&self, a: &Atom) -> Option<bool> {
        match a {
            Atom::Cmp(l, rel, r) => {
                // Try integers first, then strings.
                if let (Some(lv), Some(rv)) = (self.eval_int(l), self.eval_int(r)) {
                    return Some(rel.eval(&lv, &rv));
                }
                let (ls, rs) = (self.eval_str(l)?, self.eval_str(r)?);
                Some(match rel {
                    Rel::Eq => ls == rs,
                    Rel::Ne => ls != rs,
                    Rel::Lt => ls < rs,
                    Rel::Le => ls <= rs,
                    Rel::Gt => ls > rs,
                    Rel::Ge => ls >= rs,
                })
            }
            Atom::Like(t, p) => Some(pattern::like_match(&self.eval_str(t)?, p)),
        }
    }

    /// Evaluate a formula; `None` propagates undefined atom evaluations.
    pub fn eval_formula(&self, f: &Formula) -> Option<bool> {
        match f {
            Formula::True => Some(true),
            Formula::False => Some(false),
            Formula::Atom(a) => self.eval_atom(a),
            Formula::And(cs) => {
                let mut all = true;
                for c in cs {
                    match self.eval_formula(c) {
                        Some(false) => return Some(false),
                        Some(true) => {}
                        None => all = false,
                    }
                }
                if all {
                    Some(true)
                } else {
                    None
                }
            }
            Formula::Or(cs) => {
                let mut any_none = false;
                for c in cs {
                    match self.eval_formula(c) {
                        Some(true) => return Some(true),
                        Some(false) => {}
                        None => any_none = true,
                    }
                }
                if any_none {
                    None
                } else {
                    Some(false)
                }
            }
            Formula::Not(c) => self.eval_formula(c).map(|b| !b),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::{Sort, VarPool};

    #[test]
    fn eval_arith() {
        let mut p = VarPool::new();
        let a = p.fresh("a", Sort::Int);
        let mut m = Model::new();
        m.set(a, Value::Int(7));
        // (a * 2 - 4) / 2 == 5 with truncating division
        let t = Term::div(
            Term::sub(Term::mul(Term::var(a), Term::IntConst(2)), Term::IntConst(4)),
            Term::IntConst(2),
        );
        assert_eq!(m.eval_int(&t), Some(5));
        // Division by zero is undefined.
        let dz = Term::div(Term::var(a), Term::IntConst(0));
        assert_eq!(m.eval_int(&dz), None);
    }

    #[test]
    fn eval_atoms_both_sorts() {
        let mut p = VarPool::new();
        let a = p.fresh("a", Sort::Int);
        let s = p.fresh("s", Sort::Str);
        let mut m = Model::new();
        m.set(a, Value::Int(10));
        m.set(s, Value::Str("Eve".into()));
        assert_eq!(
            m.eval_atom(&Atom::Cmp(Term::var(a), Rel::Gt, Term::IntConst(5))),
            Some(true)
        );
        assert_eq!(
            m.eval_atom(&Atom::Cmp(Term::var(s), Rel::Eq, Term::StrConst("Eve".into()))),
            Some(true)
        );
        assert_eq!(m.eval_atom(&Atom::Like(Term::var(s), "Ev%".into())), Some(true));
        assert_eq!(m.eval_atom(&Atom::Like(Term::var(s), "X%".into())), Some(false));
    }

    #[test]
    fn default_values_for_missing_vars() {
        let mut p = VarPool::new();
        let a = p.fresh("a", Sort::Int);
        let m = Model::new();
        assert_eq!(m.eval_int(&Term::var(a)), Some(0));
    }

    #[test]
    fn eval_formula_short_circuits() {
        let mut p = VarPool::new();
        let a = p.fresh("a", Sort::Int);
        let mut m = Model::new();
        m.set(a, Value::Int(1));
        let t = Formula::cmp(Term::var(a), Rel::Eq, Term::IntConst(1));
        let undef = Formula::cmp(
            Term::div(Term::var(a), Term::IntConst(0)),
            Rel::Eq,
            Term::IntConst(1),
        );
        // OR short-circuits past the undefined disjunct.
        assert_eq!(m.eval_formula(&Formula::or(vec![t.clone(), undef.clone()])), Some(true));
        // AND with undefined and no false => None.
        assert_eq!(m.eval_formula(&Formula::and(vec![t, undef])), None);
    }
}

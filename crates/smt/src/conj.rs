//! Conjunction checking: the theory layer of the DPLL(T)-lite solver.
//!
//! Given a conjunction of literals (atoms with polarities), dispatch to
//! the string theory and the linear-integer theory, case-splitting integer
//! disequalities, and assemble a combined model. `Sat` is only returned
//! after the candidate model has been validated against the *original*
//! literal semantics (including non-linear arithmetic that was abstracted
//! during solving).

use crate::formula::{Atom, Rel};
use crate::lia::{self, LiaResult};
use crate::model::{Model, Value};
use crate::strings::{self, StrConstraint, StrOperand, StrResult};
use crate::term::{linearize, LinExpr, OpaqueMap, Sort, Term, VarId, VarPool};
use crate::SatResult;
use std::collections::BTreeMap;

/// A literal: an atom plus a polarity.
pub type Lit = (Atom, bool);

/// Maximum number of integer disequalities to case-split (2^k branches).
const MAX_NE_SPLIT: usize = 10;

/// Determine whether a term is string-sorted.
fn is_str_term(t: &Term, pool: &VarPool) -> bool {
    match t {
        Term::Var(v) => pool.sort(*v) == Sort::Str,
        Term::StrConst(_) => true,
        _ => false,
    }
}

fn as_str_operand(
    t: &Term,
    var_index: &mut BTreeMap<VarId, usize>,
    var_order: &mut Vec<VarId>,
) -> Option<StrOperand> {
    match t {
        Term::Var(v) => {
            let next = var_index.len();
            let idx = *var_index.entry(*v).or_insert_with(|| {
                var_order.push(*v);
                next
            });
            Some(StrOperand::Var(idx))
        }
        Term::StrConst(s) => Some(StrOperand::Const(s.clone())),
        _ => None,
    }
}

/// Literals of a conjunction partitioned by theory, built one literal at
/// a time. This is the shared translation layer: the from-scratch
/// [`check_conjunction`] feeds a whole literal slice through
/// [`Translation::push_lit`] and then solves; the incremental
/// [`crate::theory::TheoryState`] pushes at every search-branch
/// assignment and unwinds the same vectors on backtrack. Because both
/// paths run the identical per-literal translation in the identical
/// order, their leaf verdicts agree by construction.
#[derive(Debug, Default)]
pub struct Translation {
    pub(crate) str_constraints: Vec<StrConstraint>,
    pub(crate) str_var_index: BTreeMap<VarId, usize>,
    /// String variables in first-use order (`str_var_index` insertion
    /// order), so the incremental caller can unwind the index map.
    pub(crate) str_var_order: Vec<VarId>,
    /// Integer constraints, as LinExpr ≤ 0 / = 0 / ≠ 0.
    pub(crate) ineqs: Vec<LinExpr>,
    pub(crate) eqs: Vec<LinExpr>,
    pub(crate) nes: Vec<LinExpr>,
    pub(crate) opaque: OpaqueMap,
}

impl Translation {
    /// Translate one literal into the partitioned constraint vectors.
    /// Returns `true` when the literal alone refutes the conjunction (a
    /// false constant-constant lexicographic string comparison — the one
    /// case the translation itself decides).
    ///
    /// Literals no theory can express are skipped here; the final
    /// validation pass in [`Translation::solve`] still evaluates them
    /// against the candidate model, so `Sat` stays sound (and turns into
    /// `Unknown` when the model cannot decide a skipped literal).
    pub fn push_lit(&mut self, atom: &Atom, polarity: bool, pool: &mut VarPool) -> bool {
        match atom {
            Atom::Like(t, p) => {
                if let Some(op) =
                    as_str_operand(t, &mut self.str_var_index, &mut self.str_var_order)
                {
                    self.str_constraints.push(StrConstraint::Like {
                        operand: op,
                        pattern: p.clone(),
                        positive: polarity,
                    });
                }
                // else: skipped, caught by final validation
                false
            }
            Atom::Cmp(l, rel, r) => {
                let rel = if polarity { *rel } else { rel.negate() };
                if is_str_term(l, pool) || is_str_term(r, pool) {
                    let (Some(lo), Some(ro)) = (
                        as_str_operand(l, &mut self.str_var_index, &mut self.str_var_order),
                        as_str_operand(r, &mut self.str_var_index, &mut self.str_var_order),
                    ) else {
                        return false; // skipped, caught by final validation
                    };
                    match rel {
                        Rel::Eq => self.str_constraints.push(StrConstraint::Eq(lo, ro)),
                        Rel::Ne => self.str_constraints.push(StrConstraint::Ne(lo, ro)),
                        // Lexicographic order on string variables: decide
                        // only the constant-constant case; otherwise
                        // unknown (conservative; skipped pairs are caught
                        // by the final validation).
                        _ => {
                            if let (StrOperand::Const(a), StrOperand::Const(b)) = (&lo, &ro) {
                                if !rel.eval(a, b) {
                                    return true;
                                }
                            }
                        }
                    }
                    false
                } else {
                    let le = linearize(l, pool, &mut self.opaque);
                    let re = linearize(r, pool, &mut self.opaque);
                    let d = le.sub(&re); // l - r
                    match rel {
                        Rel::Eq => self.eqs.push(d),
                        Rel::Ne => self.nes.push(d),
                        Rel::Le => self.ineqs.push(d),
                        Rel::Lt => self.ineqs.push(d.add(&LinExpr::constant(1))),
                        Rel::Ge => self.ineqs.push(d.negate()),
                        Rel::Gt => self.ineqs.push(d.negate().add(&LinExpr::constant(1))),
                    }
                    false
                }
            }
        }
    }

    /// Decide the translated conjunction and, on `Sat`, assemble a model
    /// validated against the original literals in `lits` (the exact
    /// literal sequence that was pushed).
    pub fn solve(&self, lits: &[Lit]) -> (SatResult, Option<Model>) {
        // ---- String theory ----
        let num_str_vars = self.str_var_index.len();
        let str_model = match strings::check(num_str_vars, &self.str_constraints) {
            StrResult::Unsat => return (SatResult::Unsat, None),
            StrResult::Unknown => None,
            StrResult::Sat(m) => Some(m),
        };

        // ---- Integer theory with Ne case splits ----
        if self.nes.len() > MAX_NE_SPLIT {
            return (SatResult::Unknown, None);
        }
        let mut int_model: Option<BTreeMap<VarId, i128>> = None;
        let mut all_branches_unsat = true;
        let nbranches: u64 = 1u64 << self.nes.len();
        for mask in 0..nbranches {
            let mut branch = self.ineqs.clone();
            for (i, ne) in self.nes.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    // d ≥ 1, i.e. -d + 1 ≤ 0
                    branch.push(ne.negate().add(&LinExpr::constant(1)));
                } else {
                    // d ≤ -1, i.e. d + 1 ≤ 0
                    branch.push(ne.add(&LinExpr::constant(1)));
                }
            }
            match lia::solve(&branch, &self.eqs) {
                LiaResult::Sat(m) => {
                    int_model = Some(m);
                    all_branches_unsat = false;
                    break;
                }
                LiaResult::Unsat => {}
                LiaResult::Unknown => {
                    // This branch is undecided, so Unsat is off the table —
                    // but a sibling branch may still produce a model.
                    all_branches_unsat = false;
                }
            }
        }
        if all_branches_unsat && nbranches > 0 {
            return (SatResult::Unsat, None);
        }

        // ---- Assemble and validate a candidate model ----
        // A model found in one disequality branch is usable even when other
        // branches (or skipped literals) were undecided: the validation loop
        // below re-checks every original literal, which is what makes Sat
        // sound. Only a missing theory model forces Unknown outright.
        if int_model.is_none() || (num_str_vars > 0 && str_model.is_none()) {
            return (SatResult::Unknown, None);
        }
        let mut model = Model::new();
        if let Some(sm) = &str_model {
            let rev: BTreeMap<usize, VarId> =
                self.str_var_index.iter().map(|(v, i)| (*i, *v)).collect();
            for (idx, val) in sm {
                model.set(rev[idx], Value::Str(val.clone()));
            }
        }
        if let Some(im) = &int_model {
            for (v, val) in im {
                // Values outside i64 range would be a resource anomaly; clamp
                // conservatively (validation below will reject if wrong).
                let as64 =
                    i64::try_from(*val).unwrap_or(if *val > 0 { i64::MAX } else { i64::MIN });
                model.set(*v, Value::Int(as64));
            }
        }
        // Validate against the original literal semantics.
        for (atom, polarity) in lits {
            match model.eval_atom(atom) {
                Some(b) if b == *polarity => {}
                _ => return (SatResult::Unknown, None),
            }
        }
        (SatResult::Sat, Some(model))
    }
}

/// Check a conjunction of literals from scratch. Returns the verdict
/// and, on `Sat`, a model validated against every input literal.
pub fn check_conjunction(lits: &[Lit], pool: &mut VarPool) -> (SatResult, Option<Model>) {
    let mut tr = Translation::default();
    for (atom, polarity) in lits {
        if tr.push_lit(atom, *polarity, pool) {
            return (SatResult::Unsat, None);
        }
    }
    tr.solve(lits)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int_var(pool: &mut VarPool, name: &str) -> Term {
        Term::var(pool.fresh(name, Sort::Int))
    }
    fn str_var(pool: &mut VarPool, name: &str) -> Term {
        Term::var(pool.fresh(name, Sort::Str))
    }

    #[test]
    fn simple_int_conjunction() {
        let mut p = VarPool::new();
        let a = int_var(&mut p, "a");
        let b = int_var(&mut p, "b");
        // a > b ∧ b > a → unsat
        let lits = vec![
            (Atom::Cmp(a.clone(), Rel::Gt, b.clone()), true),
            (Atom::Cmp(b.clone(), Rel::Gt, a.clone()), true),
        ];
        assert_eq!(check_conjunction(&lits, &mut p).0, SatResult::Unsat);
        // a > b alone → sat
        let lits2 = vec![(Atom::Cmp(a, Rel::Gt, b), true)];
        let (r, m) = check_conjunction(&lits2, &mut p);
        assert_eq!(r, SatResult::Sat);
        assert!(m.is_some());
    }

    #[test]
    fn negative_polarity() {
        let mut p = VarPool::new();
        let a = int_var(&mut p, "a");
        // ¬(a ≤ 5) ∧ a < 3 → unsat
        let lits = vec![
            (Atom::Cmp(a.clone(), Rel::Le, Term::IntConst(5)), false),
            (Atom::Cmp(a, Rel::Lt, Term::IntConst(3)), true),
        ];
        assert_eq!(check_conjunction(&lits, &mut p).0, SatResult::Unsat);
    }

    #[test]
    fn disequality_case_split() {
        let mut p = VarPool::new();
        let a = int_var(&mut p, "a");
        // a ≠ 5 ∧ a ≥ 5 ∧ a ≤ 5 → unsat (both split branches die)
        let lits = vec![
            (Atom::Cmp(a.clone(), Rel::Ne, Term::IntConst(5)), true),
            (Atom::Cmp(a.clone(), Rel::Ge, Term::IntConst(5)), true),
            (Atom::Cmp(a.clone(), Rel::Le, Term::IntConst(5)), true),
        ];
        assert_eq!(check_conjunction(&lits, &mut p).0, SatResult::Unsat);
        // a ≠ 5 ∧ a ≥ 5 → sat with a ≥ 6
        let lits2 = vec![
            (Atom::Cmp(a.clone(), Rel::Ne, Term::IntConst(5)), true),
            (Atom::Cmp(a, Rel::Ge, Term::IntConst(5)), true),
        ];
        let (r, m) = check_conjunction(&lits2, &mut p);
        assert_eq!(r, SatResult::Sat);
        let m = m.unwrap();
        let first = m.iter().next().unwrap().1.clone();
        match first {
            Value::Int(v) => assert!(v >= 6),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn transitivity_of_equality() {
        let mut p = VarPool::new();
        let a = int_var(&mut p, "a");
        let b = int_var(&mut p, "b");
        let c = int_var(&mut p, "c");
        // a = b ∧ b = c ∧ a ≠ c → unsat (the Example-1 inference that
        // Likes.beer = s1.beer ∧ Likes.beer = s2.beer ⟹ s1.beer = s2.beer).
        let lits = vec![
            (Atom::Cmp(a.clone(), Rel::Eq, b.clone()), true),
            (Atom::Cmp(b, Rel::Eq, c.clone()), true),
            (Atom::Cmp(a, Rel::Eq, c), false),
        ];
        assert_eq!(check_conjunction(&lits, &mut p).0, SatResult::Unsat);
    }

    #[test]
    fn mixed_sorts() {
        let mut p = VarPool::new();
        let d = str_var(&mut p, "drinker");
        let x = int_var(&mut p, "price");
        let lits = vec![
            (Atom::Cmp(d.clone(), Rel::Eq, Term::StrConst("Amy".into())), true),
            (Atom::Cmp(x.clone(), Rel::Gt, Term::IntConst(3)), true),
            (Atom::Like(d.clone(), "A%".into()), true),
        ];
        let (r, m) = check_conjunction(&lits, &mut p);
        assert_eq!(r, SatResult::Sat);
        let m = m.unwrap();
        assert_eq!(m.eval_str(&d), Some("Amy".into()));
        // Conflicting pattern:
        let lits2 = vec![
            (Atom::Cmp(d.clone(), Rel::Eq, Term::StrConst("Amy".into())), true),
            (Atom::Like(d, "B%".into()), true),
        ];
        assert_eq!(check_conjunction(&lits2, &mut p).0, SatResult::Unsat);
    }

    #[test]
    fn arithmetic_equivalence_of_atoms() {
        let mut p = VarPool::new();
        let a = int_var(&mut p, "a");
        let b = int_var(&mut p, "b");
        // a + 1 = b + 1 ∧ a ≠ b → unsat (normalization cancels the +1).
        let lits = vec![
            (
                Atom::Cmp(
                    Term::add(a.clone(), Term::IntConst(1)),
                    Rel::Eq,
                    Term::add(b.clone(), Term::IntConst(1)),
                ),
                true,
            ),
            (Atom::Cmp(a, Rel::Eq, b), false),
        ];
        assert_eq!(check_conjunction(&lits, &mut p).0, SatResult::Unsat);
    }

    #[test]
    fn nonlinear_is_validated_not_trusted() {
        let mut p = VarPool::new();
        let a = int_var(&mut p, "a");
        // a * a < 0 — the abstraction is rational-sat, but validation must
        // reject any candidate model, so the result is Unknown or Unsat,
        // never Sat.
        let lits = vec![(
            Atom::Cmp(Term::mul(a.clone(), a.clone()), Rel::Lt, Term::IntConst(0)),
            true,
        )];
        let (r, _) = check_conjunction(&lits, &mut p);
        assert_ne!(r, SatResult::Sat);
        // a * a >= 0 with a = 3 should be genuinely sat (validated).
        let lits2 = vec![
            (Atom::Cmp(a.clone(), Rel::Eq, Term::IntConst(3)), true),
            (Atom::Cmp(Term::mul(a.clone(), a), Rel::Ge, Term::IntConst(9)), true),
        ];
        let (r2, m2) = check_conjunction(&lits2, &mut p);
        // The opaque var for a*a is unconstrained relative to a, so the
        // candidate model may or may not validate; Sat and Unknown are both
        // acceptable, Unsat is not.
        assert_ne!(r2, SatResult::Unsat);
        if r2 == SatResult::Sat {
            assert!(m2.is_some());
        }
    }

    #[test]
    fn empty_conjunction_is_sat() {
        let mut p = VarPool::new();
        let (r, m) = check_conjunction(&[], &mut p);
        assert_eq!(r, SatResult::Sat);
        assert!(m.is_some());
    }
}

//! Incremental theory state for the branch search.
//!
//! [`TheoryState`] is a push/pop assumption stack over the shared
//! [`Translation`] layer: every literal the DPLL search assigns is
//! translated once at push time (instead of retranslating the whole
//! prefix at each leaf and pruning stride), and each push also feeds a
//! cheap *quick conflict* detector — union-find over asserted integer
//! and string equalities, per-class interval bounds from single-variable
//! constraints, string constant bindings and LIKE patterns. A quick
//! conflict is a sound unsatisfiability proof for the stacked prefix, so
//! the search can prune the branch without running the full theory
//! check.
//!
//! Parity with the from-scratch path is by construction:
//! [`TheoryState::check_full`] runs the identical [`Translation::solve`]
//! on the identically-ordered translation state that
//! [`crate::conj::check_conjunction`] would build for the same literal
//! stack, and [`TheoryState::pop`] unwinds the translation (including
//! [`crate::term::OpaqueMap`] interning and pool allocation) to exactly
//! the state a from-scratch translation of the remaining stack would
//! produce.

use std::collections::BTreeMap;

use crate::conj::{Lit, Translation};
use crate::formula::Atom;
use crate::model::Model;
use crate::pattern;
use crate::strings::{StrConstraint, StrOperand};
use crate::term::{LinExpr, VarId, VarPool};
use crate::SatResult;

/// Shape of a linear expression the quick detector can reason about.
enum LinClass {
    /// `k` (no variables).
    Const(i128),
    /// `c·v + k` with `c ≠ 0`.
    Single(VarId, i128, i128),
    /// `x − y + k` (coefficients exactly +1 and −1).
    Diff(VarId, VarId, i128),
    Other,
}

fn classify(e: &LinExpr) -> LinClass {
    match e.coeffs.len() {
        0 => LinClass::Const(e.k),
        1 => {
            let (v, c) = e.coeffs.iter().next().map(|(v, c)| (*v, *c)).unwrap();
            LinClass::Single(v, c, e.k)
        }
        2 => {
            let mut it = e.coeffs.iter();
            let (a, ca) = it.next().map(|(v, c)| (*v, *c)).unwrap();
            let (b, cb) = it.next().map(|(v, c)| (*v, *c)).unwrap();
            if ca == 1 && cb == -1 {
                LinClass::Diff(a, b, e.k)
            } else if ca == -1 && cb == 1 {
                LinClass::Diff(b, a, e.k)
            } else {
                LinClass::Other
            }
        }
        _ => LinClass::Other,
    }
}

/// Union-find without path compression, so a union is undone by
/// restoring exactly the one parent edge (and size) it installed.
#[derive(Debug, Default)]
struct Uf {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl Uf {
    fn add(&mut self) -> u32 {
        let id = self.parent.len() as u32;
        self.parent.push(id);
        self.size.push(1);
        id
    }

    fn find(&self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            x = self.parent[x as usize];
        }
        x
    }

    /// Union two *distinct roots* by size; returns `(winner, loser)`.
    fn union_roots(&mut self, ra: u32, rb: u32) -> (u32, u32) {
        debug_assert_ne!(ra, rb);
        let (w, l) = if self.size[ra as usize] >= self.size[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[l as usize] = w;
        self.size[w as usize] += self.size[l as usize];
        (w, l)
    }

    fn undo_union(&mut self, winner: u32, loser: u32) {
        self.size[winner as usize] -= self.size[loser as usize];
        self.parent[loser as usize] = loser;
    }

    fn truncate(&mut self, n: usize) {
        self.parent.truncate(n);
        self.size.truncate(n);
    }

    fn len(&self) -> usize {
        self.parent.len()
    }
}

/// One reversible mutation of the quick-detector state.
#[derive(Debug)]
enum Undo {
    IntUnion { winner: u32, loser: u32, old_lo: Option<i128>, old_hi: Option<i128> },
    IntBound { node: u32, old_lo: Option<i128>, old_hi: Option<i128> },
    StrUnion { winner: u32, loser: u32, old_val: Option<String> },
    StrBind { node: u32 },
}

/// Cheap incremental conflict detector. All state lives in vectors whose
/// growth is recorded in frames (truncated on pop) or on the [`Undo`]
/// trail (unwound on pop). Conflicts only ever *add* pruning: every
/// conflict flagged here corresponds to a refutation the full
/// string/LIA check would also find on the same stack.
#[derive(Debug, Default)]
struct Quick {
    int_index: BTreeMap<VarId, u32>,
    /// Registration order, aligned with node ids (for pop cleanup).
    int_order: Vec<VarId>,
    int_uf: Uf,
    /// Per-node interval bounds; authoritative at class roots.
    int_lo: Vec<Option<i128>>,
    int_hi: Vec<Option<i128>>,
    int_ne_pairs: Vec<(u32, u32)>,
    int_ne_consts: Vec<(u32, i128)>,

    /// String nodes share the dense indices of
    /// [`Translation::str_var_order`].
    str_uf: Uf,
    /// Constant binding per node; authoritative at class roots.
    str_val: Vec<Option<String>>,
    str_ne_pairs: Vec<(u32, u32)>,
    str_ne_consts: Vec<(u32, String)>,
    str_likes: Vec<(u32, String, bool)>,

    undo: Vec<Undo>,
    /// Number of conflicts asserted by literals currently on the stack.
    conflicts: u32,
}

impl Quick {
    fn conflict(&mut self) {
        self.conflicts += 1;
    }

    fn int_node(&mut self, v: VarId) -> u32 {
        if let Some(n) = self.int_index.get(&v) {
            return *n;
        }
        let n = self.int_uf.add();
        self.int_lo.push(None);
        self.int_hi.push(None);
        self.int_index.insert(v, n);
        self.int_order.push(v);
        n
    }

    fn pinned(&self, root: u32) -> Option<i128> {
        match (self.int_lo[root as usize], self.int_hi[root as usize]) {
            (Some(lo), Some(hi)) if lo == hi => Some(lo),
            _ => None,
        }
    }

    fn merge_bound(a: Option<i128>, b: Option<i128>, take_max: bool) -> Option<i128> {
        match (a, b) {
            (Some(x), Some(y)) => Some(if take_max { x.max(y) } else { x.min(y) }),
            (x, y) => x.or(y),
        }
    }

    /// Narrow the interval of `root`; flags a conflict when the interval
    /// empties or pins a value a stacked disequality excludes.
    fn narrow(&mut self, root: u32, lo: Option<i128>, hi: Option<i128>) {
        let (old_lo, old_hi) = (self.int_lo[root as usize], self.int_hi[root as usize]);
        let new_lo = Self::merge_bound(old_lo, lo, true);
        let new_hi = Self::merge_bound(old_hi, hi, false);
        if (new_lo, new_hi) == (old_lo, old_hi) {
            return;
        }
        self.undo.push(Undo::IntBound { node: root, old_lo, old_hi });
        self.int_lo[root as usize] = new_lo;
        self.int_hi[root as usize] = new_hi;
        if let (Some(l), Some(h)) = (new_lo, new_hi) {
            if l > h {
                self.conflict();
                return;
            }
        }
        if let Some(val) = self.pinned(root) {
            let hit = self
                .int_ne_consts
                .iter()
                .any(|(n, ne)| *ne == val && self.int_uf.find(*n) == root);
            if hit {
                self.conflict();
            }
        }
    }

    fn int_union(&mut self, x: VarId, y: VarId) {
        let (nx, ny) = (self.int_node(x), self.int_node(y));
        let (ra, rb) = (self.int_uf.find(nx), self.int_uf.find(ny));
        if ra == rb {
            return;
        }
        let (w, l) = self.int_uf.union_roots(ra, rb);
        self.undo.push(Undo::IntUnion {
            winner: w,
            loser: l,
            old_lo: self.int_lo[w as usize],
            old_hi: self.int_hi[w as usize],
        });
        let new_lo = Self::merge_bound(self.int_lo[w as usize], self.int_lo[l as usize], true);
        let new_hi = Self::merge_bound(self.int_hi[w as usize], self.int_hi[l as usize], false);
        self.int_lo[w as usize] = new_lo;
        self.int_hi[w as usize] = new_hi;
        if let (Some(lo), Some(hi)) = (new_lo, new_hi) {
            if lo > hi {
                self.conflict();
                return;
            }
        }
        let pair_hit = self
            .int_ne_pairs
            .iter()
            .any(|(a, b)| self.int_uf.find(*a) == self.int_uf.find(*b));
        if pair_hit {
            self.conflict();
            return;
        }
        if let Some(val) = self.pinned(w) {
            let hit = self
                .int_ne_consts
                .iter()
                .any(|(n, ne)| *ne == val && self.int_uf.find(*n) == w);
            if hit {
                self.conflict();
            }
        }
    }

    /// Assert `e = 0`.
    fn add_int_eq(&mut self, e: &LinExpr) {
        match classify(e) {
            LinClass::Const(k) => {
                if k != 0 {
                    self.conflict();
                }
            }
            LinClass::Single(v, c, k) => {
                if k % c != 0 {
                    // c·v = −k has no integer solution.
                    self.conflict();
                    return;
                }
                let val = -k / c;
                let n = self.int_node(v);
                let r = self.int_uf.find(n);
                self.narrow(r, Some(val), Some(val));
            }
            LinClass::Diff(x, y, k) => {
                if k == 0 {
                    self.int_union(x, y);
                }
            }
            LinClass::Other => {}
        }
    }

    /// Assert `e ≤ 0`.
    fn add_int_ineq(&mut self, e: &LinExpr) {
        match classify(e) {
            LinClass::Const(k) => {
                if k > 0 {
                    self.conflict();
                }
            }
            LinClass::Single(v, c, k) => {
                // c·v ≤ −k: `div_euclid` floors for positive divisors and
                // ceils for negative ones — exactly the rounding each
                // direction needs for integer bounds.
                let bound = (-k).div_euclid(c);
                let n = self.int_node(v);
                let r = self.int_uf.find(n);
                if c > 0 {
                    self.narrow(r, None, Some(bound));
                } else {
                    self.narrow(r, Some(bound), None);
                }
            }
            LinClass::Diff(x, y, k) => {
                // x − y + k ≤ 0 while x and y are forced equal ⇒ k ≤ 0.
                if k > 0 {
                    if let (Some(nx), Some(ny)) =
                        (self.int_index.get(&x).copied(), self.int_index.get(&y).copied())
                    {
                        if self.int_uf.find(nx) == self.int_uf.find(ny) {
                            self.conflict();
                        }
                    }
                }
            }
            LinClass::Other => {}
        }
    }

    /// Assert `e ≠ 0`.
    fn add_int_ne(&mut self, e: &LinExpr) {
        match classify(e) {
            LinClass::Const(k) => {
                if k == 0 {
                    self.conflict();
                }
            }
            LinClass::Single(v, c, k) => {
                if k % c != 0 {
                    return; // trivially true over the integers
                }
                let val = -k / c;
                let n = self.int_node(v);
                let r = self.int_uf.find(n);
                if self.pinned(r) == Some(val) {
                    self.conflict();
                }
                self.int_ne_consts.push((n, val));
            }
            LinClass::Diff(x, y, k) => {
                if k != 0 {
                    return;
                }
                let (nx, ny) = (self.int_node(x), self.int_node(y));
                if self.int_uf.find(nx) == self.int_uf.find(ny) {
                    self.conflict();
                }
                self.int_ne_pairs.push((nx, ny));
            }
            LinClass::Other => {}
        }
    }

    fn str_add_var(&mut self) {
        self.str_uf.add();
        self.str_val.push(None);
    }

    /// Re-check pattern and disequality records against a root whose
    /// binding just changed.
    fn str_root_check(&mut self, root: u32) {
        let Some(val) = self.str_val[root as usize].clone() else {
            return;
        };
        let like_hit = self.str_likes.iter().any(|(n, p, pos)| {
            self.str_uf.find(*n) == root && pattern::like_match(&val, p) != *pos
        });
        if like_hit {
            self.conflict();
            return;
        }
        let nec_hit = self
            .str_ne_consts
            .iter()
            .any(|(n, s)| *s == val && self.str_uf.find(*n) == root);
        if nec_hit {
            self.conflict();
            return;
        }
        let nep_hit = self.str_ne_pairs.iter().any(|(a, b)| {
            let (ra, rb) = (self.str_uf.find(*a), self.str_uf.find(*b));
            (ra == root || rb == root)
                && self.str_val[ra as usize].is_some()
                && self.str_val[ra as usize] == self.str_val[rb as usize]
        });
        if nep_hit {
            self.conflict();
        }
    }

    fn str_bind(&mut self, i: usize, val: &str) {
        let r = self.str_uf.find(i as u32);
        match &self.str_val[r as usize] {
            Some(existing) => {
                if existing != val {
                    self.conflict();
                }
            }
            None => {
                self.undo.push(Undo::StrBind { node: r });
                self.str_val[r as usize] = Some(val.to_string());
                self.str_root_check(r);
            }
        }
    }

    fn str_union(&mut self, i: usize, j: usize) {
        let (ra, rb) = (self.str_uf.find(i as u32), self.str_uf.find(j as u32));
        if ra == rb {
            return;
        }
        let (w, l) = self.str_uf.union_roots(ra, rb);
        let old_val = self.str_val[w as usize].clone();
        self.undo.push(Undo::StrUnion { winner: w, loser: l, old_val: old_val.clone() });
        match (&old_val, &self.str_val[l as usize]) {
            (Some(a), Some(b)) if a != b => {
                self.conflict();
                return;
            }
            (None, Some(_)) => self.str_val[w as usize] = self.str_val[l as usize].clone(),
            _ => {}
        }
        let nep_hit = self
            .str_ne_pairs
            .iter()
            .any(|(a, b)| self.str_uf.find(*a) == self.str_uf.find(*b));
        if nep_hit {
            self.conflict();
            return;
        }
        self.str_root_check(w);
    }

    fn add_str(&mut self, c: &StrConstraint) {
        match c {
            StrConstraint::Eq(a, b) => match (a, b) {
                (StrOperand::Var(i), StrOperand::Var(j)) => self.str_union(*i, *j),
                (StrOperand::Var(i), StrOperand::Const(s))
                | (StrOperand::Const(s), StrOperand::Var(i)) => self.str_bind(*i, s),
                (StrOperand::Const(x), StrOperand::Const(y)) => {
                    if x != y {
                        self.conflict();
                    }
                }
            },
            StrConstraint::Ne(a, b) => match (a, b) {
                (StrOperand::Var(i), StrOperand::Var(j)) => {
                    let (ra, rb) = (self.str_uf.find(*i as u32), self.str_uf.find(*j as u32));
                    if ra == rb
                        || (self.str_val[ra as usize].is_some()
                            && self.str_val[ra as usize] == self.str_val[rb as usize])
                    {
                        self.conflict();
                    }
                    self.str_ne_pairs.push((*i as u32, *j as u32));
                }
                (StrOperand::Var(i), StrOperand::Const(s))
                | (StrOperand::Const(s), StrOperand::Var(i)) => {
                    let r = self.str_uf.find(*i as u32);
                    if self.str_val[r as usize].as_deref() == Some(s.as_str()) {
                        self.conflict();
                    }
                    self.str_ne_consts.push((*i as u32, s.clone()));
                }
                (StrOperand::Const(x), StrOperand::Const(y)) => {
                    if x == y {
                        self.conflict();
                    }
                }
            },
            StrConstraint::Like { operand, pattern: p, positive } => match operand {
                StrOperand::Var(i) => {
                    let r = self.str_uf.find(*i as u32);
                    if let Some(val) = &self.str_val[r as usize] {
                        if pattern::like_match(val, p) != *positive {
                            self.conflict();
                        }
                    }
                    self.str_likes.push((*i as u32, p.clone(), *positive));
                }
                StrOperand::Const(s) => {
                    if pattern::like_match(s, p) != *positive {
                        self.conflict();
                    }
                }
            },
        }
    }

    fn unwind(&mut self, to: usize) {
        while self.undo.len() > to {
            match self.undo.pop().unwrap() {
                Undo::IntUnion { winner, loser, old_lo, old_hi } => {
                    self.int_uf.undo_union(winner, loser);
                    self.int_lo[winner as usize] = old_lo;
                    self.int_hi[winner as usize] = old_hi;
                }
                Undo::IntBound { node, old_lo, old_hi } => {
                    self.int_lo[node as usize] = old_lo;
                    self.int_hi[node as usize] = old_hi;
                }
                Undo::StrUnion { winner, loser, old_val } => {
                    self.str_uf.undo_union(winner, loser);
                    self.str_val[winner as usize] = old_val;
                }
                Undo::StrBind { node } => {
                    self.str_val[node as usize] = None;
                }
            }
        }
    }
}

/// Snapshot taken at each push so pop can restore every length-indexed
/// structure and both conflict counters.
#[derive(Debug)]
struct Frame {
    strs_len: usize,
    str_vars_len: usize,
    ineqs_len: usize,
    eqs_len: usize,
    nes_len: usize,
    opaque_ck: usize,
    pool_len: usize,
    undo_len: usize,
    int_nodes_len: usize,
    int_ne_pairs_len: usize,
    int_ne_consts_len: usize,
    str_ne_pairs_len: usize,
    str_ne_consts_len: usize,
    str_likes_len: usize,
    conflicts: u32,
    const_conflicts: u32,
}

/// Push/pop assumption stack over the conjunction theory.
#[derive(Debug, Default)]
pub struct TheoryState {
    tr: Translation,
    lits: Vec<Lit>,
    frames: Vec<Frame>,
    quick: Quick,
    /// Literals currently on the stack that the translation itself
    /// refuted (false constant-constant string comparisons) — the
    /// incremental counterpart of [`crate::conj::check_conjunction`]'s
    /// early `Unsat` return.
    const_conflicts: u32,
}

impl TheoryState {
    pub fn new() -> Self {
        TheoryState::default()
    }

    /// Number of literals currently pushed.
    pub fn depth(&self) -> usize {
        self.lits.len()
    }

    /// Literals currently pushed, oldest first.
    pub fn lits(&self) -> &[Lit] {
        &self.lits
    }

    /// Whether the stacked prefix is already known unsatisfiable.
    pub fn in_conflict(&self) -> bool {
        self.const_conflicts > 0 || self.quick.conflicts > 0
    }

    /// Push one literal: translate it incrementally and run the quick
    /// conflict detector. Returns `true` when the stack is now known
    /// unsatisfiable (callers prune the branch and pop immediately).
    pub fn push(&mut self, atom: Atom, polarity: bool, pool: &mut VarPool) -> bool {
        let frame = Frame {
            strs_len: self.tr.str_constraints.len(),
            str_vars_len: self.tr.str_var_order.len(),
            ineqs_len: self.tr.ineqs.len(),
            eqs_len: self.tr.eqs.len(),
            nes_len: self.tr.nes.len(),
            opaque_ck: self.tr.opaque.checkpoint(),
            pool_len: pool.len(),
            undo_len: self.quick.undo.len(),
            int_nodes_len: self.quick.int_order.len(),
            int_ne_pairs_len: self.quick.int_ne_pairs.len(),
            int_ne_consts_len: self.quick.int_ne_consts.len(),
            str_ne_pairs_len: self.quick.str_ne_pairs.len(),
            str_ne_consts_len: self.quick.str_ne_consts.len(),
            str_likes_len: self.quick.str_likes.len(),
            conflicts: self.quick.conflicts,
            const_conflicts: self.const_conflicts,
        };
        if self.tr.push_lit(&atom, polarity, pool) {
            self.const_conflicts += 1;
        }
        while self.quick.str_uf.len() < self.tr.str_var_order.len() {
            self.quick.str_add_var();
        }
        for c in &self.tr.str_constraints[frame.strs_len..] {
            self.quick.add_str(c);
        }
        for e in &self.tr.eqs[frame.eqs_len..] {
            self.quick.add_int_eq(e);
        }
        for e in &self.tr.ineqs[frame.ineqs_len..] {
            self.quick.add_int_ineq(e);
        }
        for e in &self.tr.nes[frame.nes_len..] {
            self.quick.add_int_ne(e);
        }
        self.lits.push((atom, polarity));
        self.frames.push(frame);
        self.in_conflict()
    }

    /// Pop the most recent literal, unwinding the quick detector, the
    /// translation, opaque interning and pool allocation to the exact
    /// pre-push state.
    pub fn pop(&mut self, pool: &mut VarPool) {
        let frame = self.frames.pop().expect("pop without matching push");
        self.lits.pop();
        self.quick.unwind(frame.undo_len);
        for v in self.quick.int_order.drain(frame.int_nodes_len..) {
            self.quick.int_index.remove(&v);
        }
        self.quick.int_uf.truncate(frame.int_nodes_len);
        self.quick.int_lo.truncate(frame.int_nodes_len);
        self.quick.int_hi.truncate(frame.int_nodes_len);
        self.quick.int_ne_pairs.truncate(frame.int_ne_pairs_len);
        self.quick.int_ne_consts.truncate(frame.int_ne_consts_len);
        self.quick.str_uf.truncate(frame.str_vars_len);
        self.quick.str_val.truncate(frame.str_vars_len);
        self.quick.str_ne_pairs.truncate(frame.str_ne_pairs_len);
        self.quick.str_ne_consts.truncate(frame.str_ne_consts_len);
        self.quick.str_likes.truncate(frame.str_likes_len);
        self.quick.conflicts = frame.conflicts;
        self.tr.str_constraints.truncate(frame.strs_len);
        for v in self.tr.str_var_order.drain(frame.str_vars_len..) {
            self.tr.str_var_index.remove(&v);
        }
        self.tr.ineqs.truncate(frame.ineqs_len);
        self.tr.eqs.truncate(frame.eqs_len);
        self.tr.nes.truncate(frame.nes_len);
        self.tr.opaque.rollback(frame.opaque_ck);
        pool.truncate(frame.pool_len);
        self.const_conflicts = frame.const_conflicts;
    }

    /// Decide the current stack exactly, mirroring what
    /// [`crate::conj::check_conjunction`] returns for the same literal
    /// sequence.
    pub fn check_full(&self) -> (SatResult, Option<Model>) {
        if self.const_conflicts > 0 {
            return (SatResult::Unsat, None);
        }
        self.tr.solve(&self.lits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conj::check_conjunction;
    use crate::formula::Rel;
    use crate::term::{Sort, Term};

    fn int_pool(n: usize) -> (VarPool, Vec<VarId>) {
        let mut p = VarPool::new();
        let vars = (0..n).map(|i| p.fresh(&format!("x{i}"), Sort::Int)).collect();
        (p, vars)
    }

    fn cmp(l: Term, rel: Rel, r: Term) -> Atom {
        Atom::Cmp(l, rel, r).canonical().0
    }

    #[test]
    fn push_pop_restores_translation_and_pool() {
        let (mut pool, v) = int_pool(2);
        let base_len = pool.len();
        let mut th = TheoryState::new();
        // Non-linear literal allocates an opaque pool var.
        let nl = cmp(Term::mul(Term::var(v[0]), Term::var(v[1])), Rel::Le, Term::IntConst(4));
        assert!(!th.push(nl, true, &mut pool));
        assert!(pool.len() > base_len);
        th.pop(&mut pool);
        assert_eq!(pool.len(), base_len);
        assert_eq!(th.depth(), 0);
        let (r, _) = th.check_full();
        assert_eq!(r, SatResult::Sat); // empty conjunction
    }

    #[test]
    fn quick_detects_bound_conflict() {
        let (mut pool, v) = int_pool(1);
        let mut th = TheoryState::new();
        assert!(!th.push(cmp(Term::var(v[0]), Rel::Le, Term::IntConst(3)), true, &mut pool));
        assert!(th.push(cmp(Term::var(v[0]), Rel::Ge, Term::IntConst(7)), true, &mut pool));
        // The full check agrees.
        assert_eq!(th.check_full().0, SatResult::Unsat);
        th.pop(&mut pool);
        assert!(!th.in_conflict());
        assert_eq!(th.check_full().0, SatResult::Sat);
    }

    #[test]
    fn quick_detects_equality_chain_conflict() {
        let (mut pool, v) = int_pool(3);
        let mut th = TheoryState::new();
        let eq = |a: VarId, b: VarId| cmp(Term::var(a), Rel::Eq, Term::var(b));
        assert!(!th.push(eq(v[0], v[1]), true, &mut pool));
        assert!(!th.push(eq(v[1], v[2]), true, &mut pool));
        // x0 = x2 already implied; x0 ≠ x2 conflicts.
        assert!(th.push(eq(v[0], v[2]), false, &mut pool));
        assert_eq!(th.check_full().0, SatResult::Unsat);
    }

    #[test]
    fn quick_detects_string_conflicts() {
        let mut pool = VarPool::new();
        let s = pool.fresh("s", Sort::Str);
        let t = pool.fresh("t", Sort::Str);
        let mut th = TheoryState::new();
        let eqc = |v: VarId, c: &str| {
            cmp(Term::var(v), Rel::Eq, Term::StrConst(c.to_string()))
        };
        assert!(!th.push(eqc(s, "Amy"), true, &mut pool));
        assert!(!th.push(cmp(Term::var(s), Rel::Eq, Term::var(t)), true, &mut pool));
        assert!(th.push(eqc(t, "Bob"), true, &mut pool));
        assert_eq!(th.check_full().0, SatResult::Unsat);
        th.pop(&mut pool);
        assert!(!th.in_conflict());
        // LIKE against the bound constant.
        assert!(th.push(Atom::Like(Term::var(t), "B%".to_string()), true, &mut pool));
        th.pop(&mut pool);
        assert!(!th.push(Atom::Like(Term::var(t), "A%".to_string()), true, &mut pool));
        assert_eq!(th.check_full().0, SatResult::Sat);
    }

    #[test]
    fn check_full_matches_from_scratch_on_a_mixed_stack() {
        let mut pool = VarPool::new();
        let x = pool.fresh("x", Sort::Int);
        let y = pool.fresh("y", Sort::Int);
        let s = pool.fresh("s", Sort::Str);
        let lits: Vec<Lit> = vec![
            (cmp(Term::var(x), Rel::Le, Term::var(y)), true),
            (cmp(Term::var(x), Rel::Eq, Term::var(y)), false),
            (cmp(Term::var(s), Rel::Eq, Term::StrConst("Eve".into())), true),
            (Atom::Like(Term::var(s), "E%".into()), true),
            (cmp(Term::mul(Term::var(x), Term::var(y)), Rel::Ge, Term::IntConst(0)), true),
        ];
        for take in 0..=lits.len() {
            let mut scratch_pool = pool.clone();
            let expect = check_conjunction(&lits[..take], &mut scratch_pool);
            let mut inc_pool = pool.clone();
            let mut th = TheoryState::new();
            for (a, p) in &lits[..take] {
                th.push(a.clone(), *p, &mut inc_pool);
            }
            let got = th.check_full();
            assert_eq!(got.0, expect.0, "verdict diverged at prefix {take}");
            assert_eq!(got.1, expect.1, "model diverged at prefix {take}");
        }
    }
}

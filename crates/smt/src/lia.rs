//! Linear integer arithmetic via Fourier–Motzkin elimination with integer
//! model reconstruction.
//!
//! Input: a conjunction of constraints `e ≤ 0` and `e = 0` over integer
//! variables (strict inequalities have already been tightened into `≤`
//! form using integrality: `a < b` becomes `a - b + 1 ≤ 0`).
//!
//! Guarantees:
//! * `Unsat` is sound: the rational relaxation is infeasible, hence the
//!   integer system is too.
//! * `Sat` is sound: a concrete integer model is produced and verified
//!   against every input constraint.
//! * `Unknown` covers rational-feasible systems where integer
//!   reconstruction hits an integrality gap (rare for SQL-style
//!   constraints, which are mostly difference bounds) and resource-limit
//!   bailouts.

use crate::term::{LinExpr, VarId};
use std::collections::BTreeMap;

/// Outcome of an LIA check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LiaResult {
    /// Integer model (total over the constrained variables).
    Sat(BTreeMap<VarId, i128>),
    Unsat,
    Unknown,
}

/// Resource cap: maximum number of live inequality constraints during
/// elimination before bailing out with `Unknown`.
const MAX_CONSTRAINTS: usize = 20_000;

/// `ceil(a / b)` for `b > 0`.
fn div_ceil(a: i128, b: i128) -> i128 {
    debug_assert!(b > 0);
    if a >= 0 {
        (a + b - 1) / b
    } else {
        -((-a) / b)
    }
}

/// `floor(a / b)` for `b > 0`.
fn div_floor(a: i128, b: i128) -> i128 {
    debug_assert!(b > 0);
    if a >= 0 {
        a / b
    } else {
        -((-a + b - 1) / b)
    }
}

/// Solve `ineqs: e ≤ 0` ∧ `eqs: e = 0` over the integers.
pub fn solve(ineqs: &[LinExpr], eqs: &[LinExpr]) -> LiaResult {
    // ---- Phase 0: normalize equalities ----
    // Substitute away variables with ±1 coefficients in equalities (exact
    // over the integers); convert remaining equalities into inequality
    // pairs.
    let mut ineqs: Vec<LinExpr> = ineqs.to_vec();
    let mut eqs: Vec<LinExpr> = eqs.to_vec();
    // (var, defining expr): var = expr, applied in reverse at reconstruction.
    let mut substitutions: Vec<(VarId, LinExpr)> = Vec::new();

    loop {
        // Find an equality with a unit-coefficient variable.
        let mut found: Option<(usize, VarId, i128)> = None;
        'outer: for (i, e) in eqs.iter().enumerate() {
            for (v, c) in &e.coeffs {
                if *c == 1 || *c == -1 {
                    found = Some((i, *v, *c));
                    break 'outer;
                }
            }
        }
        let Some((i, v, c)) = found else { break };
        let eq = eqs.swap_remove(i);
        // c*v + rest = 0  =>  v = -rest/c ; with c = ±1: v = -c*rest... more
        // precisely v = (-rest) * c  (since 1/c == c for c = ±1).
        let mut rest = eq.clone();
        rest.coeffs.remove(&v);
        let def = rest.negate().scale(c); // v = def
        // Substitute v := def everywhere.
        let subst = |e: &LinExpr| -> LinExpr {
            match e.coeffs.get(&v) {
                None => e.clone(),
                Some(&cv) => {
                    let mut out = e.clone();
                    out.coeffs.remove(&v);
                    out.add(&def.scale(cv))
                }
            }
        };
        ineqs = ineqs.iter().map(&subst).collect();
        eqs = eqs.iter().map(&subst).collect();
        substitutions = substitutions
            .into_iter()
            .map(|(w, d)| (w, subst(&d)))
            .collect();
        substitutions.push((v, def));
    }
    // Remaining equalities (no unit coefficients): check constant ones,
    // split the rest into ≤ pairs.
    for e in eqs {
        if e.is_constant() {
            if e.k != 0 {
                return LiaResult::Unsat;
            }
            continue;
        }
        ineqs.push(e.clone());
        ineqs.push(e.negate());
    }

    // ---- Phase 1: Fourier–Motzkin elimination ----
    // Collect variables; eliminate in order of fewest occurrences first.
    let mut order: Vec<VarId> = {
        let mut occ: BTreeMap<VarId, usize> = BTreeMap::new();
        for e in &ineqs {
            for v in e.coeffs.keys() {
                *occ.entry(*v).or_insert(0) += 1;
            }
        }
        let mut vs: Vec<(usize, VarId)> = occ.into_iter().map(|(v, n)| (n, v)).collect();
        vs.sort();
        vs.into_iter().map(|(_, v)| v).collect()
    };

    // Saved (var, constraints-involving-var) for model reconstruction, in
    // elimination order.
    let mut eliminated: Vec<(VarId, Vec<LinExpr>)> = Vec::new();
    let mut live = ineqs;

    while let Some(v) = order.first().copied() {
        order.remove(0);
        let (involving, keep): (Vec<LinExpr>, Vec<LinExpr>) =
            live.into_iter().partition(|e| e.coeffs.contains_key(&v));
        live = keep;
        let uppers: Vec<&LinExpr> =
            involving.iter().filter(|e| e.coeffs[&v] > 0).collect();
        let lowers: Vec<&LinExpr> =
            involving.iter().filter(|e| e.coeffs[&v] < 0).collect();
        for up in &uppers {
            for lo in &lowers {
                let a = up.coeffs[&v]; // > 0
                let b = -lo.coeffs[&v]; // > 0
                // a*v + e1 ≤ 0 and -b*v + e2 ≤ 0
                //   =>  b*e1 + a*e2 ≤ 0
                let combined = up.scale(b).add(&lo.scale(a));
                debug_assert!(!combined.coeffs.contains_key(&v));
                if combined.is_constant() {
                    if combined.k > 0 {
                        return LiaResult::Unsat;
                    }
                } else {
                    live.push(combined);
                }
                if live.len() > MAX_CONSTRAINTS {
                    return LiaResult::Unknown;
                }
            }
        }
        eliminated.push((v, involving));
    }

    // All variables eliminated; remaining constraints are constants.
    for e in &live {
        debug_assert!(e.is_constant());
        if e.k > 0 {
            return LiaResult::Unsat;
        }
    }

    // ---- Phase 2: integer model reconstruction ----
    let mut model: BTreeMap<VarId, i128> = BTreeMap::new();
    let assign = |model: &BTreeMap<VarId, i128>, e: &LinExpr, except: VarId| -> Option<i128> {
        // Evaluate e without the `except` variable's contribution.
        let mut total = e.k;
        for (v, c) in &e.coeffs {
            if *v == except {
                continue;
            }
            total += c * model.get(v).copied()?;
        }
        Some(total)
    };
    for (v, constraints) in eliminated.iter().rev() {
        let mut lb = i128::MIN;
        let mut ub = i128::MAX;
        for e in constraints {
            let a = e.coeffs[v];
            let Some(rest) = assign(&model, e, *v) else {
                return LiaResult::Unknown;
            };
            // a*v + rest ≤ 0
            if a > 0 {
                ub = ub.min(div_floor(-rest, a));
            } else {
                lb = lb.max(div_ceil(rest, -a));
            }
        }
        if lb > ub {
            // Integrality gap (rational-feasible but no integer point in
            // this back-substitution order).
            return LiaResult::Unknown;
        }
        let value = 0i128.clamp(lb, ub);
        model.insert(*v, value);
    }
    // Apply equality substitutions in reverse.
    for (v, def) in substitutions.iter().rev() {
        let mut total = def.k;
        for (w, c) in &def.coeffs {
            total += c * model.get(w).copied().unwrap_or(0);
        }
        model.insert(*v, total);
    }

    LiaResult::Sat(model)
}

/// Verify a model against constraints (diagnostic / defensive helper).
pub fn verify(model: &BTreeMap<VarId, i128>, ineqs: &[LinExpr], eqs: &[LinExpr]) -> bool {
    let get = |v: VarId| model.get(&v).copied().unwrap_or(0);
    ineqs.iter().all(|e| e.eval(&get) <= 0) && eqs.iter().all(|e| e.eval(&get) == 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::{Sort, VarPool};

    fn vars(n: usize) -> (VarPool, Vec<VarId>) {
        let mut p = VarPool::new();
        let vs = (0..n).map(|i| p.fresh(&format!("x{i}"), Sort::Int)).collect();
        (p, vs)
    }

    /// e = c0 + Σ ci·vi
    fn lin(consts: i128, terms: &[(i128, VarId)]) -> LinExpr {
        let mut e = LinExpr::constant(consts);
        for (c, v) in terms {
            e = e.add(&LinExpr::variable(*v).scale(*c));
        }
        e
    }

    #[test]
    fn trivial_sat_and_unsat() {
        assert!(matches!(solve(&[], &[]), LiaResult::Sat(_)));
        // 1 ≤ 0 is false.
        assert_eq!(solve(&[lin(1, &[])], &[]), LiaResult::Unsat);
        // -1 ≤ 0 is true.
        assert!(matches!(solve(&[lin(-1, &[])], &[]), LiaResult::Sat(_)));
    }

    #[test]
    fn difference_bounds() {
        let (_, v) = vars(3);
        // x0 < x1 (x0 - x1 + 1 ≤ 0), x1 < x2, x2 < x0 : cycle => unsat
        let c1 = lin(1, &[(1, v[0]), (-1, v[1])]);
        let c2 = lin(1, &[(1, v[1]), (-1, v[2])]);
        let c3 = lin(1, &[(1, v[2]), (-1, v[0])]);
        assert_eq!(solve(&[c1.clone(), c2.clone(), c3], &[]), LiaResult::Unsat);
        // Without the closing edge: sat, verify model.
        match solve(&[c1.clone(), c2.clone()], &[]) {
            LiaResult::Sat(m) => assert!(verify(&m, &[c1, c2], &[])),
            other => panic!("expected sat, got {other:?}"),
        }
    }

    #[test]
    fn integral_tightening_catches_x_lt_y_lt_x_plus_1() {
        let (_, v) = vars(2);
        // x < y and y < x + 1 has a rational solution but no integer one.
        // x - y + 1 ≤ 0 ; y - x - 1 + 1 ≤ 0 => summing gives 1 ≤ 0: UNSAT
        // even over our tightened encoding (the tightening makes FM exact).
        let c1 = lin(1, &[(1, v[0]), (-1, v[1])]);
        let c2 = lin(0, &[(1, v[1]), (-1, v[0])]);
        assert_eq!(solve(&[c1, c2], &[]), LiaResult::Unsat);
    }

    #[test]
    fn equalities_substitute() {
        let (_, v) = vars(3);
        // x0 = x1 + 5, x1 = x2, x2 ≥ 10 (i.e. -x2 + 10 ≤ 0), x0 ≤ 14 → unsat
        // because x0 = x2 + 5 ≥ 15.
        let e1 = lin(-5, &[(1, v[0]), (-1, v[1])]); // x0 - x1 - 5 = 0
        let e2 = lin(0, &[(1, v[1]), (-1, v[2])]);
        let i1 = lin(10, &[(-1, v[2])]);
        let i2 = lin(-14, &[(1, v[0])]);
        assert_eq!(solve(&[i1.clone(), i2], &[e1.clone(), e2.clone()]), LiaResult::Unsat);
        // Relax the bound: sat.
        let i2b = lin(-15, &[(1, v[0])]);
        match solve(&[i1.clone(), i2b.clone()], &[e1.clone(), e2.clone()]) {
            LiaResult::Sat(m) => {
                assert!(verify(&m, &[i1, i2b], &[e1, e2]));
                assert_eq!(m[&v[0]], m[&v[1]] + 5);
            }
            other => panic!("expected sat, got {other:?}"),
        }
    }

    #[test]
    fn non_unit_coefficients() {
        let (_, v) = vars(2);
        // 2x ≤ 7 and 2x ≥ 7 → rational x = 3.5; integer: 2x = 7 has no
        // solution. Our solver may return Unknown (integrality gap) but
        // must NOT return Sat.
        let c1 = lin(-7, &[(2, v[0])]);
        let c2 = lin(7, &[(-2, v[0])]);
        match solve(&[c1, c2], &[]) {
            LiaResult::Sat(m) => panic!("bogus model {m:?}"),
            LiaResult::Unsat | LiaResult::Unknown => {}
        }
        // 3x + 2y ≤ 6, x ≥ 1, y ≥ 1 → x=y=1 works.
        let c3 = lin(-6, &[(3, v[0]), (2, v[1])]);
        let c4 = lin(1, &[(-1, v[0])]);
        let c5 = lin(1, &[(-1, v[1])]);
        match solve(&[c3.clone(), c4.clone(), c5.clone()], &[]) {
            LiaResult::Sat(m) => assert!(verify(&m, &[c3, c4, c5], &[])),
            other => panic!("expected sat, got {other:?}"),
        }
    }

    #[test]
    fn constant_equality_contradiction() {
        // 0 = 3 is unsat even with no variables.
        assert_eq!(solve(&[], &[lin(3, &[])]), LiaResult::Unsat);
        assert!(matches!(solve(&[], &[lin(0, &[])]), LiaResult::Sat(_)));
    }

    #[test]
    fn unconstrained_vars_default() {
        let (_, v) = vars(1);
        // x = x (tautological equality) — substitution path.
        let e = lin(0, &[(1, v[0]), (-1, v[0])]);
        assert!(matches!(solve(&[], &[e]), LiaResult::Sat(_)));
    }

    #[test]
    fn bounded_box_model_prefers_zero() {
        let (_, v) = vars(1);
        // -5 ≤ x ≤ 5
        let c1 = lin(-5, &[(1, v[0])]);
        let c2 = lin(-5, &[(-1, v[0])]);
        match solve(&[c1, c2], &[]) {
            LiaResult::Sat(m) => assert_eq!(m[&v[0]], 0),
            other => panic!("expected sat, got {other:?}"),
        }
    }
}

//! SQL `LIKE` patterns (`%` = any sequence, `_` = any single character):
//! matching, intersection witnesses and bounded enumeration.
//!
//! Patterns are compiled into small NFAs; intersections are explored over
//! the product automaton with a reduced alphabet (the literal characters of
//! the patterns plus one "fresh" character standing for everything else),
//! which is sound and complete for glob languages.

use std::collections::{BTreeSet, HashMap, VecDeque};

/// Does `s` match SQL LIKE `pattern`? Classic two-pointer glob matching
/// with `%` backtracking; `_` matches exactly one character.
pub fn like_match(s: &str, pattern: &str) -> bool {
    let s: Vec<char> = s.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    let (mut si, mut pi) = (0usize, 0usize);
    let (mut star, mut star_si) = (usize::MAX, 0usize);
    while si < s.len() {
        if pi < p.len() && (p[pi] == '_' || p[pi] == s[si]) {
            si += 1;
            pi += 1;
        } else if pi < p.len() && p[pi] == '%' {
            star = pi;
            star_si = si;
            pi += 1;
        } else if star != usize::MAX {
            pi = star + 1;
            star_si += 1;
            si = star_si;
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '%' {
        pi += 1;
    }
    pi == p.len()
}

/// NFA state set for one glob pattern: set of positions in the pattern,
/// with `%` positions closed under epsilon (skipping the `%`).
fn eps_close(p: &[char], mut states: BTreeSet<usize>) -> BTreeSet<usize> {
    loop {
        let mut grew = false;
        let snapshot: Vec<usize> = states.iter().copied().collect();
        for s in snapshot {
            if s < p.len() && p[s] == '%' && !states.contains(&(s + 1)) {
                states.insert(s + 1);
                grew = true;
            }
        }
        if !grew {
            return states;
        }
    }
}

/// Step the NFA on character `c`.
fn step(p: &[char], states: &BTreeSet<usize>, c: char) -> BTreeSet<usize> {
    let mut next = BTreeSet::new();
    for &s in states {
        if s >= p.len() {
            continue;
        }
        match p[s] {
            '%' => {
                // Self-loop: consume c, stay at the %.
                next.insert(s);
            }
            '_' => {
                next.insert(s + 1);
            }
            lit if lit == c => {
                next.insert(s + 1);
            }
            _ => {}
        }
    }
    eps_close(p, next)
}

fn accepting(p: &[char], states: &BTreeSet<usize>) -> bool {
    states.contains(&p.len())
}

/// The reduced alphabet for a set of patterns: every literal character
/// mentioned by any pattern, plus one character not mentioned anywhere
/// (representing "all other characters").
fn alphabet(patterns: &[&str]) -> Vec<char> {
    let mut lits: BTreeSet<char> = BTreeSet::new();
    for p in patterns {
        for c in p.chars() {
            if c != '%' && c != '_' {
                lits.insert(c);
            }
        }
    }
    // Pick a fresh character outside the literal set.
    let fresh = ('a'..='z')
        .chain('0'..='9')
        .chain(std::iter::once('\u{E000}'))
        .find(|c| !lits.contains(c))
        .unwrap_or('\u{E001}');
    let mut out: Vec<char> = lits.into_iter().collect();
    out.push(fresh);
    out
}

/// Enumerate up to `limit` strings (shortest first) that match **all** of
/// `patterns`. Returns an empty vector iff the intersection is empty
/// (definitively — the reduced-alphabet product automaton is exact for
/// glob languages).
pub fn intersection_witnesses(patterns: &[&str], limit: usize) -> Vec<String> {
    if patterns.is_empty() {
        // Everything matches; enumerate simple distinct strings.
        return (0..limit).map(|i| format!("s{i}")).collect();
    }
    let compiled: Vec<Vec<char>> = patterns.iter().map(|p| p.chars().collect()).collect();
    let sigma = alphabet(patterns);
    let start: Vec<BTreeSet<usize>> = compiled
        .iter()
        .map(|p| eps_close(p, BTreeSet::from([0usize])))
        .collect();

    let mut out = Vec::new();
    // BFS over product states, remembering the string built so far.
    // Visited-set keyed on the product state: we only need one witness per
    // state for emptiness, but for enumeration we allow revisiting up to a
    // small bound per state.
    let mut queue: VecDeque<(Vec<BTreeSet<usize>>, String)> = VecDeque::new();
    let mut visits: HashMap<Vec<BTreeSet<usize>>, usize> = HashMap::new();
    queue.push_back((start, String::new()));
    let max_len = patterns.iter().map(|p| p.len()).max().unwrap_or(0) + limit + 2;
    while let Some((state, text)) = queue.pop_front() {
        if compiled.iter().zip(&state).all(|(p, s)| accepting(p, s)) {
            out.push(text.clone());
            if out.len() >= limit {
                return out;
            }
        }
        if text.chars().count() >= max_len {
            continue;
        }
        let v = visits.entry(state.clone()).or_insert(0);
        if *v > limit {
            continue;
        }
        *v += 1;
        for &c in &sigma {
            let next: Vec<BTreeSet<usize>> = compiled
                .iter()
                .zip(&state)
                .map(|(p, s)| step(p, s, c))
                .collect();
            if next.iter().any(|s| s.is_empty()) {
                continue;
            }
            let mut t = text.clone();
            t.push(c);
            queue.push_back((next, t));
        }
    }
    out
}

/// Whether the intersection of the pattern languages is empty.
pub fn intersection_empty(patterns: &[&str]) -> bool {
    intersection_witnesses(patterns, 1).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_matching() {
        assert!(like_match("Eve", "Eve"));
        assert!(like_match("Everest", "Eve%"));
        assert!(like_match("Eve", "Eve%"));
        assert!(!like_match("eve", "Eve%"));
        assert!(like_match("Eva", "Ev_"));
        assert!(!like_match("Ev", "Ev_"));
        assert!(like_match("abc", "%"));
        assert!(like_match("", "%"));
        assert!(!like_match("", "_"));
        assert!(like_match("abcbd", "a%b%d"));
        assert!(!like_match("abcbe", "a%b%d"));
    }

    #[test]
    fn percent_backtracking() {
        assert!(like_match("aXbYbZ", "a%b%"));
        assert!(like_match("mississippi", "m%iss%ppi"));
        assert!(!like_match("mississipp", "m%iss%ppi"));
    }

    #[test]
    fn intersection_witnesses_found() {
        let ws = intersection_witnesses(&["Eve%", "%e"], 3);
        assert!(!ws.is_empty());
        for w in &ws {
            assert!(like_match(w, "Eve%"), "{w}");
            assert!(like_match(w, "%e"), "{w}");
        }
    }

    #[test]
    fn disjoint_patterns_have_empty_intersection() {
        assert!(intersection_empty(&["A%", "B%"]));
        assert!(intersection_empty(&["_", "__"])); // length 1 vs length 2
        assert!(!intersection_empty(&["A%", "%Z"]));
    }

    #[test]
    fn same_pattern_intersection_nonempty() {
        assert!(!intersection_empty(&["abc", "abc"]));
        assert!(intersection_empty(&["abc", "abd"]));
    }

    #[test]
    fn empty_pattern_matches_only_empty_string() {
        assert!(like_match("", ""));
        assert!(!like_match("x", ""));
        let ws = intersection_witnesses(&[""], 2);
        assert_eq!(ws, vec![String::new()]);
    }

    #[test]
    fn witnesses_are_distinct_and_many() {
        let ws = intersection_witnesses(&["ab%"], 5);
        assert_eq!(ws.len(), 5);
        let set: std::collections::BTreeSet<_> = ws.iter().collect();
        assert_eq!(set.len(), 5);
        for w in &ws {
            assert!(like_match(w, "ab%"));
        }
    }

    #[test]
    fn no_patterns_enumerates_fresh_strings() {
        let ws = intersection_witnesses(&[], 3);
        assert_eq!(ws.len(), 3);
    }
}

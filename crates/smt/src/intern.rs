//! Hash-consed interning of terms and formulas.
//!
//! The tree representation ([`Term`], [`Formula`]) is ergonomic but pays
//! for itself on the hot path: every lower/negate/conjoin clones whole
//! subtrees, and every cache probe re-walks them for equality. This
//! module provides the arena representation the oracle layer works with:
//!
//! * [`TermId`] / [`FormulaId`] — `u32` indices into append-only tables
//!   owned by an [`Interner`];
//! * **hash-consing** — structurally equal nodes intern to the *same*
//!   id, so equality and hashing of whole formulas are single integer
//!   compares (`FormulaId: Eq + Hash + Copy`);
//! * **smart constructors** ([`Interner::and`], [`Interner::or`],
//!   [`Interner::not`]) that replicate the tree layer's simplifications
//!   (flattening, constant short-circuiting, double-negation
//!   elimination) node-for-node, so extracting a tree via
//!   [`Interner::formula`] yields exactly what the tree constructors
//!   would have built;
//! * **per-node memoization** — negation is memoized per formula node,
//!   so repeated `¬f` over a shared subformula is a table lookup.
//!
//! The solver itself ([`crate::solver`]) still consumes trees: callers
//! extract with [`Interner::formula`] only on a verdict-cache miss,
//! which is exactly when they are about to pay orders of magnitude more
//! for the satisfiability check itself.

use crate::formula::{Atom, Formula, Rel};
use crate::term::{Term, VarId};
use std::collections::HashMap;

/// Id of an interned term node. Equality means structural equality of
/// the whole subterm (within one [`Interner`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TermId(u32);

/// Id of an interned formula node. Equality means structural equality
/// of the whole subformula (within one [`Interner`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FormulaId(u32);

impl FormulaId {
    /// The constant `true` formula (pre-interned by [`Interner::new`]).
    pub const TRUE: FormulaId = FormulaId(0);
    /// The constant `false` formula (pre-interned by [`Interner::new`]).
    pub const FALSE: FormulaId = FormulaId(1);
}

/// One interned term node; children are ids, not boxes.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum TermNode {
    Var(VarId),
    IntConst(i64),
    StrConst(Box<str>),
    Add(TermId, TermId),
    Sub(TermId, TermId),
    Mul(TermId, TermId),
    Div(TermId, TermId),
    Neg(TermId),
}

/// One interned atom.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum AtomNode {
    Cmp(TermId, Rel, TermId),
    Like(TermId, Box<str>),
}

/// One interned formula node.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum FormulaNode {
    True,
    False,
    Atom(AtomNode),
    And(Box<[FormulaId]>),
    Or(Box<[FormulaId]>),
    Not(FormulaId),
}

/// Approximate per-node overhead used by [`Interner::approx_bytes`]:
/// arena slot plus the dedup map's hash/candidate-id entry (the arena
/// holds the only node copy). Deliberately coarse — the byte budget it
/// feeds only needs to *scale* with residency.
const TERM_NODE_BYTES: usize = 96;
const FORMULA_NODE_BYTES: usize = 112;
const NOT_MEMO_ENTRY_BYTES: usize = 48;

/// The append-only, hash-consed term/formula tables.
///
/// Not internally synchronized: the owning layer wraps it in its own
/// lock (construction is a cheap table operation; solving, the slow
/// part, happens outside on extracted trees).
#[derive(Debug)]
pub struct Interner {
    terms: Vec<TermNode>,
    /// Node-hash → candidate ids, verified against the arena slot on
    /// probe (the arena is the only node copy; a key-per-node map would
    /// double residency). Collisions make the candidate list longer,
    /// never the answer wrong.
    term_ids: HashMap<u64, Vec<TermId>>,
    formulas: Vec<FormulaNode>,
    formula_ids: HashMap<u64, Vec<FormulaId>>,
    /// Memoized smart negation per formula node.
    not_memo: HashMap<FormulaId, FormulaId>,
    /// Construction requests answered by an existing node.
    dedup_hits: u64,
    /// Variable-size payload bytes (strings, And/Or child slices).
    payload_bytes: usize,
}

fn node_hash<T: std::hash::Hash>(node: &T) -> u64 {
    use std::hash::Hasher;
    let mut h = std::collections::hash_map::DefaultHasher::new();
    node.hash(&mut h);
    h.finish()
}

/// `Default` routes through [`Interner::new`]: every construction path
/// must pre-intern `True`/`False` at ids 0/1, or the
/// [`FormulaId::TRUE`]/[`FormulaId::FALSE`] constants would alias
/// whatever happens to be interned first.
impl Default for Interner {
    fn default() -> Interner {
        Interner::new()
    }
}

impl Interner {
    pub fn new() -> Interner {
        let mut it = Interner {
            terms: Vec::new(),
            term_ids: HashMap::new(),
            formulas: Vec::new(),
            formula_ids: HashMap::new(),
            not_memo: HashMap::new(),
            dedup_hits: 0,
            payload_bytes: 0,
        };
        let t = it.formula_node(FormulaNode::True);
        let f = it.formula_node(FormulaNode::False);
        debug_assert_eq!(t, FormulaId::TRUE);
        debug_assert_eq!(f, FormulaId::FALSE);
        it
    }

    // ---------------- raw node interning ----------------

    fn term_node(&mut self, node: TermNode) -> TermId {
        let hash = node_hash(&node);
        if let Some(bucket) = self.term_ids.get(&hash) {
            if let Some(&id) =
                bucket.iter().find(|&&id| self.terms[id.0 as usize] == node)
            {
                self.dedup_hits += 1;
                return id;
            }
        }
        let id = TermId(u32::try_from(self.terms.len()).expect("term table overflow"));
        if let TermNode::StrConst(s) = &node {
            self.payload_bytes += s.len();
        }
        self.terms.push(node);
        self.term_ids.entry(hash).or_default().push(id);
        id
    }

    fn formula_node(&mut self, node: FormulaNode) -> FormulaId {
        let hash = node_hash(&node);
        if let Some(bucket) = self.formula_ids.get(&hash) {
            if let Some(&id) =
                bucket.iter().find(|&&id| self.formulas[id.0 as usize] == node)
            {
                self.dedup_hits += 1;
                return id;
            }
        }
        let id =
            FormulaId(u32::try_from(self.formulas.len()).expect("formula table overflow"));
        match &node {
            FormulaNode::And(cs) | FormulaNode::Or(cs) => {
                self.payload_bytes += std::mem::size_of::<FormulaId>() * cs.len();
            }
            FormulaNode::Atom(AtomNode::Like(_, p)) => self.payload_bytes += p.len(),
            _ => {}
        }
        self.formulas.push(node);
        self.formula_ids.entry(hash).or_default().push(id);
        id
    }

    // ---------------- term constructors ----------------

    pub fn var(&mut self, v: VarId) -> TermId {
        self.term_node(TermNode::Var(v))
    }

    pub fn int(&mut self, c: i64) -> TermId {
        self.term_node(TermNode::IntConst(c))
    }

    pub fn str(&mut self, s: &str) -> TermId {
        self.term_node(TermNode::StrConst(s.into()))
    }

    pub fn add(&mut self, l: TermId, r: TermId) -> TermId {
        self.term_node(TermNode::Add(l, r))
    }

    pub fn sub(&mut self, l: TermId, r: TermId) -> TermId {
        self.term_node(TermNode::Sub(l, r))
    }

    pub fn mul(&mut self, l: TermId, r: TermId) -> TermId {
        self.term_node(TermNode::Mul(l, r))
    }

    pub fn div(&mut self, l: TermId, r: TermId) -> TermId {
        self.term_node(TermNode::Div(l, r))
    }

    pub fn neg(&mut self, t: TermId) -> TermId {
        self.term_node(TermNode::Neg(t))
    }

    // ---------------- formula constructors ----------------

    /// Comparison atom.
    pub fn cmp(&mut self, l: TermId, rel: Rel, r: TermId) -> FormulaId {
        self.formula_node(FormulaNode::Atom(AtomNode::Cmp(l, rel, r)))
    }

    /// LIKE atom (positive literal; negate with [`Interner::not`]).
    pub fn like(&mut self, t: TermId, pattern: &str) -> FormulaId {
        self.formula_node(FormulaNode::Atom(AtomNode::Like(t, pattern.into())))
    }

    /// Smart conjunction: mirrors [`Formula::and`] (flattens nested
    /// conjunctions, drops `true`, short-circuits `false`, unwraps
    /// singletons).
    pub fn and(&mut self, children: Vec<FormulaId>) -> FormulaId {
        let mut flat = Vec::with_capacity(children.len());
        for c in children {
            match &self.formulas[c.0 as usize] {
                FormulaNode::True => {}
                FormulaNode::False => return FormulaId::FALSE,
                FormulaNode::And(g) => flat.extend_from_slice(g),
                _ => flat.push(c),
            }
        }
        match flat.len() {
            0 => FormulaId::TRUE,
            1 => flat[0],
            _ => self.formula_node(FormulaNode::And(flat.into_boxed_slice())),
        }
    }

    /// Smart disjunction: mirrors [`Formula::or`].
    pub fn or(&mut self, children: Vec<FormulaId>) -> FormulaId {
        let mut flat = Vec::with_capacity(children.len());
        for c in children {
            match &self.formulas[c.0 as usize] {
                FormulaNode::False => {}
                FormulaNode::True => return FormulaId::TRUE,
                FormulaNode::Or(g) => flat.extend_from_slice(g),
                _ => flat.push(c),
            }
        }
        match flat.len() {
            0 => FormulaId::FALSE,
            1 => flat[0],
            _ => self.formula_node(FormulaNode::Or(flat.into_boxed_slice())),
        }
    }

    /// Smart negation, memoized per node: mirrors [`Formula::not`]
    /// (constant flipping, double-negation elimination).
    pub fn not(&mut self, f: FormulaId) -> FormulaId {
        if let Some(&g) = self.not_memo.get(&f) {
            self.dedup_hits += 1;
            return g;
        }
        let g = match self.formulas[f.0 as usize] {
            FormulaNode::True => FormulaId::FALSE,
            FormulaNode::False => FormulaId::TRUE,
            FormulaNode::Not(inner) => inner,
            _ => self.formula_node(FormulaNode::Not(f)),
        };
        self.not_memo.insert(f, g);
        g
    }

    // ---------------- tree interning / extraction ----------------

    /// Intern an existing term tree verbatim.
    pub fn intern_term(&mut self, t: &Term) -> TermId {
        match t {
            Term::Var(v) => self.var(*v),
            Term::IntConst(c) => self.int(*c),
            Term::StrConst(s) => self.str(s),
            Term::Add(l, r) => {
                let (l, r) = (self.intern_term(l), self.intern_term(r));
                self.add(l, r)
            }
            Term::Sub(l, r) => {
                let (l, r) = (self.intern_term(l), self.intern_term(r));
                self.sub(l, r)
            }
            Term::Mul(l, r) => {
                let (l, r) = (self.intern_term(l), self.intern_term(r));
                self.mul(l, r)
            }
            Term::Div(l, r) => {
                let (l, r) = (self.intern_term(l), self.intern_term(r));
                self.div(l, r)
            }
            Term::Neg(inner) => {
                let inner = self.intern_term(inner);
                self.neg(inner)
            }
        }
    }

    /// Intern an existing formula tree verbatim (structure preserved, no
    /// re-simplification), so `formula(intern_formula(f)) == f`.
    ///
    /// Because this does **not** apply the smart-constructor
    /// simplifications, a tree containing shapes the smart layer never
    /// builds (singleton or nested `And`/`Or`, `Not` of a constant)
    /// interns to a *different* id than the simplified equivalent — do
    /// not mix verbatim interning with constructor-built ids when id
    /// equality is being used as formula equality.
    pub fn intern_formula(&mut self, f: &Formula) -> FormulaId {
        match f {
            Formula::True => FormulaId::TRUE,
            Formula::False => FormulaId::FALSE,
            Formula::Atom(Atom::Cmp(l, rel, r)) => {
                let (l, r) = (self.intern_term(l), self.intern_term(r));
                self.cmp(l, *rel, r)
            }
            Formula::Atom(Atom::Like(t, p)) => {
                let t = self.intern_term(t);
                self.like(t, p)
            }
            Formula::And(cs) => {
                let ids: Box<[FormulaId]> =
                    cs.iter().map(|c| self.intern_formula(c)).collect();
                self.formula_node(FormulaNode::And(ids))
            }
            Formula::Or(cs) => {
                let ids: Box<[FormulaId]> =
                    cs.iter().map(|c| self.intern_formula(c)).collect();
                self.formula_node(FormulaNode::Or(ids))
            }
            Formula::Not(c) => {
                let c = self.intern_formula(c);
                self.formula_node(FormulaNode::Not(c))
            }
        }
    }

    /// Extract the term tree of `t`.
    pub fn term(&self, t: TermId) -> Term {
        match &self.terms[t.0 as usize] {
            TermNode::Var(v) => Term::Var(*v),
            TermNode::IntConst(c) => Term::IntConst(*c),
            TermNode::StrConst(s) => Term::StrConst(s.to_string()),
            TermNode::Add(l, r) => Term::Add(Box::new(self.term(*l)), Box::new(self.term(*r))),
            TermNode::Sub(l, r) => Term::Sub(Box::new(self.term(*l)), Box::new(self.term(*r))),
            TermNode::Mul(l, r) => Term::Mul(Box::new(self.term(*l)), Box::new(self.term(*r))),
            TermNode::Div(l, r) => Term::Div(Box::new(self.term(*l)), Box::new(self.term(*r))),
            TermNode::Neg(inner) => Term::Neg(Box::new(self.term(*inner))),
        }
    }

    /// Extract the formula tree of `f`.
    pub fn formula(&self, f: FormulaId) -> Formula {
        match &self.formulas[f.0 as usize] {
            FormulaNode::True => Formula::True,
            FormulaNode::False => Formula::False,
            FormulaNode::Atom(AtomNode::Cmp(l, rel, r)) => {
                Formula::Atom(Atom::Cmp(self.term(*l), *rel, self.term(*r)))
            }
            FormulaNode::Atom(AtomNode::Like(t, p)) => {
                Formula::Atom(Atom::Like(self.term(*t), p.to_string()))
            }
            FormulaNode::And(cs) => {
                Formula::And(cs.iter().map(|c| self.formula(*c)).collect())
            }
            FormulaNode::Or(cs) => {
                Formula::Or(cs.iter().map(|c| self.formula(*c)).collect())
            }
            FormulaNode::Not(c) => Formula::Not(Box::new(self.formula(*c))),
        }
    }

    // ---------------- accounting ----------------

    /// Distinct term nodes interned.
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// Distinct formula nodes interned.
    pub fn num_formulas(&self) -> usize {
        self.formulas.len()
    }

    /// Construction requests answered by an already-interned node (the
    /// hash-consing hit counter; includes negation-memo hits).
    pub fn dedup_hits(&self) -> u64 {
        self.dedup_hits
    }

    /// Approximate resident bytes of the tables (nodes, dedup maps,
    /// negation memo, variable-size payloads).
    pub fn approx_bytes(&self) -> usize {
        self.terms.len() * TERM_NODE_BYTES
            + self.formulas.len() * FORMULA_NODE_BYTES
            + self.not_memo.len() * NOT_MEMO_ENTRY_BYTES
            + self.payload_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::{Sort, VarPool};

    fn two_vars() -> (Interner, TermId, TermId) {
        let mut it = Interner::new();
        let mut pool = VarPool::new();
        let a = pool.fresh("a", Sort::Int);
        let b = pool.fresh("b", Sort::Int);
        let (a, b) = (it.var(a), it.var(b));
        (it, a, b)
    }

    #[test]
    fn structurally_equal_nodes_share_ids() {
        let (mut it, a, b) = two_vars();
        let f1 = {
            let t = it.add(a, b);
            let c = it.int(3);
            it.cmp(t, Rel::Lt, c)
        };
        let f2 = {
            let t = it.add(a, b);
            let c = it.int(3);
            it.cmp(t, Rel::Lt, c)
        };
        assert_eq!(f1, f2, "hash-consing dedups identical construction");
        assert!(it.dedup_hits() >= 3, "add, const and atom all dedup");
    }

    #[test]
    fn smart_constructors_mirror_tree_layer() {
        let (mut it, a, _) = two_vars();
        let one = it.int(1);
        let atom = it.cmp(a, Rel::Eq, one);
        // and[] = true; or[] = false; singleton unwraps; constants fold.
        assert_eq!(it.and(vec![]), FormulaId::TRUE);
        assert_eq!(it.or(vec![]), FormulaId::FALSE);
        assert_eq!(it.and(vec![FormulaId::TRUE, atom]), atom);
        assert_eq!(it.or(vec![FormulaId::TRUE, atom]), FormulaId::TRUE);
        assert_eq!(it.and(vec![FormulaId::FALSE, atom]), FormulaId::FALSE);
        // Nested conjunctions flatten exactly like Formula::and.
        let two = it.int(2);
        let atom2 = it.cmp(a, Rel::Lt, two);
        let inner = it.and(vec![atom, atom2]);
        let outer = it.and(vec![inner, atom]);
        let tree = it.formula(outer);
        match tree {
            Formula::And(cs) => assert_eq!(cs.len(), 3, "flattened"),
            other => panic!("expected flat And, got {other}"),
        }
    }

    #[test]
    fn negation_is_memoized_and_involutive() {
        let (mut it, a, _) = two_vars();
        let five = it.int(5);
        let atom = it.cmp(a, Rel::Gt, five);
        let n1 = it.not(atom);
        let hits_before = it.dedup_hits();
        let n2 = it.not(atom);
        assert_eq!(n1, n2);
        assert!(it.dedup_hits() > hits_before, "second negation is a memo hit");
        assert_eq!(it.not(n1), atom, "double negation unwraps");
        assert_eq!(it.not(FormulaId::TRUE), FormulaId::FALSE);
        assert_eq!(it.not(FormulaId::FALSE), FormulaId::TRUE);
    }

    #[test]
    fn tree_round_trip_is_exact() {
        let mut pool = VarPool::new();
        let a = Term::var(pool.fresh("a", Sort::Int));
        let s = Term::var(pool.fresh("s", Sort::Str));
        let f = Formula::and(vec![
            Formula::cmp(
                Term::add(a.clone(), Term::IntConst(2)),
                Rel::Le,
                Term::mul(Term::IntConst(3), a.clone()),
            ),
            Formula::or(vec![
                Formula::not(Formula::atom(Atom::Like(s.clone(), "A%".into()))),
                Formula::cmp(s, Rel::Eq, Term::StrConst("Amy".into())),
            ]),
        ]);
        let mut it = Interner::new();
        let id = it.intern_formula(&f);
        assert_eq!(it.formula(id), f, "verbatim round trip");
        // Interning the same tree again yields the same id with no new
        // nodes.
        let (nt, nf) = (it.num_terms(), it.num_formulas());
        assert_eq!(it.intern_formula(&f), id);
        assert_eq!((it.num_terms(), it.num_formulas()), (nt, nf));
    }

    #[test]
    fn byte_accounting_grows_with_residency() {
        let mut it = Interner::new();
        let empty = it.approx_bytes();
        let t = it.str("a-reasonably-long-string-constant");
        let like = it.like(t, "%pattern%");
        let _ = it.not(like);
        assert!(it.approx_bytes() > empty);
    }
}

//! Terms, sorts, variables and linear normalization (tree
//! representation; see [`crate::intern`] for the hash-consed arena the
//! oracle layer builds terms in).

use std::collections::BTreeMap;
use std::fmt;

/// Sorts of the two-sorted logic (INT and VARCHAR, both NOT NULL).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Sort {
    Int,
    Str,
}

/// A solver variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub u32);

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Variable pool: allocates variables and records their names and sorts.
/// Names are purely diagnostic (e.g. `"s1.price"` or `"SUM(s.d)"`).
#[derive(Debug, Clone, Default)]
pub struct VarPool {
    names: Vec<String>,
    sorts: Vec<Sort>,
}

impl VarPool {
    pub fn new() -> Self {
        VarPool::default()
    }

    /// Allocate a fresh variable.
    pub fn fresh(&mut self, name: &str, sort: Sort) -> VarId {
        let id = VarId(self.names.len() as u32);
        self.names.push(name.to_string());
        self.sorts.push(sort);
        id
    }

    /// Sort of a variable.
    pub fn sort(&self, v: VarId) -> Sort {
        self.sorts[v.0 as usize]
    }

    /// Diagnostic name of a variable.
    pub fn name(&self, v: VarId) -> &str {
        &self.names[v.0 as usize]
    }

    /// Number of variables allocated.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Drop every variable at index `len` and above. Used by callers
    /// that mirror a shared pool and append throwaway solver-internal
    /// variables per check: truncate back to the synced snapshot, then
    /// [`VarPool::extend_from`] the new shared entries.
    pub fn truncate(&mut self, len: usize) {
        self.names.truncate(len);
        self.sorts.truncate(len);
    }

    /// Append `other`'s variables from index `from` on (the mirror-sync
    /// counterpart of [`VarPool::truncate`]). The caller guarantees
    /// `self.len() == from` so indices stay aligned.
    pub fn extend_from(&mut self, other: &VarPool, from: usize) {
        debug_assert_eq!(self.len(), from);
        self.names.extend_from_slice(&other.names[from..]);
        self.sorts.extend_from_slice(&other.sorts[from..]);
    }

    /// Whether no variables were allocated yet.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

/// First-order terms.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Term {
    Var(VarId),
    IntConst(i64),
    StrConst(String),
    Add(Box<Term>, Box<Term>),
    Sub(Box<Term>, Box<Term>),
    Mul(Box<Term>, Box<Term>),
    Div(Box<Term>, Box<Term>),
    Neg(Box<Term>),
}

#[allow(clippy::should_implement_trait)] // add/sub/mul/div are term constructors, not ops
impl Term {
    pub fn var(v: VarId) -> Term {
        Term::Var(v)
    }

    pub fn add(l: Term, r: Term) -> Term {
        Term::Add(Box::new(l), Box::new(r))
    }

    pub fn sub(l: Term, r: Term) -> Term {
        Term::Sub(Box::new(l), Box::new(r))
    }

    pub fn mul(l: Term, r: Term) -> Term {
        Term::Mul(Box::new(l), Box::new(r))
    }

    pub fn div(l: Term, r: Term) -> Term {
        Term::Div(Box::new(l), Box::new(r))
    }

    /// Collect variables into `out`.
    pub fn collect_vars(&self, out: &mut Vec<VarId>) {
        match self {
            Term::Var(v) => out.push(*v),
            Term::IntConst(_) | Term::StrConst(_) => {}
            Term::Add(l, r) | Term::Sub(l, r) | Term::Mul(l, r) | Term::Div(l, r) => {
                l.collect_vars(out);
                r.collect_vars(out);
            }
            Term::Neg(t) => t.collect_vars(out),
        }
    }
}

/// A linear expression `Σ coeff·var + k` over integer variables.
///
/// All coefficients are stored as `i128` so Fourier–Motzkin combinations do
/// not overflow for realistic SQL constants.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LinExpr {
    /// var → coefficient (non-zero entries only).
    pub coeffs: BTreeMap<VarId, i128>,
    /// Constant offset.
    pub k: i128,
}

impl LinExpr {
    pub fn constant(k: i128) -> LinExpr {
        LinExpr { coeffs: BTreeMap::new(), k }
    }

    pub fn variable(v: VarId) -> LinExpr {
        let mut coeffs = BTreeMap::new();
        coeffs.insert(v, 1);
        LinExpr { coeffs, k: 0 }
    }

    pub fn is_constant(&self) -> bool {
        self.coeffs.is_empty()
    }

    pub fn add(&self, other: &LinExpr) -> LinExpr {
        let mut out = self.clone();
        for (v, c) in &other.coeffs {
            let e = out.coeffs.entry(*v).or_insert(0);
            *e += c;
            if *e == 0 {
                out.coeffs.remove(v);
            }
        }
        out.k += other.k;
        out
    }

    pub fn negate(&self) -> LinExpr {
        LinExpr {
            coeffs: self.coeffs.iter().map(|(v, c)| (*v, -c)).collect(),
            k: -self.k,
        }
    }

    pub fn sub(&self, other: &LinExpr) -> LinExpr {
        self.add(&other.negate())
    }

    pub fn scale(&self, c: i128) -> LinExpr {
        if c == 0 {
            return LinExpr::constant(0);
        }
        LinExpr {
            coeffs: self.coeffs.iter().map(|(v, k)| (*v, k * c)).collect(),
            k: self.k * c,
        }
    }

    /// Evaluate under a variable assignment (must cover all variables).
    pub fn eval(&self, assign: &impl Fn(VarId) -> i128) -> i128 {
        self.coeffs.iter().map(|(v, c)| c * assign(*v)).sum::<i128>() + self.k
    }
}

/// Interns non-linear / non-affine subterms ("opaque" terms) as fresh
/// integer variables. Identical opaque terms (after recursive
/// normalization) map to the same variable, giving a cheap congruence.
///
/// Insertions are recorded on a trail so an incremental caller (the
/// assumption-stack theory, [`crate::theory`]) can [`OpaqueMap::rollback`]
/// to a [`OpaqueMap::checkpoint`] when a pushed literal is popped — the
/// map then matches what a from-scratch translation of the remaining
/// literal stack would have built, which keeps opaque variable ids (and
/// therefore Fourier–Motzkin elimination order) bit-identical between
/// the incremental and from-scratch paths.
#[derive(Debug, Default)]
pub struct OpaqueMap {
    map: BTreeMap<OpaqueKey, VarId>,
    /// Keys in insertion order; `rollback(n)` removes entries `n..`.
    trail: Vec<OpaqueKey>,
}

/// Canonical key for an opaque term: the operator plus the normalized
/// operand linear expressions rendered as sorted vectors.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum OpaqueKey {
    Mul(Vec<(VarId, i128)>, i128, Vec<(VarId, i128)>, i128),
    Div(Vec<(VarId, i128)>, i128, Vec<(VarId, i128)>, i128),
}

fn lin_key(e: &LinExpr) -> (Vec<(VarId, i128)>, i128) {
    (e.coeffs.iter().map(|(v, c)| (*v, *c)).collect(), e.k)
}

impl OpaqueMap {
    pub fn new() -> Self {
        OpaqueMap::default()
    }

    fn intern(&mut self, key: OpaqueKey, pool: &mut VarPool) -> VarId {
        if let Some(v) = self.map.get(&key) {
            return *v;
        }
        let v = pool.fresh("<opaque>", Sort::Int);
        self.trail.push(key.clone());
        self.map.insert(key, v);
        v
    }

    /// Trail position to hand back to [`OpaqueMap::rollback`].
    pub fn checkpoint(&self) -> usize {
        self.trail.len()
    }

    /// Remove every opaque term interned after `checkpoint`. The caller
    /// truncates the [`VarPool`] to its matching snapshot (opaque
    /// interning is the only allocation between the two snapshots).
    pub fn rollback(&mut self, checkpoint: usize) {
        for key in self.trail.drain(checkpoint..) {
            self.map.remove(&key);
        }
    }

    /// Number of interned opaque terms (non-zero means Sat answers need
    /// model validation on the original formula).
    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Normalize an integer-sorted term into a linear expression, abstracting
/// non-affine subterms (variable products, non-exact division) as opaque
/// variables.
///
/// The abstraction *over-approximates* the solution set, so an UNSAT
/// verdict on the abstraction is sound for the original; SAT verdicts are
/// validated against the original term semantics by the caller.
pub fn linearize(term: &Term, pool: &mut VarPool, opaque: &mut OpaqueMap) -> LinExpr {
    match term {
        Term::Var(v) => LinExpr::variable(*v),
        Term::IntConst(c) => LinExpr::constant(*c as i128),
        Term::StrConst(_) => {
            // Type-checked inputs never reach here; be defensive.
            LinExpr::constant(0)
        }
        Term::Add(l, r) => linearize(l, pool, opaque).add(&linearize(r, pool, opaque)),
        Term::Sub(l, r) => linearize(l, pool, opaque).sub(&linearize(r, pool, opaque)),
        Term::Neg(t) => linearize(t, pool, opaque).negate(),
        Term::Mul(l, r) => {
            let ll = linearize(l, pool, opaque);
            let rr = linearize(r, pool, opaque);
            if ll.is_constant() {
                rr.scale(ll.k)
            } else if rr.is_constant() {
                ll.scale(rr.k)
            } else {
                let (lv, lk) = lin_key(&ll);
                let (rv, rk) = lin_key(&rr);
                // Order operands canonically so x*y and y*x unify.
                let key = if (lv.clone(), lk) <= (rv.clone(), rk) {
                    OpaqueKey::Mul(lv, lk, rv, rk)
                } else {
                    OpaqueKey::Mul(rv, rk, lv, lk)
                };
                LinExpr::variable(opaque.intern(key, pool))
            }
        }
        Term::Div(l, r) => {
            let ll = linearize(l, pool, opaque);
            let rr = linearize(r, pool, opaque);
            if rr.is_constant() && rr.k != 0 {
                let d = rr.k;
                let divisible =
                    ll.k % d == 0 && ll.coeffs.values().all(|c| c % d == 0);
                if divisible {
                    return LinExpr {
                        coeffs: ll.coeffs.iter().map(|(v, c)| (*v, c / d)).collect(),
                        k: ll.k / d,
                    };
                }
            }
            let (lv, lk) = lin_key(&ll);
            let (rv, rk) = lin_key(&rr);
            LinExpr::variable(opaque.intern(OpaqueKey::Div(lv, lk, rv, rk), pool))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool3() -> (VarPool, VarId, VarId, VarId) {
        let mut p = VarPool::new();
        let a = p.fresh("a", Sort::Int);
        let b = p.fresh("b", Sort::Int);
        let c = p.fresh("c", Sort::Int);
        (p, a, b, c)
    }

    #[test]
    fn linearize_affine() {
        let (mut p, a, b, _) = pool3();
        let mut op = OpaqueMap::new();
        // 2*a + b - 3
        let t = Term::sub(
            Term::add(Term::mul(Term::IntConst(2), Term::var(a)), Term::var(b)),
            Term::IntConst(3),
        );
        let e = linearize(&t, &mut p, &mut op);
        assert_eq!(e.coeffs[&a], 2);
        assert_eq!(e.coeffs[&b], 1);
        assert_eq!(e.k, -3);
        assert!(op.is_empty());
    }

    #[test]
    fn linearize_cancellation() {
        let (mut p, a, _, _) = pool3();
        let mut op = OpaqueMap::new();
        let t = Term::sub(Term::var(a), Term::var(a));
        let e = linearize(&t, &mut p, &mut op);
        assert!(e.is_constant());
        assert_eq!(e.k, 0);
    }

    #[test]
    fn nonlinear_products_unify() {
        let (mut p, a, b, _) = pool3();
        let mut op = OpaqueMap::new();
        let t1 = Term::mul(Term::var(a), Term::var(b));
        let t2 = Term::mul(Term::var(b), Term::var(a));
        let e1 = linearize(&t1, &mut p, &mut op);
        let e2 = linearize(&t2, &mut p, &mut op);
        assert_eq!(e1, e2);
        assert_eq!(op.len(), 1);
    }

    #[test]
    fn exact_division_folds() {
        let (mut p, a, _, _) = pool3();
        let mut op = OpaqueMap::new();
        // (4*a + 8) / 4 == a + 2
        let t = Term::div(
            Term::add(Term::mul(Term::IntConst(4), Term::var(a)), Term::IntConst(8)),
            Term::IntConst(4),
        );
        let e = linearize(&t, &mut p, &mut op);
        assert_eq!(e.coeffs[&a], 1);
        assert_eq!(e.k, 2);
        assert!(op.is_empty());
    }

    #[test]
    fn inexact_division_is_opaque() {
        let (mut p, a, _, _) = pool3();
        let mut op = OpaqueMap::new();
        let t = Term::div(Term::var(a), Term::IntConst(2));
        let e = linearize(&t, &mut p, &mut op);
        assert_eq!(op.len(), 1);
        assert_eq!(e.coeffs.len(), 1);
    }

    #[test]
    fn linexpr_arith() {
        let (_, a, b, _) = pool3();
        let e1 = LinExpr::variable(a).scale(3);
        let e2 = LinExpr::variable(b).add(&LinExpr::constant(5));
        let sum = e1.add(&e2);
        assert_eq!(sum.eval(&|v| if v == a { 2 } else { 10 }), 3 * 2 + 10 + 5);
        let diff = sum.sub(&sum);
        assert!(diff.is_constant());
        assert_eq!(diff.k, 0);
    }
}

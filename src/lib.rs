//! # qr-hint
//!
//! A from-scratch Rust reproduction of **Qr-Hint: Actionable Hints
//! Towards Correcting Wrong SQL Queries** (Hu, Gilad, Stephens-Martinez,
//! Roy, Yang — SIGMOD 2024).
//!
//! Given a correct *target* query `Q★` and a wrong *working* query `Q`,
//! Qr-Hint walks the logical execution order (FROM → WHERE → GROUP BY →
//! HAVING → SELECT) and produces provably correct, locally optimal,
//! step-by-step repairs that lead the user to a query equivalent to
//! `Q★` — without revealing `Q★`.
//!
//! This facade crate re-exports the workspace:
//!
//! * [`ast`] (`qrhint-sqlast`) — AST, schemas, pretty printing;
//! * [`parse`] (`qrhint-sqlparse`) — lexer/parser for the SQL fragment;
//! * [`smt`] (`qrhint-smt`) — the DPLL(T)-lite solver standing in for Z3;
//! * [`boolmin`] (`qrhint-boolmin`) — Quine–McCluskey minimization
//!   standing in for ESPRESSO;
//! * [`analysis`] (`qrhint-analysis`) — schema-aware static analyzer:
//!   typed lints, aggregate-placement dataflow, interval abstract
//!   interpretation;
//! * [`engine`] (`qrhint-engine`) — bag-semantics executor for
//!   differential testing;
//! * [`core`] (`qrhint-core`) — the hinting pipeline itself;
//! * [`server`] (`qrhint-server`) — the `qr-hint serve` daemon: a
//!   std-only HTTP/JSON grading service with a resident target registry;
//! * [`workloads`] (`qrhint-workloads`) — evaluation schemas, corpora and
//!   error injectors.
//!
//! ## Quick start
//!
//! ```
//! use qr_hint::prelude::*;
//!
//! let schema = Schema::new()
//!     .with_table("Serves", &[("bar", SqlType::Str), ("beer", SqlType::Str),
//!                             ("price", SqlType::Int)], &["bar", "beer"]);
//! let qr = QrHint::new(schema);
//! let advice = qr.advise_sql(
//!     "SELECT s.bar FROM Serves s WHERE s.price >= 3",   // target (hidden)
//!     "SELECT s.bar FROM Serves s WHERE s.price > 3",    // student query
//! ).unwrap();
//! assert_eq!(advice.stage, Stage::Where);
//! ```

#![forbid(unsafe_code)]

pub mod exitcode;

pub use qrhint_analysis as analysis;
pub use qrhint_boolmin as boolmin;
pub use qrhint_core as core;
pub use qrhint_engine as engine;
pub use qrhint_server as server;
pub use qrhint_smt as smt;
pub use qrhint_sqlast as ast;
pub use qrhint_sqlparse as parse;
pub use qrhint_workloads as workloads;

/// One-stop imports for applications.
pub mod prelude {
    pub use qrhint_core::{
        Advice, AdviceReport, ClauseKind, DiagCode, Diagnostic, Hint, PreparedTarget,
        QrHint, QrHintConfig, RepairConfig, SessionStats, Severity, SiteHint, Stage,
        TutorSession,
    };
    pub use qrhint_engine::{DataGen, Database};
    pub use qrhint_server::{Server, ServerConfig, ServiceConfig};
    pub use qrhint_sqlast::{Query, Schema, SqlType};
    pub use qrhint_sqlparse::{parse_query, parse_query_extended, FlattenOptions};
}

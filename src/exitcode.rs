//! The `qr-hint` CLI's process exit-code contract, in one place.
//!
//! Every subcommand maps its outcome onto the same five codes, so
//! scripts and autograders can branch on *whose fault* a failure is
//! without parsing output. The CLI integration tests pin this table:
//!
//! | code | constant | meaning |
//! |------|----------|---------|
//! | 0 | [`SUCCESS`] | the command did its job (advise/grade ran, lint found nothing, fuzz classified every case) |
//! | 1 | [`INTERNAL`] | a tool-side failure: internal error, unreadable file, or — for `fuzz` — at least one `unclassified` divergence (a real grading bug) |
//! | 2 | [`USAGE`] | the command line itself is wrong (bad flag, missing argument, unknown workload schema); nothing was attempted |
//! | 3 | [`BAD_WORKING`] | the **submitted/working** SQL is malformed or unsupported — the student's problem, not the tool's |
//! | 4 | [`LINT_FINDINGS`] | `lint` only: the SQL is well-formed but the static analyzer emitted diagnostics |
//!
//! Batch modes (`grade`, `lint` over several files) fold per-item codes
//! with [`worst`]: an internal error outranks a malformed submission,
//! which outranks lint findings, which outrank success — independent of
//! `--jobs` and of item order. `USAGE` never folds; it is decided
//! before any work starts.
//!
//! `4` is deliberately reserved to `lint`: `grade` and `fuzz` report
//! analyzer diagnostics *in their output* without occupying an exit
//! code, so pre-existing automation keyed on `0/1/3` keeps working.

/// The command succeeded (and, for `lint`, found nothing).
pub const SUCCESS: u8 = 0;
/// Tool-side error; for `fuzz`, an unclassified divergence exists.
pub const INTERNAL: u8 = 1;
/// Command-line usage error; nothing was attempted.
pub const USAGE: u8 = 2;
/// The working/submitted SQL is malformed or unsupported.
pub const BAD_WORKING: u8 = 3;
/// `lint`: static-analyzer diagnostics were found.
pub const LINT_FINDINGS: u8 = 4;

/// Severity rank for [`worst`]: higher loses less information when two
/// items fail differently in one batch.
fn rank(code: u8) -> u8 {
    match code {
        SUCCESS => 0,
        LINT_FINDINGS => 1,
        BAD_WORKING => 2,
        // INTERNAL and anything unrecognized (future codes folded in by
        // mistake) surface as the most severe outcome.
        _ => 3,
    }
}

/// Fold per-item exit codes into one batch-wide code: the most severe
/// item wins (`INTERNAL` > `BAD_WORKING` > `LINT_FINDINGS` > `SUCCESS`).
/// An empty batch is a [`SUCCESS`].
pub fn worst(codes: impl IntoIterator<Item = u8>) -> u8 {
    codes.into_iter().max_by_key(|c| rank(*c)).unwrap_or(SUCCESS)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worst_orders_by_severity_not_value() {
        assert_eq!(worst([SUCCESS, SUCCESS]), SUCCESS);
        assert_eq!(worst([SUCCESS, LINT_FINDINGS]), LINT_FINDINGS);
        // 4 > 3 numerically, but a malformed submission outranks lint
        // findings — the fold is by severity, not by integer value.
        assert_eq!(worst([LINT_FINDINGS, BAD_WORKING]), BAD_WORKING);
        assert_eq!(worst([BAD_WORKING, INTERNAL, LINT_FINDINGS]), INTERNAL);
        assert_eq!(worst([]), SUCCESS);
    }
}

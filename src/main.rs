//! `qr-hint` command-line interface.
//!
//! ```text
//! qr-hint --schema schema.sql --target solution.sql --working student.sql
//!         [--interactive] [--extended] [--rewrite-subqueries]
//! ```
//!
//! Prints the hints for the first failing stage; with `--interactive`,
//! auto-applies each stage's repair and keeps going until the working
//! query is equivalent to the target (showing every hint on the way).
//! `--extended` enables the multi-block front-end (footnote 2 of the
//! paper: WITH, aggregation-free FROM subqueries, non-outer JOINs);
//! `--rewrite-subqueries` additionally opts into the positive EXISTS/IN
//! join rewrite of §3 (duplicate-count caveat applies).

use qr_hint::prelude::*;
use qrhint_sqlparse::parse_schema;
use std::process::ExitCode;

struct Args {
    schema: String,
    target: String,
    working: String,
    interactive: bool,
    extended: bool,
    rewrite_subqueries: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut schema = None;
    let mut target = None;
    let mut working = None;
    let mut interactive = false;
    let mut extended = false;
    let mut rewrite_subqueries = false;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--schema" => schema = Some(it.next().ok_or("--schema needs a file")?),
            "--target" => target = Some(it.next().ok_or("--target needs a file")?),
            "--working" => working = Some(it.next().ok_or("--working needs a file")?),
            "--interactive" | "-i" => interactive = true,
            "--extended" | "-x" => extended = true,
            "--rewrite-subqueries" => {
                extended = true;
                rewrite_subqueries = true;
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
        }
    }
    Ok(Args {
        schema: schema.ok_or_else(|| format!("--schema is required\n{USAGE}"))?,
        target: target.ok_or_else(|| format!("--target is required\n{USAGE}"))?,
        working: working.ok_or_else(|| format!("--working is required\n{USAGE}"))?,
        interactive,
        extended,
        rewrite_subqueries,
    })
}

const USAGE: &str = "usage: qr-hint --schema <schema.sql> --target <solution.sql> \
                     --working <student.sql> [--interactive] [--extended] \
                     [--rewrite-subqueries]";

fn run(args: &Args) -> Result<(), String> {
    let read = |path: &str| {
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
    };
    let schema =
        parse_schema(&read(&args.schema)?).map_err(|e| format!("schema: {e}"))?;
    let qr = QrHint::new(schema);
    let opts = FlattenOptions { rewrite_positive_subqueries: args.rewrite_subqueries };
    let prep = |sql: &str| {
        if args.extended {
            qr.prepare_extended(sql, &opts)
        } else {
            qr.prepare(sql)
        }
    };
    let target = prep(&read(&args.target)?).map_err(|e| format!("target query: {e}"))?;
    let mut working =
        prep(&read(&args.working)?).map_err(|e| format!("working query: {e}"))?;

    let mut round = 1;
    loop {
        let advice = qr.advise(&target, &working).map_err(|e| e.to_string())?;
        if advice.is_equivalent() {
            if round == 1 {
                println!("✓ The working query is already equivalent to the target.");
            } else {
                println!("✓ Equivalent after {} stage(s).", round - 1);
                println!("Final query:\n  {working}");
            }
            return Ok(());
        }
        println!("[{}] stage {}:", round, advice.stage);
        for hint in &advice.hints {
            println!("  {hint}");
        }
        if !args.interactive {
            return Ok(());
        }
        working = advice
            .fixed
            .ok_or_else(|| "stage produced no applicable fix".to_string())?;
        round += 1;
        if round > 16 {
            return Err("did not converge within 16 stages".into());
        }
    }
}

fn main() -> ExitCode {
    match parse_args() {
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::from(2)
        }
        Ok(args) => match run(&args) {
            Ok(()) => ExitCode::SUCCESS,
            Err(msg) => {
                eprintln!("error: {msg}");
                ExitCode::FAILURE
            }
        },
    }
}

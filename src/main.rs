//! `qr-hint` command-line interface.
//!
//! ```text
//! qr-hint [advise] --schema schema.sql --target solution.sql --working student.sql
//!         [--interactive] [--extended] [--rewrite-subqueries] [--json]
//!         [--trace-out trace.json]
//! qr-hint grade --schema schema.sql --target solution.sql --submissions dir/
//!         [--jobs N|auto] [--extended] [--rewrite-subqueries] [--json]
//! qr-hint serve [--addr HOST:PORT] [--jobs N|auto] [--max-targets N]
//!         [--max-cache-mb MB] [--max-pending N] [--acceptor auto|event|blocking]
//!         [--log-format text|json] [--log-level LEVEL]
//! qr-hint route [--addr HOST:PORT] (--spawn N | --backend HOST:PORT ...)
//!         [--replicas N] [--health-interval-ms MS] [--max-pending N]
//!         [--acceptor auto|event|blocking] [--log-format text|json]
//!         [--log-level LEVEL]
//! qr-hint fuzz --schema NAME [--count N] [--seed N] [--jobs N|auto]
//!         [--instances N] [--json]
//! qr-hint lint --schema schema.sql file.sql... [--extended]
//!         [--rewrite-subqueries] [--json]
//! qr-hint --version
//! ```
//!
//! **advise** (the default mode) prints the hints for the first failing
//! stage; with `--interactive`, auto-applies each stage's repair and keeps
//! going until the working query is equivalent to the target (showing
//! every hint on the way). **grade** compiles the target once and grades
//! every `*.sql` file in a submissions directory — the classroom batch
//! mode, backed by [`PreparedTarget`]'s memoization. `--jobs N` fans the
//! batch out over N worker threads against the one shared prepared
//! target (its memo state is sharded for concurrent grading); output is
//! identical to `--jobs 1`, in the same submission order. `--jobs 0` or
//! `--jobs auto` uses `std::thread::available_parallelism`.
//!
//! **fuzz** runs the differential-testing loop: generate a seeded
//! mutation corpus for a named workload schema (`beers`, `beers-course`,
//! `brass`, `dblp`, `students`, `tpch`), grade every pair, auto-apply the
//! emitted repairs, execute repaired vs. target on generated databases,
//! and print the classification taxonomy. The report on stdout is
//! deterministic for a given (schema, count, seed, instances) — identical
//! across `--jobs` settings; throughput goes to stderr. Exit code is `1`
//! if any case lands in the `unclassified` bucket, else `0`.
//!
//! **lint** runs the schema-aware static analyzer alone — no target
//! query, no solver: typed lints, aggregate-placement checks and
//! interval abstract interpretation over each file (see the
//! `qrhint-analysis` crate for the diagnostic catalogue). Exit `0` if
//! every file is clean, `4` if diagnostics were found.
//!
//! **serve** runs the long-lived grading daemon (see `qrhint-server`):
//! targets are registered over HTTP and stay hot — compiled once,
//! advice/grade requests ride the session layer's memo state. The first
//! stdout line is `qr-hint serving on http://ADDR` (with the resolved
//! ephemeral port for `--addr ...:0`); `POST /shutdown` drains
//! gracefully. Per-request access logs (request id, route, status,
//! latency, bytes) go to stderr at `info` level — `--log-level`
//! (`error|warn|info|debug|trace`, default `info`) filters them and
//! `--log-format json` switches from logfmt text to one JSON object
//! per line. `GET /metrics` serves Prometheus text exposition.
//!
//! **route** runs the scale-out router (see `qrhint_server::router`):
//! it consistent-hashes target ids across N backend `serve` daemons —
//! spawned as children (`--spawn N`, ephemeral ports) and/or joined
//! (`--backend ADDR`, repeatable) — forwards requests over pooled
//! keep-alive connections, health-checks every backend each
//! `--health-interval-ms`, and re-shards deterministically when a
//! backend dies or rejoins. The first stdout line is
//! `qr-hint routing on http://ADDR (N backends)`. `POST /shutdown`
//! drains the router and its *spawned* children; joined backends stay
//! up. Both serve and route take `--max-pending` (the bounded dispatch
//! queue behind the `429 Too Many Requests` + `Retry-After` overload
//! contract) and `--acceptor` (readiness-polled `event`, portable
//! `blocking`, or `auto`).
//!
//! **advise `--trace-out trace.json`** records hierarchical span
//! timings (session → stage → oracle → solver) during the advise and
//! writes them as Chrome trace-event JSON — open the file in
//! `chrome://tracing` or <https://ui.perfetto.dev> for a flame view of
//! where the wall-clock went.
//!
//! `--json` switches either mode to machine-readable output: the full
//! serde-serialized [`Advice`] plus the rendered hint strings.
//! `--extended` enables the multi-block front-end (footnote 2 of the
//! paper: WITH, aggregation-free FROM subqueries, non-outer JOINs);
//! `--rewrite-subqueries` additionally opts into the positive EXISTS/IN
//! join rewrite of §3 (duplicate-count caveat applies).
//!
//! Exit codes distinguish whose fault a failure is (the full contract
//! lives in [`qr_hint::exitcode`]):
//! `0` success · `1` internal/tool error · `2` usage error ·
//! `3` the **working/submitted** SQL is malformed or unsupported ·
//! `4` lint diagnostics found (`lint` mode only)
//! (graders can separate "student wrote bad SQL" from "tool bug").
//! In grade mode the codes apply batch-wide, independent of `--jobs`:
//! `1` if any submission hit a tool-internal error (or a file was
//! unreadable), else `3` if any submission was malformed/unsupported,
//! else `0` — individual failures are still reported in place and never
//! abort the batch.

use qr_hint::exitcode;
use qr_hint::prelude::*;
use qrhint_core::QrHintError;
use qrhint_sqlparse::parse_schema;
use serde::Serialize;
use std::process::ExitCode;

// The full contract (including `4` = lint findings) lives in
// [`qr_hint::exitcode`]; these aliases keep the match arms short.
const EXIT_INTERNAL: u8 = exitcode::INTERNAL;
const EXIT_USAGE: u8 = exitcode::USAGE;
const EXIT_BAD_WORKING: u8 = exitcode::BAD_WORKING;

struct CliError {
    msg: String,
    code: u8,
}

impl CliError {
    fn internal(msg: impl Into<String>) -> CliError {
        CliError { msg: msg.into(), code: EXIT_INTERNAL }
    }

    fn bad_working(msg: impl Into<String>) -> CliError {
        CliError { msg: msg.into(), code: EXIT_BAD_WORKING }
    }
}

enum Mode {
    Advise,
    Grade,
    Serve,
    Route,
    Fuzz,
    Lint,
}

struct Args {
    mode: Mode,
    /// advise/grade: the schema file (serve receives schemas over HTTP).
    schema: String,
    target: String,
    /// advise mode: the student's working query file.
    working: Option<String>,
    /// grade mode: directory of `*.sql` submissions.
    submissions: Option<String>,
    /// Worker threads for batches/connections (1 = sequential, 0 =
    /// available parallelism via `--jobs 0` or `--jobs auto`).
    jobs: usize,
    /// serve mode: bind address.
    addr: String,
    /// serve mode: registry entry capacity.
    max_targets: usize,
    /// serve mode: registry byte budget, in MiB (0 = unlimited).
    max_cache_mb: usize,
    /// serve/route: bounded dispatch queue; beyond it requests shed 429.
    max_pending: usize,
    /// serve/route: acceptor architecture.
    acceptor: qr_hint::server::AcceptorMode,
    /// route mode: backend `serve` children to spawn.
    spawn: usize,
    /// route mode: already-running backends to join (repeatable).
    backends: Vec<String>,
    /// route mode: virtual points per backend on the hash ring.
    replicas: usize,
    /// route mode: `/healthz` probe period in milliseconds.
    health_interval_ms: u64,
    /// fuzz mode: corpus size.
    count: usize,
    /// fuzz mode: corpus seed.
    seed: u64,
    /// fuzz mode: database instances per case.
    instances: usize,
    /// fuzz mode: write the corpus to a directory instead of grading it
    /// (schema DDL + base targets + mutant working queries, for `lint`).
    emit_corpus: Option<String>,
    /// advise mode: write a Chrome trace-event JSON span profile here.
    trace_out: Option<String>,
    /// serve mode: access-log format (default text/logfmt).
    log_format: qrhint_obs::LogFormat,
    /// serve mode: stderr log threshold (default info, so access logs
    /// are on; the library default of warn stays for the other modes).
    log_level: qrhint_obs::Level,
    /// lint mode: the `*.sql` files to analyze (positional).
    files: Vec<String>,
    interactive: bool,
    extended: bool,
    rewrite_subqueries: bool,
    json: bool,
}

const USAGE: &str = "usage: qr-hint [advise] --schema <schema.sql> --target <solution.sql> \
                     --working <student.sql> [--interactive] [--extended] \
                     [--rewrite-subqueries] [--json] [--trace-out <trace.json>]\n\
                     \x20      qr-hint grade --schema <schema.sql> --target <solution.sql> \
                     --submissions <dir> [--jobs <N|auto>] [--extended] \
                     [--rewrite-subqueries] [--json]\n\
                     \x20      qr-hint serve [--addr <host:port>] [--jobs <N|auto>] \
                     [--max-targets <N>] [--max-cache-mb <MB, 0=unlimited>] \
                     [--max-pending <N>] [--acceptor <auto|event|blocking>] \
                     [--log-format <text|json>] [--log-level <error|warn|info|debug|trace>]\n\
                     \x20      qr-hint route [--addr <host:port>] (--spawn <N> | \
                     --backend <host:port> ...) [--replicas <N>] \
                     [--health-interval-ms <MS>] [--max-pending <N>] \
                     [--acceptor <auto|event|blocking>] [--log-format <text|json>] \
                     [--log-level <error|warn|info|debug|trace>]\n\
                     \x20      qr-hint fuzz --schema <beers|beers-course|brass|dblp|students|tpch> \
                     [--count <N>] [--seed <N>] [--jobs <N|auto>] [--instances <N>] \
                     [--emit-corpus <dir>] [--json]\n\
                     \x20      qr-hint lint --schema <schema.sql> <file.sql>... [--extended] \
                     [--rewrite-subqueries] [--json]\n\
                     \x20      qr-hint --version";

fn parse_args() -> Result<Args, String> {
    let mut schema = None;
    let mut target = None;
    let mut working = None;
    let mut submissions = None;
    let mut jobs = 1usize;
    let mut addr: Option<String> = None;
    let mut max_targets = 64usize;
    let mut max_cache_mb = 256usize;
    let mut max_pending = 1024usize;
    let mut acceptor = qr_hint::server::AcceptorMode::Auto;
    let mut spawn = 0usize;
    let mut backends: Vec<String> = Vec::new();
    let mut replicas = 64usize;
    let mut health_interval_ms = 250u64;
    let mut count = 1000usize;
    let mut seed = 42u64;
    let mut instances = 3usize;
    let mut emit_corpus = None;
    let mut trace_out = None;
    let mut log_format = None;
    let mut log_level = None;
    let mut interactive = false;
    let mut extended = false;
    let mut rewrite_subqueries = false;
    let mut json = false;
    let mut mode = Mode::Advise;
    let mut it = std::env::args().skip(1).peekable();
    // Optional leading subcommand.
    match it.peek().map(String::as_str) {
        Some("advise") => {
            it.next();
        }
        Some("grade") => {
            mode = Mode::Grade;
            it.next();
        }
        Some("serve") => {
            mode = Mode::Serve;
            jobs = 0; // a daemon defaults to the hardware's parallelism
            it.next();
        }
        Some("route") => {
            mode = Mode::Route;
            jobs = 0;
            it.next();
        }
        Some("fuzz") => {
            mode = Mode::Fuzz;
            it.next();
        }
        Some("lint") => {
            mode = Mode::Lint;
            it.next();
        }
        _ => {}
    }
    let mut files: Vec<String> = Vec::new();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--schema" => schema = Some(it.next().ok_or("--schema needs a file")?),
            "--target" => target = Some(it.next().ok_or("--target needs a file")?),
            "--working" => working = Some(it.next().ok_or("--working needs a file")?),
            "--submissions" => {
                submissions = Some(it.next().ok_or("--submissions needs a directory")?)
            }
            "--jobs" | "-j" => {
                let n = it.next().ok_or("--jobs needs a thread count")?;
                // `auto` and `0` both mean "use available parallelism".
                jobs = if n == "auto" {
                    0
                } else {
                    n.parse::<usize>()
                        .map_err(|_| format!("--jobs needs a count or `auto`, got `{n}`"))?
                };
            }
            "--addr" => addr = Some(it.next().ok_or("--addr needs host:port")?),
            "--max-targets" => {
                let n = it.next().ok_or("--max-targets needs a count")?;
                max_targets = n
                    .parse::<usize>()
                    .ok()
                    .filter(|n| *n >= 1)
                    .ok_or_else(|| format!("--max-targets needs a positive integer, got `{n}`"))?;
            }
            "--max-cache-mb" => {
                let n = it.next().ok_or("--max-cache-mb needs a size")?;
                max_cache_mb = n
                    .parse::<usize>()
                    .map_err(|_| format!("--max-cache-mb needs an integer, got `{n}`"))?;
            }
            "--max-pending" => {
                let n = it.next().ok_or("--max-pending needs a queue bound")?;
                max_pending = n
                    .parse::<usize>()
                    .ok()
                    .filter(|n| *n >= 1)
                    .ok_or_else(|| format!("--max-pending needs a positive integer, got `{n}`"))?;
            }
            "--acceptor" => {
                let v = it.next().ok_or("--acceptor needs auto|event|blocking")?;
                acceptor = qr_hint::server::AcceptorMode::parse(&v)
                    .ok_or_else(|| format!("--acceptor needs auto|event|blocking, got `{v}`"))?;
            }
            "--spawn" => {
                let n = it.next().ok_or("--spawn needs a backend count")?;
                spawn = n
                    .parse::<usize>()
                    .ok()
                    .filter(|n| *n >= 1)
                    .ok_or_else(|| format!("--spawn needs a positive integer, got `{n}`"))?;
            }
            "--backend" => backends.push(it.next().ok_or("--backend needs host:port")?),
            "--replicas" => {
                let n = it.next().ok_or("--replicas needs a count")?;
                replicas = n
                    .parse::<usize>()
                    .ok()
                    .filter(|n| *n >= 1)
                    .ok_or_else(|| format!("--replicas needs a positive integer, got `{n}`"))?;
            }
            "--health-interval-ms" => {
                let n = it.next().ok_or("--health-interval-ms needs milliseconds")?;
                health_interval_ms = n
                    .parse::<u64>()
                    .ok()
                    .filter(|n| *n >= 1)
                    .ok_or_else(|| {
                        format!("--health-interval-ms needs a positive integer, got `{n}`")
                    })?;
            }
            "--count" => {
                let n = it.next().ok_or("--count needs a number of pairs")?;
                count = n
                    .parse::<usize>()
                    .ok()
                    .filter(|n| *n >= 1)
                    .ok_or_else(|| format!("--count needs a positive integer, got `{n}`"))?;
            }
            "--seed" => {
                let n = it.next().ok_or("--seed needs an integer")?;
                seed = n
                    .parse::<u64>()
                    .map_err(|_| format!("--seed needs an unsigned integer, got `{n}`"))?;
            }
            "--instances" => {
                let n = it.next().ok_or("--instances needs a count")?;
                instances = n
                    .parse::<usize>()
                    .ok()
                    .filter(|n| *n >= 1)
                    .ok_or_else(|| format!("--instances needs a positive integer, got `{n}`"))?;
            }
            "--emit-corpus" => {
                emit_corpus = Some(it.next().ok_or("--emit-corpus needs a directory")?)
            }
            "--trace-out" => trace_out = Some(it.next().ok_or("--trace-out needs a file")?),
            "--log-format" => {
                let v = it.next().ok_or("--log-format needs `text` or `json`")?;
                log_format = Some(
                    qrhint_obs::LogFormat::parse(&v).ok_or_else(|| {
                        format!("--log-format needs `text` or `json`, got `{v}`")
                    })?,
                );
            }
            "--log-level" => {
                let v = it.next().ok_or("--log-level needs a level name")?;
                log_level = Some(qrhint_obs::Level::parse(&v).ok_or_else(|| {
                    format!("--log-level needs error|warn|info|debug|trace, got `{v}`")
                })?);
            }
            "--interactive" | "-i" => interactive = true,
            "--extended" | "-x" => extended = true,
            "--rewrite-subqueries" => {
                extended = true;
                rewrite_subqueries = true;
            }
            "--json" => json = true,
            // --help/--version are intercepted in main() (success path).
            // lint takes its files positionally.
            other if matches!(mode, Mode::Lint) && !other.starts_with('-') => {
                files.push(other.to_string())
            }
            other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
        }
    }
    // serve receives schemas/targets over HTTP (POST /targets, where
    // `extended`/`rewrite_subqueries` are per-target request fields);
    // accepting the file-mode flags here and ignoring them would make
    // `serve --target t.sql` look like it pre-registered a target.
    let (schema, target) = match mode {
        Mode::Serve => {
            if schema.is_some()
                || target.is_some()
                || working.is_some()
                || submissions.is_some()
                || interactive
                || extended
                || json
            {
                return Err(format!(
                    "serve mode takes no file or output flags — targets are registered \
                     over HTTP (POST /targets)\n{USAGE}"
                ));
            }
            (String::new(), String::new())
        }
        Mode::Route => {
            if schema.is_some()
                || target.is_some()
                || working.is_some()
                || submissions.is_some()
                || interactive
                || extended
                || json
            {
                return Err(format!(
                    "route mode takes no file or output flags — targets are registered \
                     over HTTP (POST /targets)\n{USAGE}"
                ));
            }
            if spawn == 0 && backends.is_empty() {
                return Err(format!(
                    "route mode needs at least one backend: --spawn <N> and/or \
                     --backend <host:port>\n{USAGE}"
                ));
            }
            (String::new(), String::new())
        }
        Mode::Fuzz => {
            if target.is_some() || working.is_some() || submissions.is_some() || interactive {
                return Err(format!(
                    "fuzz mode takes a workload schema name plus corpus flags only\n{USAGE}"
                ));
            }
            let name = schema
                .ok_or_else(|| format!("fuzz mode requires --schema <workload name>\n{USAGE}"))?;
            if !qr_hint::workloads::mutate::SCHEMA_NAMES.contains(&name.as_str()) {
                return Err(format!(
                    "unknown workload schema `{name}` (expected one of: {})\n{USAGE}",
                    qr_hint::workloads::mutate::SCHEMA_NAMES.join(", ")
                ));
            }
            (name, String::new())
        }
        Mode::Lint => {
            if target.is_some() || working.is_some() || submissions.is_some() || interactive {
                return Err(format!(
                    "lint mode takes --schema plus positional SQL files only\n{USAGE}"
                ));
            }
            if files.is_empty() {
                return Err(format!("lint mode requires at least one SQL file\n{USAGE}"));
            }
            (
                schema.ok_or_else(|| format!("--schema is required\n{USAGE}"))?,
                String::new(),
            )
        }
        _ => (
            schema.ok_or_else(|| format!("--schema is required\n{USAGE}"))?,
            target.ok_or_else(|| format!("--target is required\n{USAGE}"))?,
        ),
    };
    if emit_corpus.is_some() && !matches!(mode, Mode::Fuzz) {
        return Err(format!("--emit-corpus only applies to fuzz mode\n{USAGE}"));
    }
    if trace_out.is_some() && !matches!(mode, Mode::Advise) {
        return Err(format!("--trace-out only applies to advise mode\n{USAGE}"));
    }
    if (log_format.is_some() || log_level.is_some())
        && !matches!(mode, Mode::Serve | Mode::Route)
    {
        return Err(format!(
            "--log-format/--log-level only apply to serve and route modes\n{USAGE}"
        ));
    }
    if (spawn > 0 || !backends.is_empty() || replicas != 64 || health_interval_ms != 250)
        && !matches!(mode, Mode::Route)
    {
        return Err(format!(
            "--spawn/--backend/--replicas/--health-interval-ms only apply to route mode\n{USAGE}"
        ));
    }
    match mode {
        Mode::Advise if working.is_none() => {
            return Err(format!("--working is required\n{USAGE}"))
        }
        Mode::Grade if submissions.is_none() => {
            return Err(format!("grade mode requires --submissions\n{USAGE}"))
        }
        _ => {}
    }
    // The router sits in front of `serve` daemons, so the two defaults
    // must not collide on one host.
    let addr = addr.unwrap_or_else(|| {
        if matches!(mode, Mode::Route) {
            "127.0.0.1:7979".to_string()
        } else {
            "127.0.0.1:7878".to_string()
        }
    });
    Ok(Args {
        mode,
        schema,
        target,
        working,
        submissions,
        jobs,
        addr,
        max_targets,
        max_cache_mb,
        max_pending,
        acceptor,
        spawn,
        backends,
        replicas,
        health_interval_ms,
        count,
        seed,
        instances,
        emit_corpus,
        trace_out,
        log_format: log_format.unwrap_or(qrhint_obs::LogFormat::Text),
        log_level: log_level.unwrap_or(qrhint_obs::Level::Info),
        files,
        interactive,
        extended,
        rewrite_subqueries,
        json,
    })
}

/// One graded submission in batch mode.
#[derive(Serialize)]
struct GradeEntry {
    file: String,
    ok: bool,
    /// Parse/resolve/unsupported error for this submission, if any.
    error: Option<String>,
    report: Option<AdviceReport>,
}

/// Batch-wide rollup for `grade --json`. Every field is derived from the
/// per-entry results, so the summary — like the entries — is
/// byte-identical across `--jobs` settings. (The session's prescreen
/// counters are *not* here for exactly that reason: cache-race timing
/// makes them jobs-dependent, so they go to stderr and the server's
/// stats endpoint instead.)
#[derive(Serialize)]
struct GradeSummary {
    submissions: usize,
    equivalent: usize,
    hinted: usize,
    malformed: usize,
    /// Total analyzer diagnostics across all graded submissions.
    diagnostics: usize,
    /// Submissions with at least one error-severity diagnostic.
    diagnostic_errors: usize,
}

#[derive(Serialize)]
struct GradeOutput {
    summary: GradeSummary,
    entries: Vec<GradeEntry>,
}

fn summarize(entries: &[GradeEntry]) -> GradeSummary {
    let equivalent =
        entries.iter().filter(|e| e.report.as_ref().is_some_and(|r| r.equivalent)).count();
    let malformed = entries.iter().filter(|e| !e.ok).count();
    GradeSummary {
        submissions: entries.len(),
        equivalent,
        hinted: entries.len() - equivalent - malformed,
        malformed,
        diagnostics: entries
            .iter()
            .filter_map(|e| e.report.as_ref())
            .map(|r| r.diagnostics.len())
            .sum(),
        diagnostic_errors: entries
            .iter()
            .filter_map(|e| e.report.as_ref())
            .filter(|r| qr_hint::analysis::has_errors(&r.diagnostics))
            .count(),
    }
}

fn read(path: &str) -> Result<String, CliError> {
    std::fs::read_to_string(path)
        .map_err(|e| CliError::internal(format!("cannot read {path}: {e}")))
}

/// Classify a pipeline error on the *working* side: the student's SQL
/// being malformed/unsupported is their problem (exit 3), anything else
/// is ours (exit 1).
fn working_error(e: QrHintError) -> CliError {
    match e {
        QrHintError::Parse(_) | QrHintError::Resolve(_) | QrHintError::Unsupported(_) => {
            CliError::bad_working(format!("working query: {e}"))
        }
        other => CliError::internal(format!("working query: {other}")),
    }
}

fn compile(args: &Args) -> Result<PreparedTarget, CliError> {
    let schema = parse_schema(&read(&args.schema)?)
        .map_err(|e| CliError::internal(format!("schema: {e}")))?;
    let qr = QrHint::new(schema);
    let opts = FlattenOptions { rewrite_positive_subqueries: args.rewrite_subqueries };
    let target_sql = read(&args.target)?;
    let prepared = if args.extended {
        qr.compile_target_extended(&target_sql, &opts)
    } else {
        qr.compile_target(&target_sql)
    };
    prepared.map_err(|e| CliError::internal(format!("target query: {e}")))
}

fn prepare_working(
    prepared: &PreparedTarget,
    args: &Args,
    sql: &str,
) -> Result<Query, QrHintError> {
    if args.extended {
        let opts = FlattenOptions { rewrite_positive_subqueries: args.rewrite_subqueries };
        prepared.prepare_extended(sql, &opts)
    } else {
        prepared.prepare(sql)
    }
}

fn emit_json<T: Serialize>(value: &T) -> Result<(), CliError> {
    let json = serde_json::to_string_pretty(value)
        .map_err(|e| CliError::internal(format!("JSON serialization failed: {e}")))?;
    println!("{json}");
    Ok(())
}

/// `advise --trace-out`: record span events around the whole advise
/// pipeline and write them as Chrome trace-event JSON. The trace is
/// written even when advising fails — a profile of the failing run is
/// exactly what one wants then — but the advise error stays the exit
/// status.
fn run_advise(args: &Args) -> Result<(), CliError> {
    let Some(path) = &args.trace_out else {
        return run_advise_inner(args);
    };
    qrhint_obs::span::enable_tracing();
    let result = run_advise_inner(args);
    qrhint_obs::span::disable_tracing();
    let (events, dropped) = qrhint_obs::span::take_events();
    if dropped > 0 {
        eprintln!("trace: {dropped} span(s) dropped (buffer full)");
    }
    let json = qrhint_obs::span::chrome_trace_json(&events);
    match std::fs::write(path, json) {
        Ok(()) => {
            eprintln!("trace: {} span(s) written to {path}", events.len());
            result
        }
        // An advise failure outranks the write failure as the reported
        // error (`and` keeps the first Err).
        Err(e) => result.and(Err(CliError::internal(format!("cannot write {path}: {e}")))),
    }
}

fn run_advise_inner(args: &Args) -> Result<(), CliError> {
    let prepared = compile(args)?;
    let working_sql = read(args.working.as_deref().expect("checked in parse_args"))?;
    let working = prepare_working(&prepared, args, &working_sql).map_err(working_error)?;

    if !args.interactive {
        let advice = prepared.advise(&working).map_err(|e| CliError::internal(e.to_string()))?;
        let diagnostics = prepared.lint(&working);
        if args.json {
            return emit_json(&AdviceReport::with_diagnostics(advice, diagnostics));
        }
        if advice.is_equivalent() {
            println!("✓ The working query is already equivalent to the target.");
        } else {
            println!("[1] stage {}:", advice.stage);
            for hint in &advice.hints {
                println!("  {hint}");
            }
        }
        if !diagnostics.is_empty() {
            println!("analyzer:");
            for d in &diagnostics {
                println!("  {d}");
            }
        }
        return Ok(());
    }

    // Interactive: the session loop, skipping cleared stages.
    let mut session = prepared.tutor(working);
    let mut reports = Vec::new();
    let mut round = 0usize;
    let cap = prepared.config().max_stage_applications;
    while !session.is_done() {
        round += 1;
        if round > cap {
            return Err(CliError::internal(format!(
                "did not converge within {cap} stage applications"
            )));
        }
        let advice = session.step().map_err(|e| CliError::internal(e.to_string()))?;
        if args.json {
            reports.push(AdviceReport::new(advice));
            continue;
        }
        if advice.is_equivalent() {
            if round == 1 {
                println!("✓ The working query is already equivalent to the target.");
            } else {
                println!("✓ Equivalent after {} stage(s).", round - 1);
                println!("Final query:\n  {}", session.working());
            }
        } else {
            println!("[{}] stage {}:", round, advice.stage);
            for hint in &advice.hints {
                println!("  {hint}");
            }
        }
    }
    if args.json {
        emit_json(&reports)?;
    }
    Ok(())
}

/// Grade one submission file. The second component classifies failures
/// for the batch-wide exit code: `0` graded, `EXIT_BAD_WORKING` the
/// student's SQL is malformed/unsupported, `EXIT_INTERNAL` tool error.
fn grade_one(prepared: &PreparedTarget, args: &Args, path: &std::path::Path) -> (GradeEntry, u8) {
    let file = path.display().to_string();
    match std::fs::read_to_string(path) {
        Err(e) => (
            GradeEntry {
                file,
                ok: false,
                error: Some(format!("cannot read: {e}")),
                report: None,
            },
            EXIT_INTERNAL,
        ),
        Ok(sql) => match prepare_working(prepared, args, &sql)
            .and_then(|q| prepared.advise(&q).map(|a| (q, a)))
        {
            Ok((q, advice)) => (
                GradeEntry {
                    file,
                    ok: true,
                    error: None,
                    report: Some(AdviceReport::with_diagnostics(advice, prepared.lint(&q))),
                },
                0,
            ),
            Err(e) => {
                let code = working_error(e.clone()).code;
                (
                    GradeEntry { file, ok: false, error: Some(e.to_string()), report: None },
                    code,
                )
            }
        },
    }
}

fn run_grade(args: &Args) -> Result<u8, CliError> {
    let prepared = compile(args)?;
    let dir = args.submissions.as_deref().expect("checked in parse_args");
    let mut files: Vec<std::path::PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| CliError::internal(format!("cannot read {dir}: {e}")))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "sql"))
        .collect();
    files.sort();
    if files.is_empty() {
        return Err(CliError::internal(format!("no *.sql submissions in {dir}")));
    }

    // The prepared target's memo state is sharded for concurrency, so
    // the workers share it directly; results come back in file order
    // and are identical to the sequential (`--jobs 1`) output.
    let jobs = qrhint_core::parallel::resolve_jobs(args.jobs);
    let graded = qrhint_core::parallel::run_indexed(files.len(), jobs, |i| {
        grade_one(&prepared, args, &files[i])
    });
    // Batch-wide exit code: any internal error wins over any malformed
    // submission, which wins over success.
    let exit = if graded.iter().any(|(_, c)| *c == EXIT_INTERNAL) {
        EXIT_INTERNAL
    } else if graded.iter().any(|(_, c)| *c == EXIT_BAD_WORKING) {
        EXIT_BAD_WORKING
    } else {
        0
    };
    let entries: Vec<GradeEntry> = graded.into_iter().map(|(entry, _)| entry).collect();
    // Prescreen counters are jobs-dependent (see [`GradeSummary`]), so
    // they ride stderr with the other non-deterministic reporting.
    let stats = prepared.stats();
    eprintln!(
        "prescreen: {} solver call(s) answered statically, {} stage check(s) short-circuited",
        stats.solver_calls_skipped, stats.stages_short_circuited
    );

    if args.json {
        emit_json(&GradeOutput { summary: summarize(&entries), entries })?;
        return Ok(exit);
    }
    let summary = summarize(&entries);
    for e in &entries {
        match (&e.report, &e.error) {
            (Some(r), _) if r.equivalent => println!("✓ {}", e.file),
            (Some(r), _) => {
                println!("✗ {} — stage {}:", e.file, r.stage);
                for hint in &r.rendered_hints {
                    println!("    {hint}");
                }
            }
            (None, Some(err)) => println!("! {} — {err}", e.file),
            (None, None) => unreachable!("entry without report or error"),
        }
    }
    println!(
        "\n{} submission(s): {} equivalent, {} hinted, {} malformed, {} diagnostic(s)",
        summary.submissions, summary.equivalent, summary.hinted, summary.malformed,
        summary.diagnostics
    );
    Ok(exit)
}

/// The `lint` subcommand: schema-aware static analysis only — no target,
/// no solver. Exit codes: `0` every file clean, `4` diagnostics found,
/// `3` a file's SQL is malformed/unsupported, `1` a file is unreadable
/// (folded batch-wide by [`exitcode::worst`]).
fn run_lint(args: &Args) -> Result<u8, CliError> {
    use qr_hint::ast::resolve::resolve_query;

    #[derive(Serialize)]
    struct LintEntry {
        file: String,
        ok: bool,
        error: Option<String>,
        clean: bool,
        errors: bool,
        diagnostics: Vec<qr_hint::analysis::Diagnostic>,
    }

    let schema = parse_schema(&read(&args.schema)?)
        .map_err(|e| CliError::internal(format!("schema: {e}")))?;
    let opts = FlattenOptions { rewrite_positive_subqueries: args.rewrite_subqueries };
    let mut entries = Vec::new();
    let mut codes = Vec::new();
    for file in &args.files {
        let entry = match std::fs::read_to_string(file) {
            Err(e) => {
                codes.push(exitcode::INTERNAL);
                LintEntry {
                    file: file.clone(),
                    ok: false,
                    error: Some(format!("cannot read: {e}")),
                    clean: false,
                    errors: false,
                    diagnostics: Vec::new(),
                }
            }
            Ok(sql) => {
                let parsed = if args.extended {
                    parse_query_extended(&sql, &opts).map_err(QrHintError::from)
                } else {
                    parse_query(&sql).map_err(QrHintError::from)
                };
                match parsed.and_then(|q| Ok(resolve_query(&schema, &q)?)) {
                    Ok(q) => {
                        let diagnostics = qr_hint::analysis::analyze(&schema, &q);
                        codes.push(if diagnostics.is_empty() {
                            exitcode::SUCCESS
                        } else {
                            exitcode::LINT_FINDINGS
                        });
                        LintEntry {
                            file: file.clone(),
                            ok: true,
                            error: None,
                            clean: diagnostics.is_empty(),
                            errors: qr_hint::analysis::has_errors(&diagnostics),
                            diagnostics,
                        }
                    }
                    Err(e) => {
                        codes.push(working_error(e.clone()).code);
                        LintEntry {
                            file: file.clone(),
                            ok: false,
                            error: Some(e.to_string()),
                            clean: false,
                            errors: false,
                            diagnostics: Vec::new(),
                        }
                    }
                }
            }
        };
        entries.push(entry);
    }

    if args.json {
        emit_json(&entries)?;
    } else {
        let mut total = 0usize;
        for e in &entries {
            match &e.error {
                Some(err) => println!("! {} — {err}", e.file),
                None if e.clean => println!("✓ {}", e.file),
                None => {
                    total += e.diagnostics.len();
                    for d in &e.diagnostics {
                        println!("{}: {d}", e.file);
                    }
                }
            }
        }
        println!(
            "\n{} file(s): {} diagnostic(s), {} with errors",
            entries.len(),
            total,
            entries.iter().filter(|e| e.errors).count()
        );
    }
    Ok(exitcode::worst(codes))
}

/// The `fuzz` subcommand: seeded mutation corpus → grade → repair →
/// execute → classify. Stdout carries only the deterministic report
/// (text or `--json`); wall-clock throughput goes to stderr so output
/// can be diffed across `--jobs` settings.
fn run_fuzz(args: &Args) -> Result<u8, CliError> {
    use qr_hint::workloads::differential::{run, RunConfig};
    let cfg = RunConfig { jobs: args.jobs, instances: args.instances };
    let started = std::time::Instant::now();
    // Corpus-export mode: write the deterministic corpus for offline
    // tooling (CI's lint-smoke job points `qr-hint lint` at it) and
    // skip grading entirely.
    if let Some(dir) = &args.emit_corpus {
        return emit_fuzz_corpus(&args.schema, args.count, args.seed, dir);
    }
    // An unknown schema name is the caller's mistake, not a tool error:
    // exit 2, consistent with the `parse_args` validation (this path is
    // the backstop in case the two schema lists ever drift).
    let report = run(&args.schema, args.count, args.seed, &cfg).ok_or(CliError {
        msg: format!("unknown workload schema {}\n{USAGE}", args.schema),
        code: EXIT_USAGE,
    })?;
    let elapsed = started.elapsed().as_secs_f64();
    eprintln!(
        "fuzzed {} pairs in {:.2}s ({:.0} pairs/s)",
        report.total,
        elapsed,
        report.total as f64 / elapsed.max(1e-9)
    );
    if args.json {
        emit_json(&report)?;
    } else {
        println!(
            "schema {} · {} pairs · seed {} · {} instance(s) per pair",
            report.schema, report.total, report.seed, report.exec_instances
        );
        for (class, n) in &report.classes {
            println!("  {class:<22} {n}");
        }
        for d in &report.divergent {
            println!("divergent {} [{}]: {}", d.id, d.class, d.detail);
            println!("  target:  {}", d.target_sql);
            println!("  working: {}", d.working_sql);
        }
        if report.divergent_truncated {
            println!("(divergent list truncated at {})", report.divergent.len());
        }
    }
    Ok(if report.unclassified > 0 { EXIT_INTERNAL } else { 0 })
}

/// `fuzz --emit-corpus <dir>`: materialize the seeded corpus on disk —
/// `schema.sql` (DDL that round-trips the schema parser),
/// `targets/<base>.sql` (the reference queries; analyzer-clean by the
/// no-false-positives property), and `cases/<id>.sql` (the mutant
/// working queries). Layout is consumed by CI's lint-smoke job.
fn emit_fuzz_corpus(schema: &str, count: usize, seed: u64, dir: &str) -> Result<u8, CliError> {
    use qr_hint::workloads::mutate::Fuzzer;
    let fuzzer = Fuzzer::for_schema(schema).ok_or(CliError {
        msg: format!("unknown workload schema {schema}\n{USAGE}"),
        code: EXIT_USAGE,
    })?;
    let base = std::path::Path::new(dir);
    let write = |rel: std::path::PathBuf, contents: String| -> Result<(), CliError> {
        std::fs::write(&rel, contents)
            .map_err(|e| CliError::internal(format!("write {}: {e}", rel.display())))
    };
    for sub in ["targets", "cases"] {
        std::fs::create_dir_all(base.join(sub))
            .map_err(|e| CliError::internal(format!("create {dir}/{sub}: {e}")))?;
    }
    write(base.join("schema.sql"), fuzzer.schema().to_ddl())?;
    for (id, target) in fuzzer.bases() {
        write(base.join("targets").join(format!("{id}.sql")), format!("{target}\n"))?;
    }
    let cases = fuzzer.generate(count, seed);
    for case in &cases {
        write(base.join("cases").join(format!("{}.sql", case.id)), format!("{}\n", case.working))?;
    }
    eprintln!(
        "emitted {} corpus to {dir}: schema.sql, {} target(s), {} case(s)",
        schema,
        fuzzer.bases().len(),
        cases.len()
    );
    Ok(exitcode::SUCCESS)
}

/// The `serve` subcommand: bind, announce the resolved address on the
/// first stdout line (scripts and the CI smoke job parse it), then
/// block until a `POST /shutdown` drains the daemon.
fn run_serve(args: &Args) -> Result<(), CliError> {
    // A daemon wants its access logs: raise the library's quiet `warn`
    // default to `info` unless the operator said otherwise.
    qrhint_obs::log::set_format(args.log_format);
    qrhint_obs::log::set_level(args.log_level);
    let cfg = ServerConfig {
        addr: args.addr.clone(),
        workers: args.jobs,
        service: ServiceConfig {
            jobs: args.jobs,
            registry: qr_hint::server::RegistryConfig {
                max_targets: args.max_targets,
                max_cache_bytes: args.max_cache_mb * 1024 * 1024,
            },
        },
        max_pending: args.max_pending,
        acceptor: args.acceptor,
        ..ServerConfig::default()
    };
    let server = Server::bind(cfg)
        .map_err(|e| CliError::internal(format!("cannot bind {}: {e}", args.addr)))?;
    println!("qr-hint serving on http://{}", server.addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    server
        .run()
        .map_err(|e| CliError::internal(format!("server error: {e}")))?;
    println!("qr-hint drained; bye");
    Ok(())
}

/// The `route` subcommand: spawn/join backends, bind the router,
/// announce the resolved address on the first stdout line (scripts and
/// the CI smoke job parse it), then block until a `POST /shutdown`
/// drains the router and its spawned children.
fn run_route(args: &Args) -> Result<(), CliError> {
    use qr_hint::server::router::{Router, RouterConfig};
    qrhint_obs::log::set_format(args.log_format);
    qrhint_obs::log::set_level(args.log_level);
    let mut backends = Vec::with_capacity(args.backends.len());
    for b in &args.backends {
        backends.push(b.parse().map_err(|e| CliError {
            msg: format!("--backend `{b}` is not host:port: {e}"),
            code: EXIT_USAGE,
        })?);
    }
    let cfg = RouterConfig {
        addr: args.addr.clone(),
        backends,
        spawn: args.spawn,
        replicas: args.replicas,
        health_interval: std::time::Duration::from_millis(args.health_interval_ms),
        workers: args.jobs,
        max_pending: args.max_pending,
        acceptor: args.acceptor,
        ..RouterConfig::default()
    };
    let router = Router::start(cfg)
        .map_err(|e| CliError::internal(format!("cannot start router on {}: {e}", args.addr)))?;
    println!(
        "qr-hint routing on http://{} ({} backends)",
        router.addr(),
        router.backend_addrs().len()
    );
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    router
        .run()
        .map_err(|e| CliError::internal(format!("router error: {e}")))?;
    println!("qr-hint router drained; bye");
    Ok(())
}

fn main() -> ExitCode {
    // `--version`/`--help` anywhere on the line: print to stdout, exit 0.
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.iter().any(|a| a == "--version" || a == "-V") {
        println!("qr-hint {}", env!("CARGO_PKG_VERSION"));
        return ExitCode::SUCCESS;
    }
    if argv.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    match parse_args() {
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::from(EXIT_USAGE)
        }
        Ok(args) => {
            let result = match args.mode {
                Mode::Advise => run_advise(&args).map(|()| 0),
                Mode::Grade => run_grade(&args),
                Mode::Serve => run_serve(&args).map(|()| 0),
                Mode::Route => run_route(&args).map(|()| 0),
                Mode::Fuzz => run_fuzz(&args),
                Mode::Lint => run_lint(&args),
            };
            match result {
                Ok(code) => ExitCode::from(code),
                Err(e) => {
                    eprintln!("error: {}", e.msg);
                    ExitCode::from(e.code)
                }
            }
        }
    }
}

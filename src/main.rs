//! `qr-hint` command-line interface.
//!
//! ```text
//! qr-hint [advise] --schema schema.sql --target solution.sql --working student.sql
//!         [--interactive] [--extended] [--rewrite-subqueries] [--json]
//! qr-hint grade --schema schema.sql --target solution.sql --submissions dir/
//!         [--jobs N|auto] [--extended] [--rewrite-subqueries] [--json]
//! qr-hint serve [--addr HOST:PORT] [--jobs N|auto] [--max-targets N]
//!         [--max-cache-mb MB]
//! qr-hint fuzz --schema NAME [--count N] [--seed N] [--jobs N|auto]
//!         [--instances N] [--json]
//! qr-hint --version
//! ```
//!
//! **advise** (the default mode) prints the hints for the first failing
//! stage; with `--interactive`, auto-applies each stage's repair and keeps
//! going until the working query is equivalent to the target (showing
//! every hint on the way). **grade** compiles the target once and grades
//! every `*.sql` file in a submissions directory — the classroom batch
//! mode, backed by [`PreparedTarget`]'s memoization. `--jobs N` fans the
//! batch out over N worker threads against the one shared prepared
//! target (its memo state is sharded for concurrent grading); output is
//! identical to `--jobs 1`, in the same submission order. `--jobs 0` or
//! `--jobs auto` uses `std::thread::available_parallelism`.
//!
//! **fuzz** runs the differential-testing loop: generate a seeded
//! mutation corpus for a named workload schema (`beers`, `beers-course`,
//! `brass`, `dblp`, `students`, `tpch`), grade every pair, auto-apply the
//! emitted repairs, execute repaired vs. target on generated databases,
//! and print the classification taxonomy. The report on stdout is
//! deterministic for a given (schema, count, seed, instances) — identical
//! across `--jobs` settings; throughput goes to stderr. Exit code is `1`
//! if any case lands in the `unclassified` bucket, else `0`.
//!
//! **serve** runs the long-lived grading daemon (see `qrhint-server`):
//! targets are registered over HTTP and stay hot — compiled once,
//! advice/grade requests ride the session layer's memo state. The first
//! stdout line is `qr-hint serving on http://ADDR` (with the resolved
//! ephemeral port for `--addr ...:0`); `POST /shutdown` drains
//! gracefully.
//!
//! `--json` switches either mode to machine-readable output: the full
//! serde-serialized [`Advice`] plus the rendered hint strings.
//! `--extended` enables the multi-block front-end (footnote 2 of the
//! paper: WITH, aggregation-free FROM subqueries, non-outer JOINs);
//! `--rewrite-subqueries` additionally opts into the positive EXISTS/IN
//! join rewrite of §3 (duplicate-count caveat applies).
//!
//! Exit codes distinguish whose fault a failure is:
//! `0` success · `1` internal/tool error · `2` usage error ·
//! `3` the **working/submitted** SQL is malformed or unsupported
//! (graders can separate "student wrote bad SQL" from "tool bug").
//! In grade mode the codes apply batch-wide, independent of `--jobs`:
//! `1` if any submission hit a tool-internal error (or a file was
//! unreadable), else `3` if any submission was malformed/unsupported,
//! else `0` — individual failures are still reported in place and never
//! abort the batch.

use qr_hint::prelude::*;
use qrhint_core::QrHintError;
use qrhint_sqlparse::parse_schema;
use serde::Serialize;
use std::process::ExitCode;

const EXIT_INTERNAL: u8 = 1;
const EXIT_USAGE: u8 = 2;
const EXIT_BAD_WORKING: u8 = 3;

struct CliError {
    msg: String,
    code: u8,
}

impl CliError {
    fn internal(msg: impl Into<String>) -> CliError {
        CliError { msg: msg.into(), code: EXIT_INTERNAL }
    }

    fn bad_working(msg: impl Into<String>) -> CliError {
        CliError { msg: msg.into(), code: EXIT_BAD_WORKING }
    }
}

enum Mode {
    Advise,
    Grade,
    Serve,
    Fuzz,
}

struct Args {
    mode: Mode,
    /// advise/grade: the schema file (serve receives schemas over HTTP).
    schema: String,
    target: String,
    /// advise mode: the student's working query file.
    working: Option<String>,
    /// grade mode: directory of `*.sql` submissions.
    submissions: Option<String>,
    /// Worker threads for batches/connections (1 = sequential, 0 =
    /// available parallelism via `--jobs 0` or `--jobs auto`).
    jobs: usize,
    /// serve mode: bind address.
    addr: String,
    /// serve mode: registry entry capacity.
    max_targets: usize,
    /// serve mode: registry byte budget, in MiB (0 = unlimited).
    max_cache_mb: usize,
    /// fuzz mode: corpus size.
    count: usize,
    /// fuzz mode: corpus seed.
    seed: u64,
    /// fuzz mode: database instances per case.
    instances: usize,
    interactive: bool,
    extended: bool,
    rewrite_subqueries: bool,
    json: bool,
}

const USAGE: &str = "usage: qr-hint [advise] --schema <schema.sql> --target <solution.sql> \
                     --working <student.sql> [--interactive] [--extended] \
                     [--rewrite-subqueries] [--json]\n\
                     \x20      qr-hint grade --schema <schema.sql> --target <solution.sql> \
                     --submissions <dir> [--jobs <N|auto>] [--extended] \
                     [--rewrite-subqueries] [--json]\n\
                     \x20      qr-hint serve [--addr <host:port>] [--jobs <N|auto>] \
                     [--max-targets <N>] [--max-cache-mb <MB, 0=unlimited>]\n\
                     \x20      qr-hint fuzz --schema <beers|beers-course|brass|dblp|students|tpch> \
                     [--count <N>] [--seed <N>] [--jobs <N|auto>] [--instances <N>] [--json]\n\
                     \x20      qr-hint --version";

fn parse_args() -> Result<Args, String> {
    let mut schema = None;
    let mut target = None;
    let mut working = None;
    let mut submissions = None;
    let mut jobs = 1usize;
    let mut addr = "127.0.0.1:7878".to_string();
    let mut max_targets = 64usize;
    let mut max_cache_mb = 256usize;
    let mut count = 1000usize;
    let mut seed = 42u64;
    let mut instances = 3usize;
    let mut interactive = false;
    let mut extended = false;
    let mut rewrite_subqueries = false;
    let mut json = false;
    let mut mode = Mode::Advise;
    let mut it = std::env::args().skip(1).peekable();
    // Optional leading subcommand.
    match it.peek().map(String::as_str) {
        Some("advise") => {
            it.next();
        }
        Some("grade") => {
            mode = Mode::Grade;
            it.next();
        }
        Some("serve") => {
            mode = Mode::Serve;
            jobs = 0; // a daemon defaults to the hardware's parallelism
            it.next();
        }
        Some("fuzz") => {
            mode = Mode::Fuzz;
            it.next();
        }
        _ => {}
    }
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--schema" => schema = Some(it.next().ok_or("--schema needs a file")?),
            "--target" => target = Some(it.next().ok_or("--target needs a file")?),
            "--working" => working = Some(it.next().ok_or("--working needs a file")?),
            "--submissions" => {
                submissions = Some(it.next().ok_or("--submissions needs a directory")?)
            }
            "--jobs" | "-j" => {
                let n = it.next().ok_or("--jobs needs a thread count")?;
                // `auto` and `0` both mean "use available parallelism".
                jobs = if n == "auto" {
                    0
                } else {
                    n.parse::<usize>()
                        .map_err(|_| format!("--jobs needs a count or `auto`, got `{n}`"))?
                };
            }
            "--addr" => addr = it.next().ok_or("--addr needs host:port")?,
            "--max-targets" => {
                let n = it.next().ok_or("--max-targets needs a count")?;
                max_targets = n
                    .parse::<usize>()
                    .ok()
                    .filter(|n| *n >= 1)
                    .ok_or_else(|| format!("--max-targets needs a positive integer, got `{n}`"))?;
            }
            "--max-cache-mb" => {
                let n = it.next().ok_or("--max-cache-mb needs a size")?;
                max_cache_mb = n
                    .parse::<usize>()
                    .map_err(|_| format!("--max-cache-mb needs an integer, got `{n}`"))?;
            }
            "--count" => {
                let n = it.next().ok_or("--count needs a number of pairs")?;
                count = n
                    .parse::<usize>()
                    .ok()
                    .filter(|n| *n >= 1)
                    .ok_or_else(|| format!("--count needs a positive integer, got `{n}`"))?;
            }
            "--seed" => {
                let n = it.next().ok_or("--seed needs an integer")?;
                seed = n
                    .parse::<u64>()
                    .map_err(|_| format!("--seed needs an unsigned integer, got `{n}`"))?;
            }
            "--instances" => {
                let n = it.next().ok_or("--instances needs a count")?;
                instances = n
                    .parse::<usize>()
                    .ok()
                    .filter(|n| *n >= 1)
                    .ok_or_else(|| format!("--instances needs a positive integer, got `{n}`"))?;
            }
            "--interactive" | "-i" => interactive = true,
            "--extended" | "-x" => extended = true,
            "--rewrite-subqueries" => {
                extended = true;
                rewrite_subqueries = true;
            }
            "--json" => json = true,
            // --help/--version are intercepted in main() (success path).
            other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
        }
    }
    // serve receives schemas/targets over HTTP (POST /targets, where
    // `extended`/`rewrite_subqueries` are per-target request fields);
    // accepting the file-mode flags here and ignoring them would make
    // `serve --target t.sql` look like it pre-registered a target.
    let (schema, target) = match mode {
        Mode::Serve => {
            if schema.is_some()
                || target.is_some()
                || working.is_some()
                || submissions.is_some()
                || interactive
                || extended
                || json
            {
                return Err(format!(
                    "serve mode takes no file or output flags — targets are registered \
                     over HTTP (POST /targets)\n{USAGE}"
                ));
            }
            (String::new(), String::new())
        }
        Mode::Fuzz => {
            if target.is_some() || working.is_some() || submissions.is_some() || interactive {
                return Err(format!(
                    "fuzz mode takes a workload schema name plus corpus flags only\n{USAGE}"
                ));
            }
            let name = schema
                .ok_or_else(|| format!("fuzz mode requires --schema <workload name>\n{USAGE}"))?;
            if !qr_hint::workloads::mutate::SCHEMA_NAMES.contains(&name.as_str()) {
                return Err(format!(
                    "unknown workload schema `{name}` (expected one of: {})\n{USAGE}",
                    qr_hint::workloads::mutate::SCHEMA_NAMES.join(", ")
                ));
            }
            (name, String::new())
        }
        _ => (
            schema.ok_or_else(|| format!("--schema is required\n{USAGE}"))?,
            target.ok_or_else(|| format!("--target is required\n{USAGE}"))?,
        ),
    };
    match mode {
        Mode::Advise if working.is_none() => {
            return Err(format!("--working is required\n{USAGE}"))
        }
        Mode::Grade if submissions.is_none() => {
            return Err(format!("grade mode requires --submissions\n{USAGE}"))
        }
        _ => {}
    }
    Ok(Args {
        mode,
        schema,
        target,
        working,
        submissions,
        jobs,
        addr,
        max_targets,
        max_cache_mb,
        count,
        seed,
        instances,
        interactive,
        extended,
        rewrite_subqueries,
        json,
    })
}

/// One graded submission in batch mode.
#[derive(Serialize)]
struct GradeEntry {
    file: String,
    ok: bool,
    /// Parse/resolve/unsupported error for this submission, if any.
    error: Option<String>,
    report: Option<AdviceReport>,
}

fn read(path: &str) -> Result<String, CliError> {
    std::fs::read_to_string(path)
        .map_err(|e| CliError::internal(format!("cannot read {path}: {e}")))
}

/// Classify a pipeline error on the *working* side: the student's SQL
/// being malformed/unsupported is their problem (exit 3), anything else
/// is ours (exit 1).
fn working_error(e: QrHintError) -> CliError {
    match e {
        QrHintError::Parse(_) | QrHintError::Resolve(_) | QrHintError::Unsupported(_) => {
            CliError::bad_working(format!("working query: {e}"))
        }
        other => CliError::internal(format!("working query: {other}")),
    }
}

fn compile(args: &Args) -> Result<PreparedTarget, CliError> {
    let schema = parse_schema(&read(&args.schema)?)
        .map_err(|e| CliError::internal(format!("schema: {e}")))?;
    let qr = QrHint::new(schema);
    let opts = FlattenOptions { rewrite_positive_subqueries: args.rewrite_subqueries };
    let target_sql = read(&args.target)?;
    let prepared = if args.extended {
        qr.compile_target_extended(&target_sql, &opts)
    } else {
        qr.compile_target(&target_sql)
    };
    prepared.map_err(|e| CliError::internal(format!("target query: {e}")))
}

fn prepare_working(
    prepared: &PreparedTarget,
    args: &Args,
    sql: &str,
) -> Result<Query, QrHintError> {
    if args.extended {
        let opts = FlattenOptions { rewrite_positive_subqueries: args.rewrite_subqueries };
        prepared.prepare_extended(sql, &opts)
    } else {
        prepared.prepare(sql)
    }
}

fn emit_json<T: Serialize>(value: &T) -> Result<(), CliError> {
    let json = serde_json::to_string_pretty(value)
        .map_err(|e| CliError::internal(format!("JSON serialization failed: {e}")))?;
    println!("{json}");
    Ok(())
}

fn run_advise(args: &Args) -> Result<(), CliError> {
    let prepared = compile(args)?;
    let working_sql = read(args.working.as_deref().expect("checked in parse_args"))?;
    let working = prepare_working(&prepared, args, &working_sql).map_err(working_error)?;

    if !args.interactive {
        let advice = prepared.advise(&working).map_err(|e| CliError::internal(e.to_string()))?;
        if args.json {
            return emit_json(&AdviceReport::new(advice));
        }
        if advice.is_equivalent() {
            println!("✓ The working query is already equivalent to the target.");
        } else {
            println!("[1] stage {}:", advice.stage);
            for hint in &advice.hints {
                println!("  {hint}");
            }
        }
        return Ok(());
    }

    // Interactive: the session loop, skipping cleared stages.
    let mut session = prepared.tutor(working);
    let mut reports = Vec::new();
    let mut round = 0usize;
    let cap = prepared.config().max_stage_applications;
    while !session.is_done() {
        round += 1;
        if round > cap {
            return Err(CliError::internal(format!(
                "did not converge within {cap} stage applications"
            )));
        }
        let advice = session.step().map_err(|e| CliError::internal(e.to_string()))?;
        if args.json {
            reports.push(AdviceReport::new(advice));
            continue;
        }
        if advice.is_equivalent() {
            if round == 1 {
                println!("✓ The working query is already equivalent to the target.");
            } else {
                println!("✓ Equivalent after {} stage(s).", round - 1);
                println!("Final query:\n  {}", session.working());
            }
        } else {
            println!("[{}] stage {}:", round, advice.stage);
            for hint in &advice.hints {
                println!("  {hint}");
            }
        }
    }
    if args.json {
        emit_json(&reports)?;
    }
    Ok(())
}

/// Grade one submission file. The second component classifies failures
/// for the batch-wide exit code: `0` graded, `EXIT_BAD_WORKING` the
/// student's SQL is malformed/unsupported, `EXIT_INTERNAL` tool error.
fn grade_one(prepared: &PreparedTarget, args: &Args, path: &std::path::Path) -> (GradeEntry, u8) {
    let file = path.display().to_string();
    match std::fs::read_to_string(path) {
        Err(e) => (
            GradeEntry {
                file,
                ok: false,
                error: Some(format!("cannot read: {e}")),
                report: None,
            },
            EXIT_INTERNAL,
        ),
        Ok(sql) => match prepare_working(prepared, args, &sql).and_then(|q| prepared.advise(&q))
        {
            Ok(advice) => (
                GradeEntry {
                    file,
                    ok: true,
                    error: None,
                    report: Some(AdviceReport::new(advice)),
                },
                0,
            ),
            Err(e) => {
                let code = working_error(e.clone()).code;
                (
                    GradeEntry { file, ok: false, error: Some(e.to_string()), report: None },
                    code,
                )
            }
        },
    }
}

fn run_grade(args: &Args) -> Result<u8, CliError> {
    let prepared = compile(args)?;
    let dir = args.submissions.as_deref().expect("checked in parse_args");
    let mut files: Vec<std::path::PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| CliError::internal(format!("cannot read {dir}: {e}")))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "sql"))
        .collect();
    files.sort();
    if files.is_empty() {
        return Err(CliError::internal(format!("no *.sql submissions in {dir}")));
    }

    // The prepared target's memo state is sharded for concurrency, so
    // the workers share it directly; results come back in file order
    // and are identical to the sequential (`--jobs 1`) output.
    let jobs = qrhint_core::parallel::resolve_jobs(args.jobs);
    let graded = qrhint_core::parallel::run_indexed(files.len(), jobs, |i| {
        grade_one(&prepared, args, &files[i])
    });
    // Batch-wide exit code: any internal error wins over any malformed
    // submission, which wins over success.
    let exit = if graded.iter().any(|(_, c)| *c == EXIT_INTERNAL) {
        EXIT_INTERNAL
    } else if graded.iter().any(|(_, c)| *c == EXIT_BAD_WORKING) {
        EXIT_BAD_WORKING
    } else {
        0
    };
    let entries: Vec<GradeEntry> = graded.into_iter().map(|(entry, _)| entry).collect();

    if args.json {
        emit_json(&entries)?;
        return Ok(exit);
    }
    let equivalent =
        entries.iter().filter(|e| e.report.as_ref().is_some_and(|r| r.equivalent)).count();
    let malformed = entries.iter().filter(|e| !e.ok).count();
    for e in &entries {
        match (&e.report, &e.error) {
            (Some(r), _) if r.equivalent => println!("✓ {}", e.file),
            (Some(r), _) => {
                println!("✗ {} — stage {}:", e.file, r.stage);
                for hint in &r.rendered_hints {
                    println!("    {hint}");
                }
            }
            (None, Some(err)) => println!("! {} — {err}", e.file),
            (None, None) => unreachable!("entry without report or error"),
        }
    }
    println!(
        "\n{} submission(s): {} equivalent, {} hinted, {} malformed",
        entries.len(),
        equivalent,
        entries.len() - equivalent - malformed,
        malformed
    );
    Ok(exit)
}

/// The `fuzz` subcommand: seeded mutation corpus → grade → repair →
/// execute → classify. Stdout carries only the deterministic report
/// (text or `--json`); wall-clock throughput goes to stderr so output
/// can be diffed across `--jobs` settings.
fn run_fuzz(args: &Args) -> Result<u8, CliError> {
    use qr_hint::workloads::differential::{run, RunConfig};
    let cfg = RunConfig { jobs: args.jobs, instances: args.instances };
    let started = std::time::Instant::now();
    let report = run(&args.schema, args.count, args.seed, &cfg)
        .ok_or_else(|| CliError::internal(format!("unknown workload schema {}", args.schema)))?;
    let elapsed = started.elapsed().as_secs_f64();
    eprintln!(
        "fuzzed {} pairs in {:.2}s ({:.0} pairs/s)",
        report.total,
        elapsed,
        report.total as f64 / elapsed.max(1e-9)
    );
    if args.json {
        emit_json(&report)?;
    } else {
        println!(
            "schema {} · {} pairs · seed {} · {} instance(s) per pair",
            report.schema, report.total, report.seed, report.exec_instances
        );
        for (class, n) in &report.classes {
            println!("  {class:<22} {n}");
        }
        for d in &report.divergent {
            println!("divergent {} [{}]: {}", d.id, d.class, d.detail);
            println!("  target:  {}", d.target_sql);
            println!("  working: {}", d.working_sql);
        }
        if report.divergent_truncated {
            println!("(divergent list truncated at {})", report.divergent.len());
        }
    }
    Ok(if report.unclassified > 0 { EXIT_INTERNAL } else { 0 })
}

/// The `serve` subcommand: bind, announce the resolved address on the
/// first stdout line (scripts and the CI smoke job parse it), then
/// block until a `POST /shutdown` drains the daemon.
fn run_serve(args: &Args) -> Result<(), CliError> {
    let cfg = ServerConfig {
        addr: args.addr.clone(),
        workers: args.jobs,
        service: ServiceConfig {
            jobs: args.jobs,
            registry: qr_hint::server::RegistryConfig {
                max_targets: args.max_targets,
                max_cache_bytes: args.max_cache_mb * 1024 * 1024,
            },
        },
        ..ServerConfig::default()
    };
    let server = Server::bind(cfg)
        .map_err(|e| CliError::internal(format!("cannot bind {}: {e}", args.addr)))?;
    println!("qr-hint serving on http://{}", server.addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    server
        .run()
        .map_err(|e| CliError::internal(format!("server error: {e}")))?;
    println!("qr-hint drained; bye");
    Ok(())
}

fn main() -> ExitCode {
    // `--version`/`--help` anywhere on the line: print to stdout, exit 0.
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.iter().any(|a| a == "--version" || a == "-V") {
        println!("qr-hint {}", env!("CARGO_PKG_VERSION"));
        return ExitCode::SUCCESS;
    }
    if argv.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    match parse_args() {
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::from(EXIT_USAGE)
        }
        Ok(args) => {
            let result = match args.mode {
                Mode::Advise => run_advise(&args).map(|()| 0),
                Mode::Grade => run_grade(&args),
                Mode::Serve => run_serve(&args).map(|()| 0),
                Mode::Fuzz => run_fuzz(&args),
            };
            match result {
                Ok(code) => ExitCode::from(code),
                Err(e) => {
                    eprintln!("error: {}", e.msg);
                    ExitCode::from(e.code)
                }
            }
        }
    }
}

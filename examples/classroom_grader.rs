//! Classroom grader: batch-process the synthetic Students+ corpus
//! (§9's coverage workload) the way a TA dashboard would — classify
//! every submission, print per-question statistics and a few sample
//! hint transcripts.
//!
//! Uses the session API: each question's hidden target is compiled
//! **once** ([`QrHint::compile_target`]) and every submission for that
//! question is graded against the prepared target, sharing its memoized
//! table mappings and solver verdicts.
//!
//! Run with: `cargo run --release --example classroom_grader`

use qr_hint::prelude::*;
use qrhint_workloads::students;
use std::collections::BTreeMap;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let qr = QrHint::new(students::schema());
    let corpus = students::corpus();
    println!("Grading {} submissions across 4 questions...\n", corpus.len());

    #[derive(Default)]
    struct Tally {
        total: usize,
        unsupported: usize,
        equivalent: usize,
        hinted: usize,
        converged: usize,
    }
    let mut per_question: BTreeMap<&str, Tally> = BTreeMap::new();
    let mut prepared: BTreeMap<String, PreparedTarget> = BTreeMap::new();
    let mut first_stage: BTreeMap<String, usize> = BTreeMap::new();
    let started = Instant::now();
    let mut samples_shown = 0;

    for entry in &corpus {
        let tally = per_question.entry(entry.question).or_default();
        tally.total += 1;
        if entry.category == "UNSUPPORTED" {
            // grade_batch surfaces the parser's reason in place; here we
            // just tally it.
            tally.unsupported += 1;
            continue;
        }
        // One compiled target per question, shared by all its submissions.
        let target = match prepared.entry(entry.pair.target_sql.clone()) {
            std::collections::btree_map::Entry::Occupied(o) => o.into_mut(),
            std::collections::btree_map::Entry::Vacant(v) => {
                v.insert(qr.compile_target(&entry.pair.target_sql)?)
            }
        };
        let working = target.prepare(&entry.pair.working_sql)?;
        let advice = target.advise(&working)?;
        if advice.is_equivalent() {
            tally.equivalent += 1;
            continue;
        }
        tally.hinted += 1;
        *first_stage.entry(advice.stage.to_string()).or_insert(0) += 1;
        if samples_shown < 3 {
            samples_shown += 1;
            println!("--- sample hint transcript: {} ---", entry.pair.id);
            println!("  student: {}", entry.pair.working_sql.trim());
            for h in &advice.hints {
                println!("  hint: {h}");
            }
            println!();
        }
        let (_, trail) = target.tutor(working).run_to_completion()?;
        if trail.last().map(|a| a.is_equivalent()).unwrap_or(false) {
            tally.converged += 1;
        }
    }

    println!("question  total  unsupported  equivalent  hinted  converged");
    for (question, t) in &per_question {
        println!(
            "{question:>8}  {:>5}  {:>11}  {:>10}  {:>6}  {:>9}",
            t.total, t.unsupported, t.equivalent, t.hinted, t.converged
        );
    }
    println!("\nfirst failing stage distribution:");
    for (stage, n) in &first_stage {
        println!("  {stage:<9} {n}");
    }
    println!(
        "\ngraded in {:.2?} ({:.1} ms/query avg)",
        started.elapsed(),
        started.elapsed().as_millis() as f64 / corpus.len() as f64
    );
    for (sql, target) in &prepared {
        let s = target.stats();
        println!(
            "  target `{}…`: {} advises, {} duplicate hits, {} FROM groups",
            sql.chars().take(40).collect::<String>().replace('\n', " "),
            s.advise_calls,
            s.advice_cache_hits,
            s.from_groups
        );
    }
    Ok(())
}

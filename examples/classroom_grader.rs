//! Classroom grader: batch-process the synthetic Students+ corpus
//! (§9's coverage workload) the way a TA dashboard would — classify
//! every submission, print per-question statistics and a few sample
//! hint transcripts.
//!
//! Uses the session API end-to-end: each question's hidden target is
//! compiled **once** ([`QrHint::compile_target`]) and its submissions
//! are graded against the prepared target through
//! [`PreparedTarget::grade_batch_parallel`] — the target's memo state
//! is sharded for concurrent grading, so the batch fans out over one
//! worker per available core while sharing the memoized table mappings,
//! stage outcomes and solver verdicts. Hinted submissions then replay
//! the full tutoring loop (sequentially; it reuses the warm memos).
//!
//! Run with: `cargo run --release --example classroom_grader`

use qr_hint::prelude::*;
use qrhint_workloads::students;
use std::collections::BTreeMap;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let qr = QrHint::new(students::schema());
    let corpus = students::corpus();
    let jobs = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!(
        "Grading {} submissions across 4 questions with {jobs} worker(s)...\n",
        corpus.len()
    );

    #[derive(Default)]
    struct Tally {
        total: usize,
        unsupported: usize,
        equivalent: usize,
        hinted: usize,
        converged: usize,
    }
    let mut per_question: BTreeMap<&str, Tally> = BTreeMap::new();
    // question → (target, submissions for the batch, their corpus ids).
    let mut batches: BTreeMap<&str, (String, Vec<String>, Vec<String>)> = BTreeMap::new();
    for entry in &corpus {
        let tally = per_question.entry(entry.question).or_default();
        tally.total += 1;
        if entry.category == "UNSUPPORTED" {
            tally.unsupported += 1;
            continue;
        }
        let (_, subs, ids) = batches
            .entry(entry.question)
            .or_insert_with(|| (entry.pair.target_sql.clone(), Vec::new(), Vec::new()));
        subs.push(entry.pair.working_sql.clone());
        ids.push(entry.pair.id.clone());
    }

    let mut first_stage: BTreeMap<String, usize> = BTreeMap::new();
    let mut prepared: BTreeMap<&str, PreparedTarget> = BTreeMap::new();
    let started = Instant::now();
    let mut samples_shown = 0;

    for (question, (target_sql, subs, ids)) in &batches {
        let target = qr.compile_target(target_sql)?;
        let advices = target.grade_batch_parallel(subs, jobs);
        let tally = per_question.entry(question).or_default();
        for ((advice, sql), id) in advices.into_iter().zip(subs).zip(ids) {
            let advice = advice?;
            if advice.is_equivalent() {
                tally.equivalent += 1;
                continue;
            }
            tally.hinted += 1;
            *first_stage.entry(advice.stage.to_string()).or_insert(0) += 1;
            if samples_shown < 3 {
                samples_shown += 1;
                println!("--- sample hint transcript: {id} ---");
                println!("  student: {}", sql.trim());
                for h in &advice.hints {
                    println!("  hint: {h}");
                }
                println!();
            }
            // The tutoring replay rides the warm memo layers the batch
            // just populated.
            let working = target.prepare(sql)?;
            let (_, trail) = target.tutor(working).run_to_completion()?;
            if trail.last().map(|a| a.is_equivalent()).unwrap_or(false) {
                tally.converged += 1;
            }
        }
        prepared.insert(question, target);
    }

    println!("question  total  unsupported  equivalent  hinted  converged");
    for (question, t) in &per_question {
        println!(
            "{question:>8}  {:>5}  {:>11}  {:>10}  {:>6}  {:>9}",
            t.total, t.unsupported, t.equivalent, t.hinted, t.converged
        );
    }
    println!("\nfirst failing stage distribution:");
    for (stage, n) in &first_stage {
        println!("  {stage:<9} {n}");
    }
    println!(
        "\ngraded in {:.2?} ({:.1} ms/query avg, {jobs} worker(s))",
        started.elapsed(),
        started.elapsed().as_millis() as f64 / corpus.len() as f64
    );
    for (question, target) in &prepared {
        let s = target.stats();
        println!(
            "  question {question}: {} advises, {} duplicate hits, {} FROM groups, {} solver calls",
            s.advise_calls, s.advice_cache_hits, s.from_groups, s.solver_calls
        );
    }
    Ok(())
}

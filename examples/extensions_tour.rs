//! Extensions tour: the three features the paper scopes as rewrites or
//! future work, implemented in this reproduction.
//!
//! 1. Footnote 2 — multi-block front-end: `WITH` CTEs, aggregation-free
//!    subqueries in FROM, and non-outer JOINs are flattened into the
//!    single-block fragment before hinting.
//! 2. §3 Limitations item 4 — schema `CHECK` constraints as solver
//!    context: domain-implied conditions stop producing spurious hints.
//! 3. §3 Limitations item 2 — the NULL prototype: the two-variable
//!    encoding of [58] makes the WHERE equivalence check 3VL-correct.
//!
//! Run with: `cargo run --example extensions_tour`

use qr_hint::prelude::*;
use qrhint_core::nullsafe;
use qrhint_sqlast::ColRef;
use qrhint_sqlparse::{parse_pred, parse_schema};
use std::collections::BTreeSet;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---------------------------------------------------------------
    // 1. Multi-block front-end (footnote 2)
    // ---------------------------------------------------------------
    println!("== 1. JOIN syntax, CTEs and FROM subqueries ==\n");
    let schema = parse_schema(
        "CREATE TABLE Likes     (drinker VARCHAR(30), beer VARCHAR(30),
                                 PRIMARY KEY (drinker, beer));
         CREATE TABLE Frequents (drinker VARCHAR(30), bar VARCHAR(30),
                                 PRIMARY KEY (drinker, bar));
         CREATE TABLE Serves    (bar VARCHAR(30), beer VARCHAR(30), price INT,
                                 PRIMARY KEY (bar, beer), CHECK (price > 0));",
    )?;
    let qr = QrHint::new(schema);

    // The instructor wrote comma joins; the student is a JOIN-and-CTE
    // person. Qr-Hint sees through the syntax.
    let target = "SELECT f.drinker FROM Frequents f, Serves s \
                  WHERE f.bar = s.bar AND s.beer = 'IPA' AND s.price <= 4";
    let working = "WITH ipa_bars AS (SELECT s.bar, s.price FROM Serves s \
                                     WHERE s.beer = 'IPA') \
                   SELECT f.drinker \
                   FROM Frequents f JOIN ipa_bars b ON f.bar = b.bar \
                   WHERE b.price < 4";
    println!("target : {target}");
    println!("working: {working}\n");

    let opts = FlattenOptions::default();
    let flattened = qr.prepare_extended(working, &opts)?;
    println!("flattened working query:\n  {flattened}\n");

    let advice = qr.advise_sql_extended(target, working, &opts)?;
    println!("first failing stage: {}", advice.stage);
    for hint in &advice.hints {
        println!("  hint: {hint}");
    }

    // Walk it to equivalence, as a student would.
    let q_star = qr.prepare_extended(target, &opts)?;
    let q = qr.prepare_extended(working, &opts)?;
    let (final_q, trail) = qr.fix_fully(&q_star, &q)?;
    println!(
        "converged in {} stage interaction(s); final query:\n  {final_q}\n",
        trail.len() - 1
    );

    // ---------------------------------------------------------------
    // 2. CHECK constraints as reasoning context
    // ---------------------------------------------------------------
    println!("== 2. Domain constraints (CHECK) ==\n");
    // The schema says price > 0, so the target's `price >= 1` is implied
    // — a student who omitted it wrote an equivalent query and must NOT
    // be told to add it back.
    let t2 = "SELECT s.bar FROM Serves s WHERE s.price >= 1 AND s.beer = 'IPA'";
    let w2 = "SELECT s.bar FROM Serves s WHERE s.beer = 'IPA'";
    let advice = qr.advise_sql(t2, w2)?;
    println!("target : {t2}");
    println!("working: {w2}");
    println!(
        "verdict: {}\n",
        if advice.is_equivalent() {
            "equivalent under CHECK (price > 0) — no hint"
        } else {
            "not equivalent (unexpected!)"
        }
    );

    // ---------------------------------------------------------------
    // 3. NULL prototype (two-variable encoding of [58])
    // ---------------------------------------------------------------
    println!("== 3. NULL-correct WHERE equivalence ==\n");
    let p = parse_pred("s.price >= 3 OR s.price < 3")?;
    println!("predicate: {p}");
    println!("  vs TRUE, all columns NOT NULL: {:?}", {
        nullsafe::where_equiv_3vl(&p, &qrhint_sqlast::Pred::True, &BTreeSet::new())
    });
    let nullable: BTreeSet<ColRef> = [ColRef::new("s", "price")].into_iter().collect();
    println!(
        "  vs TRUE, s.price nullable:      {:?}",
        nullsafe::where_equiv_3vl(&p, &qrhint_sqlast::Pred::True, &nullable)
    );
    println!("\nThe tautology stops being one: for a NULL price the");
    println!("disjunction is UNKNOWN, and WHERE filters UNKNOWN rows out.");
    println!("Encoded 2VL form:\n  {}", nullsafe::encode_where_3vl(&p, &nullable));

    Ok(())
}

//! A classroom riding the grading daemon: start `qr-hint serve`
//! in-process, register each Students+ question as a resident target
//! over HTTP, batch-grade the whole corpus through `POST
//! /targets/{id}/grade`, then read the cache story back from `GET
//! /targets/{id}/stats` and drain with `POST /shutdown`.
//!
//! This is the serving counterpart of the `classroom_grader` example:
//! same corpus, same grading semantics (the daemon serializes the same
//! [`AdviceReport`] the CLI's `grade --json` emits), but the targets
//! stay hot between batches the way a deployed tutoring backend would
//! keep them across a semester of submissions.
//!
//! Run with: `cargo run --release --example serve_classroom`

use qr_hint::prelude::*;
use qr_hint::server::{client, Client, RegistryConfig};
use qrhint_workloads::students;
use serde::Value;
use std::collections::BTreeMap;
use std::time::Instant;

fn json_field<'v>(v: &'v Value, key: &str) -> Option<&'v Value> {
    match v {
        Value::Map(m) => m.iter().find(|(k, _)| k == key).map(|(_, v)| v),
        _ => None,
    }
}

fn as_int(v: Option<Value>) -> i64 {
    match v {
        Some(Value::Int(n)) => n,
        _ => -1,
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- Boot the daemon on an ephemeral port.
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 0, // available parallelism
        service: ServiceConfig {
            jobs: 0,
            registry: RegistryConfig { max_targets: 16, ..RegistryConfig::default() },
        },
        ..ServerConfig::default()
    })?;
    let addr = server.addr();
    let daemon = std::thread::spawn(move || server.run());
    println!("daemon listening on http://{addr}\n");

    // ---- Group the corpus by question; register one target each.
    let schema_ddl = students::schema().to_ddl();
    let mut questions: BTreeMap<&str, (String, Vec<String>)> = BTreeMap::new();
    for entry in students::corpus() {
        let (target, subs) = questions
            .entry(entry.question)
            .or_insert_with(|| (entry.pair.target_sql.clone(), Vec::new()));
        debug_assert_eq!(*target, entry.pair.target_sql);
        subs.push(entry.pair.working_sql.clone());
    }

    let mut client = Client::connect(addr)?;
    let started = Instant::now();
    let mut grand_total = 0usize;
    for (question, (target_sql, subs)) in &questions {
        // Register (the daemon answers 201 with the target id).
        let body = format!(
            "{{\"schema\": {}, \"target\": {}}}",
            serde_json::to_string(&schema_ddl)?,
            serde_json::to_string(target_sql)?
        );
        let (status, resp) = client.request("POST", "/targets", &body)?;
        assert_eq!(status, 201, "register failed: {resp}");
        let registered: Value = serde_json::from_str(&resp)?;
        let Some(Value::Str(id)) = json_field(&registered, "id").cloned() else {
            panic!("no id in {resp}");
        };

        // Batch-grade the question's submissions in one request.
        let grade_body = format!(
            "{{\"submissions\": {}, \"jobs\": 0}}",
            serde_json::to_string(subs)?
        );
        let (status, resp) = client.request("POST", &format!("/targets/{id}/grade"), &grade_body)?;
        assert_eq!(status, 200, "grade failed: {resp}");
        let graded: Value = serde_json::from_str(&resp)?;
        let Some(Value::Seq(entries)) = json_field(&graded, "entries").cloned() else {
            panic!("no entries in grade response");
        };
        let mut equivalent = 0usize;
        let mut hinted = 0usize;
        let mut rejected = 0usize;
        for entry in &entries {
            match json_field(entry, "report") {
                Some(report) if json_field(report, "equivalent") == Some(&Value::Bool(true)) => {
                    equivalent += 1;
                }
                Some(Value::Map(_)) => hinted += 1,
                _ => rejected += 1, // unsupported/malformed, reported in place
            }
        }
        grand_total += entries.len();

        // Read the cache story back from the stats endpoint.
        let (status, resp) = client.request("GET", &format!("/targets/{id}/stats"), "")?;
        assert_eq!(status, 200);
        let stats: Value = serde_json::from_str(&resp)?;
        let cache_bytes = json_field(&stats, "approx_cache_bytes").cloned();
        let solver_calls = json_field(&stats, "stats")
            .and_then(|s| json_field(s, "solver_calls"))
            .cloned();
        println!(
            "question ({question}) [{id}]: {} submissions → {equivalent} equivalent, \
             {hinted} hinted, {rejected} rejected · {} solver calls · ~{} cache bytes",
            entries.len(),
            as_int(solver_calls),
            as_int(cache_bytes),
        );
    }
    println!(
        "\ngraded {grand_total} submissions over HTTP in {:.1} ms",
        started.elapsed().as_secs_f64() * 1e3
    );

    // ---- Health, then graceful drain.
    let (status, resp) = client.request("GET", "/healthz", "")?;
    assert_eq!(status, 200);
    println!("healthz: {resp}");
    let (status, _) = client.request("POST", "/shutdown", "")?;
    assert_eq!(status, 200);
    drop(client);
    // request_once races the drain on purpose: either refused (503) or
    // the listener is already gone — both are a successful shutdown.
    if let Ok((status, _)) = client::request_once(addr, "GET", "/healthz", "") {
        assert!(status == 200 || status == 503);
    }
    daemon.join().expect("daemon thread")?;
    println!("daemon drained cleanly");
    Ok(())
}

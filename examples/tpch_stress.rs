//! TPC-H stress demo (§9's synthetic-error methodology): inject errors
//! into TPC-H WHERE predicates, repair them with both fix-derivation
//! strategies, and compare costs and running times.
//!
//! Run with: `cargo run --release --example tpch_stress`

use qrhint_core::repair::{repair_where, FixStrategy, RepairConfig};
use qrhint_core::Oracle;
use qrhint_sqlparse::parse_pred;
use qrhint_workloads::{inject, tpch};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("case        atoms  errors  strategy   sites  cost    time");
    println!("-----------------------------------------------------------");
    for case in tpch::conjunctive_suite().into_iter().take(4) {
        let target = parse_pred(case.where_sql)?;
        let (wrong, errors) = inject::inject_atom_errors(&target, 2, 0xBEEF);
        for (strategy, label) in
            [(FixStrategy::Basic, "basic"), (FixStrategy::Optimized, "optimized")]
        {
            let cfg = RepairConfig { strategy, ..RepairConfig::default() };
            let mut oracle = Oracle::for_preds(&[&wrong, &target]);
            let t0 = Instant::now();
            let outcome = repair_where(&mut oracle, &[], &wrong, &target, &cfg);
            let elapsed = t0.elapsed();
            let repair = outcome.repair.as_ref().expect("repair found");
            println!(
                "{:<11} {:>5}  {:>6}  {:<9}  {:>5}  {:<6.3} {:?}",
                case.name,
                case.natoms,
                errors.len(),
                label,
                repair.sites.len(),
                outcome.cost,
                elapsed
            );
        }
    }

    println!("\nNested AND/OR (TPC-H Q7), 1–3 injected errors, optimized strategy:");
    let q7 = tpch::q7_nested();
    for k in 1..=3 {
        let (wrong, _) = inject::inject_mixed_errors(&q7, k, 0xCAFE + k as u64);
        let cfg = RepairConfig {
            strategy: FixStrategy::Optimized,
            collect_trace: true,
            ..RepairConfig::default()
        };
        let mut oracle = Oracle::for_preds(&[&wrong, &q7]);
        let t0 = Instant::now();
        let outcome = repair_where(&mut oracle, &[], &wrong, &q7, &cfg);
        println!(
            "  {k} error(s): cost {:.3}, {} viable repairs seen, first viable after {:?}, total {:?}",
            outcome.cost,
            outcome.trace.len(),
            outcome.first_viable.unwrap_or_default(),
            t0.elapsed()
        );
    }
    Ok(())
}

//! The DBLP user study (§10) replayed: for each of the four study
//! questions, show the wrong query, the hints Qr-Hint generates, and the
//! TA hints the participants compared them against (Appendix Table 3).
//!
//! Run with: `cargo run --release --example user_study_dblp`

use qr_hint::prelude::*;
use qrhint_workloads::dblp;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let qr = QrHint::new(dblp::schema());
    for question in dblp::questions() {
        println!("==================== {} ====================", question.id);
        println!("Problem: {}\n", question.statement);
        println!("Wrong query:\n{}\n", question.wrong_sql.trim());

        // Replay the staged hinting session.
        let target = qr.prepare(question.correct_sql)?;
        let mut working = qr.prepare(question.wrong_sql)?;
        let mut round = 1;
        println!("Qr-Hint session:");
        loop {
            let advice = qr.advise(&target, &working)?;
            if advice.is_equivalent() {
                println!("  round {round}: equivalent — session complete ✓");
                break;
            }
            for h in &advice.hints {
                println!("  round {round} [{}]: {h}", advice.stage);
            }
            working = advice.fixed.expect("fix available");
            round += 1;
            if round > 12 {
                println!("  (did not converge)");
                break;
            }
        }

        // The hints participants actually saw (study transcription).
        if !question.hints.is_empty() {
            println!("\nStudy hints shown to participants (Appendix Table 3):");
            for h in &question.hints {
                let tag = match h.source {
                    dblp::HintSource::Ta => "TA    ",
                    dblp::HintSource::QrHint => "QrHint",
                };
                println!("  [{tag}] {}", h.text);
            }
        }
        println!();
    }
    Ok(())
}

//! Quickstart: the paper's headline example (Examples 1–2).
//!
//! Run with: `cargo run --example quickstart`

use qr_hint::prelude::*;
use qrhint_workloads::beers;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let qr = QrHint::new(beers::schema());

    println!("== Target query (hidden from the student) ==");
    println!("{}\n", beers::EXAMPLE1_TARGET.trim());
    println!("== Student's wrong query ==");
    println!("{}\n", beers::EXAMPLE1_WORKING.trim());

    // Walk the student through the stages, exactly as in Example 2.
    let target = qr.prepare(beers::EXAMPLE1_TARGET)?;
    let mut working = qr.prepare(beers::EXAMPLE1_WORKING)?;
    let mut step = 1;
    loop {
        let advice = qr.advise(&target, &working)?;
        if advice.is_equivalent() {
            println!("✓ The working query is now equivalent to the target!\n");
            println!("Final query:\n  {working}");
            break;
        }
        println!("-- Hint {step} (stage: {}) --", advice.stage);
        for hint in &advice.hints {
            println!("   {hint}");
        }
        // Simulate the student applying the suggested repair.
        working = advice.fixed.expect("stage always offers a fix");
        println!("   (student applies the fix)\n");
        step += 1;
        if step > 10 {
            return Err("did not converge".into());
        }
    }

    // Demonstrate the ground truth: run both queries on a random database.
    let db = DataGen::new(7).generate(qr.schema(), &[&target, &working]);
    let out_target = qrhint_engine::execute(&target, qr.schema(), &db)?;
    let out_fixed = qrhint_engine::execute(&working, qr.schema(), &db)?;
    println!(
        "\nDifferential check on a random database ({} rows total): {}",
        db.total_rows(),
        if qrhint_engine::bag_equal(&out_target, &out_fixed) {
            "results agree ✓"
        } else {
            "results differ ✗"
        }
    );
    Ok(())
}

//! Incremental tutoring session: the paper's deployment loop (§1/§10)
//! over the headline Example 2 — one hidden target, a student revising
//! step by step, machine-readable JSON advice at every interaction.
//!
//! Run with: `cargo run --release --example tutor_session`

use qr_hint::prelude::*;
use qrhint_workloads::beers;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let qr = QrHint::new(beers::schema());

    // The instructor's hidden solution, compiled once.
    let prepared = qr.compile_target(
        "SELECT L.beer, S1.bar, COUNT(*)
         FROM Likes L, Frequents F, Serves S1, Serves S2
         WHERE L.drinker = F.drinker AND F.bar = S1.bar
           AND L.beer = S1.beer AND S1.beer = S2.beer
           AND S1.price <= S2.price
         GROUP BY F.drinker, L.beer, S1.bar
         HAVING F.drinker = 'Amy'",
    )?;

    // The student's wrong attempt (Example 2 of the paper).
    let mut session = prepared.tutor_sql(
        "SELECT s2.beer, s2.bar, COUNT(*)
         FROM Likes, Serves s1, Serves s2
         WHERE drinker = 'Amy'
           AND Likes.beer = s1.beer AND Likes.beer = s2.beer
           AND s1.price > s2.price
         GROUP BY s2.beer, s2.bar",
    )?;

    let mut round = 0;
    while !session.is_done() {
        round += 1;
        let advice = session.step()?;
        if advice.is_equivalent() {
            println!("[round {round}] equivalent — session complete");
            println!("final query: {}", session.working());
        } else {
            println!("[round {round}] stage {}:", advice.stage);
            for hint in &advice.hints {
                println!("  {hint}");
            }
            // Everything a front-end needs, as JSON (stage, structured
            // hints, the auto-applied fix, the alias mapping):
            println!("  advice JSON: {}", serde_json::to_string(&advice)?);
        }
    }

    let stats = prepared.stats();
    println!(
        "\nsession stats: {} advises, {} FROM groups, {} solver checks",
        stats.advise_calls, stats.from_groups, stats.solver_calls
    );
    Ok(())
}

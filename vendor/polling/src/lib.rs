//! Offline shim for the [`polling`](https://crates.io/crates/polling)
//! crate: portable readiness polling for sockets, the substrate under
//! `qrhint-server`'s event-driven acceptor.
//!
//! The build environment has no network access (see `vendor/README.md`),
//! so this crate re-implements the subset of the real `polling` 2.x API
//! the workspace uses:
//!
//! * [`Poller::new`] / [`Poller::add`] / [`Poller::modify`] /
//!   [`Poller::delete`] — register `AsRawFd` sources with a `usize` key.
//! * [`Poller::wait`] — block until a source is readable (or a timeout /
//!   [`Poller::notify`] lands). **One-shot** semantics, exactly like the
//!   real crate: once an event for a key is delivered, that source is
//!   disarmed until `modify` re-arms it.
//! * [`Poller::notify`] — wake a concurrent `wait` from any thread.
//!
//! ## Implementation
//!
//! On Unix this wraps `poll(2)` — not `epoll(7)` — because the daemon
//! polls tens of connections per event-loop pass, far below the fd
//! counts where `epoll`'s O(ready) beats `poll`'s O(registered), and
//! `poll` is POSIX-portable (Linux, macOS, BSDs) where `epoll` is
//! Linux-only. The only `unsafe` in the workspace lives here, in the
//! single FFI call; the wake channel is a connected UDP socket pair, so
//! no pipes or signal handling are involved.
//!
//! ## Portable fallback
//!
//! On non-Unix targets (no `poll(2)`), [`Poller::wait`] degrades to a
//! documented timed sweep: it sleeps in short slices (≤ 5 ms) and then
//! reports **every armed source** as ready. Readiness becomes a hint
//! rather than a guarantee — correct for callers that follow up with
//! their own (timeout-bounded) reads, at the cost of idle wakeups.
//! `qrhint-server` additionally keeps a fully blocking thread-per-
//! connection acceptor as its own portable fallback and selects it when
//! [`Poller::new`] reports [`std::io::ErrorKind::Unsupported`], so on
//! exotic targets the daemon never relies on this degraded mode.

use std::collections::HashMap;
use std::io;
use std::sync::Mutex;
use std::time::Duration;

#[cfg(unix)]
use std::os::unix::io::{AsRawFd, RawFd};

// Non-Unix targets have no RawFd; keep the API compiling with an i64
// stand-in so downstream cfg'd fallbacks can still name the types.
#[cfg(not(unix))]
pub type RawFd = i64;
#[cfg(not(unix))]
pub trait AsRawFd {
    fn as_raw_fd(&self) -> RawFd;
}

/// Interest in / readiness of one registered source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Caller-chosen key identifying the source.
    pub key: usize,
    pub readable: bool,
    pub writable: bool,
}

impl Event {
    /// Interest in readability only (the only interest the workspace
    /// uses; writability is supported for API faithfulness).
    pub fn readable(key: usize) -> Event {
        Event { key, readable: true, writable: false }
    }

    pub fn writable(key: usize) -> Event {
        Event { key, readable: false, writable: true }
    }

    pub fn all(key: usize) -> Event {
        Event { key, readable: true, writable: true }
    }

    /// No interest: keeps the source registered but disarmed.
    pub fn none(key: usize) -> Event {
        Event { key, readable: false, writable: false }
    }
}

struct Registration {
    fd: RawFd,
    /// Current (one-shot) interest; cleared when an event is delivered.
    interest: Event,
}

/// A readiness poller over registered fd sources.
pub struct Poller {
    sources: Mutex<HashMap<usize, Registration>>,
    /// Wake channel: `notify()` sends a datagram that `wait()` drains.
    wake_rx: std::net::UdpSocket,
    wake_tx: std::net::UdpSocket,
}

impl Poller {
    /// Create a poller. Returns [`io::ErrorKind::Unsupported`] where no
    /// readiness syscall is available (non-Unix), so callers can select
    /// their own fallback strategy.
    pub fn new() -> io::Result<Poller> {
        if !cfg!(unix) {
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "no poll(2) on this target; use a blocking fallback",
            ));
        }
        let wake_rx = std::net::UdpSocket::bind("127.0.0.1:0")?;
        wake_rx.set_nonblocking(true)?;
        let wake_tx = std::net::UdpSocket::bind("127.0.0.1:0")?;
        wake_tx.connect(wake_rx.local_addr()?)?;
        wake_tx.set_nonblocking(true)?;
        Ok(Poller { sources: Mutex::new(HashMap::new()), wake_rx, wake_tx })
    }

    /// Register a source under `key` with an initial interest. A key
    /// already in use is an error (mirrors the real crate).
    pub fn add(&self, source: &impl AsRawFd, interest: Event) -> io::Result<()> {
        let mut sources = self.sources.lock().unwrap();
        if sources.contains_key(&interest.key) {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                format!("key {} is already registered", interest.key),
            ));
        }
        sources.insert(interest.key, Registration { fd: source.as_raw_fd(), interest });
        Ok(())
    }

    /// Re-arm (or change) the interest of a registered source — the
    /// one-shot re-subscription after an event was delivered.
    pub fn modify(&self, source: &impl AsRawFd, interest: Event) -> io::Result<()> {
        let mut sources = self.sources.lock().unwrap();
        match sources.get_mut(&interest.key) {
            Some(reg) => {
                reg.fd = source.as_raw_fd();
                reg.interest = interest;
                Ok(())
            }
            None => Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("key {} is not registered", interest.key),
            )),
        }
    }

    /// Remove a source entirely (looked up by fd, like the real crate).
    pub fn delete(&self, source: &impl AsRawFd) -> io::Result<()> {
        let fd = source.as_raw_fd();
        let mut sources = self.sources.lock().unwrap();
        let before = sources.len();
        sources.retain(|_, reg| reg.fd != fd);
        if sources.len() == before {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("fd {fd} is not registered"),
            ));
        }
        Ok(())
    }

    /// Wake a concurrent [`Poller::wait`] (idempotent, thread-safe).
    pub fn notify(&self) -> io::Result<()> {
        // A full wake socket buffer means a wake is already pending —
        // the condition notify exists to signal.
        match self.wake_tx.send(&[1u8]) {
            Ok(_) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(()),
            Err(e) => Err(e),
        }
    }

    /// Block until at least one armed source is ready, the timeout
    /// elapses, or [`Poller::notify`] is called. Ready events are
    /// appended to `events` (which is *not* cleared first, mirroring
    /// the real crate) and their sources disarmed. Returns the number
    /// of events appended — `0` for timeout or a bare notify.
    pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        let (mut fds, keys) = {
            let sources = self.sources.lock().unwrap();
            let mut fds: Vec<sys::PollFd> = Vec::with_capacity(sources.len() + 1);
            let mut keys: Vec<usize> = Vec::with_capacity(sources.len());
            for (key, reg) in sources.iter() {
                if reg.interest.readable || reg.interest.writable {
                    fds.push(sys::PollFd::new(
                        reg.fd,
                        reg.interest.readable,
                        reg.interest.writable,
                    ));
                    keys.push(*key);
                }
            }
            // The wake socket rides along at the end, outside `keys`.
            #[cfg(unix)]
            fds.push(sys::PollFd::new(self.wake_rx.as_raw_fd(), true, false));
            (fds, keys)
        };

        let n = sys::poll(&mut fds, timeout)?;
        if n == 0 {
            return Ok(0);
        }

        // Drain any pending wakes so the next wait() blocks again.
        let mut buf = [0u8; 16];
        while self.wake_rx.recv(&mut buf).is_ok() {}

        let mut delivered = 0usize;
        let mut sources = self.sources.lock().unwrap();
        for (i, key) in keys.iter().enumerate() {
            let (readable, writable) = fds[i].ready();
            if !readable && !writable {
                continue;
            }
            events.push(Event { key: *key, readable, writable });
            delivered += 1;
            // One-shot: disarm until the caller re-arms via modify().
            if let Some(reg) = sources.get_mut(key) {
                reg.interest = Event::none(*key);
            }
        }
        Ok(delivered)
    }
}

#[cfg(unix)]
mod sys {
    //! The single FFI surface of the workspace: `poll(2)`. The symbol
    //! comes from the C library `std` already links; constants and the
    //! `pollfd` layout are identical across Linux, macOS and the BSDs.

    use std::io;
    use std::os::unix::io::RawFd;
    use std::time::Duration;

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;
    const POLLNVAL: i16 = 0x020;

    #[repr(C)]
    pub struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    impl PollFd {
        pub fn new(fd: RawFd, readable: bool, writable: bool) -> PollFd {
            let mut events = 0i16;
            if readable {
                events |= POLLIN;
            }
            if writable {
                events |= POLLOUT;
            }
            PollFd { fd, events, revents: 0 }
        }

        /// (readable, writable) readiness after a poll pass. Error and
        /// hangup conditions count as readable: the subsequent read
        /// observes the EOF/error, which is how level-triggered
        /// consumers are meant to discover them.
        pub fn ready(&self) -> (bool, bool) {
            let r = self.revents & (POLLIN | POLLERR | POLLHUP | POLLNVAL) != 0;
            let w = self.revents & (POLLOUT | POLLERR) != 0;
            (r, w)
        }
    }

    #[cfg(any(target_os = "linux", target_os = "android"))]
    type NFds = std::ffi::c_ulong;
    #[cfg(not(any(target_os = "linux", target_os = "android")))]
    type NFds = std::ffi::c_uint;

    extern "C" {
        #[link_name = "poll"]
        fn poll_c(fds: *mut PollFd, nfds: NFds, timeout: std::ffi::c_int) -> std::ffi::c_int;
    }

    pub fn poll(fds: &mut [PollFd], timeout: Option<Duration>) -> io::Result<usize> {
        let timeout_ms: std::ffi::c_int = match timeout {
            Some(t) => t.as_millis().min(i32::MAX as u128) as i32,
            None => -1,
        };
        loop {
            // SAFETY: `fds` is a valid, exclusively borrowed slice of
            // repr(C) pollfd records for the duration of the call, and
            // nfds is its exact length.
            let rc = unsafe { poll_c(fds.as_mut_ptr(), fds.len() as NFds, timeout_ms) };
            if rc >= 0 {
                return Ok(rc as usize);
            }
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                continue;
            }
            return Err(err);
        }
    }
}

#[cfg(not(unix))]
mod sys {
    //! Degraded portable fallback (documented in the crate docs): no
    //! readiness syscall, so a bounded sleep followed by reporting every
    //! armed source as ready. Callers must treat readiness as a hint.

    use std::io;
    use std::time::Duration;

    pub struct PollFd {
        ready: bool,
    }

    impl PollFd {
        pub fn new(_fd: super::RawFd, readable: bool, writable: bool) -> PollFd {
            PollFd { ready: readable || writable }
        }

        pub fn ready(&self) -> (bool, bool) {
            (self.ready, false)
        }
    }

    pub fn poll(fds: &mut [PollFd], timeout: Option<Duration>) -> io::Result<usize> {
        let slice = timeout.unwrap_or(Duration::from_millis(5)).min(Duration::from_millis(5));
        std::thread::sleep(slice);
        Ok(fds.iter().filter(|f| f.ready().0).count())
    }
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn wait_times_out_with_no_ready_sources() {
        let poller = Poller::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        poller.add(&listener, Event::readable(7)).unwrap();
        let mut events = Vec::new();
        let n = poller.wait(&mut events, Some(Duration::from_millis(20))).unwrap();
        assert_eq!(n, 0);
        assert!(events.is_empty());
    }

    #[test]
    fn listener_becomes_readable_on_connect_and_is_one_shot() {
        let poller = Poller::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        poller.add(&listener, Event::readable(3)).unwrap();
        let _conn = TcpStream::connect(addr).unwrap();
        let mut events = Vec::new();
        let n = poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].key, 3);
        assert!(events[0].readable);
        // One-shot: without re-arming, the still-pending connection
        // does not fire again.
        let mut again = Vec::new();
        let n = poller.wait(&mut again, Some(Duration::from_millis(20))).unwrap();
        assert_eq!(n, 0, "one-shot interest must disarm after delivery");
        // Re-armed, it fires again (the connection is still pending).
        poller.modify(&listener, Event::readable(3)).unwrap();
        let n = poller.wait(&mut again, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(n, 1);
    }

    #[test]
    fn stream_data_and_notify_wakeups() {
        let poller = Poller::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        poller.add(&server_side, Event::readable(11)).unwrap();

        // No data yet: a notify() alone wakes wait() with zero events.
        poller.notify().unwrap();
        let mut events = Vec::new();
        let n = poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(n, 0, "bare notify wakes with no events");

        client.write_all(b"x").unwrap();
        client.flush().unwrap();
        let n = poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].key, 11);

        // Peer hangup counts as readable (EOF is discovered by reading).
        poller.modify(&server_side, Event::readable(11)).unwrap();
        drop(client);
        let mut hup = Vec::new();
        let n = poller.wait(&mut hup, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(n, 1);
        assert!(hup[0].readable);
    }

    #[test]
    fn add_modify_delete_contract() {
        let poller = Poller::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        poller.add(&listener, Event::readable(1)).unwrap();
        assert!(poller.add(&listener, Event::readable(1)).is_err(), "duplicate key");
        poller.modify(&listener, Event::none(1)).unwrap();
        poller.delete(&listener).unwrap();
        assert!(poller.delete(&listener).is_err(), "already deleted");
        assert!(poller.modify(&listener, Event::readable(1)).is_err(), "deleted key");
    }
}

//! Minimal offline stand-in for `serde`.
//!
//! The build environment has no network access, so the real serde cannot
//! be fetched from a registry. This shim keeps the workspace source
//! unchanged (`use serde::{Serialize, Deserialize}` and
//! `#[derive(Serialize, Deserialize)]` compile as-is) by providing a much
//! simpler value-tree data model instead of serde's visitor machinery:
//!
//! * [`Serialize`] converts a value into a [`Value`] tree;
//! * [`Deserialize`] reconstructs a value from a [`Value`] tree;
//! * the companion `serde_json` shim renders/parses `Value` as JSON.
//!
//! The derive macros (re-exported from the vendored `serde_derive`)
//! produce externally-tagged representations compatible with real serde's
//! JSON output for the shapes used in this repository. Swapping the real
//! serde back in later only requires removing the `vendor/` path
//! dependencies.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing value tree (the JSON data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(String),
    Seq(Vec<Value>),
    /// Key order is preserved; keys are strings as in JSON.
    Map(Vec<(String, Value)>),
}

/// Deserialization error: a message describing the mismatch.
#[derive(Debug, Clone)]
pub struct DeError {
    msg: String,
}

impl DeError {
    pub fn new(msg: &str) -> Self {
        DeError { msg: msg.to_string() }
    }

    /// Mirror of real serde's `Error::custom`.
    pub fn custom<T: fmt::Display>(msg: T) -> Self {
        DeError { msg: msg.to_string() }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for DeError {}

/// Serialize into the [`Value`] data model.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Deserialize from the [`Value`] data model.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// `Value` itself round-trips through both traits, so generic JSON (a
// proxy re-serializing a payload, a test diffing two documents) can be
// parsed with `serde_json::from_str::<serde::Value>` and re-rendered
// with `serde_json::to_string` — mirroring real serde_json's
// self-describing `Value`.
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

// ---------------------------------------------------------------------------
// Serialize impls for std types
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
    )*};
}
impl_ser_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort for deterministic output, like serde_json with a BTreeMap.
        let mut entries: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

macro_rules! impl_ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_value()),+])
            }
        }
    )*};
}
impl_ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

// ---------------------------------------------------------------------------
// Deserialize impls for std types
// ---------------------------------------------------------------------------

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::new("expected bool")),
        }
    }
}

macro_rules! impl_de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| DeError::new("integer out of range")),
                    _ => Err(DeError::new("expected integer")),
                }
            }
        }
    )*};
}
impl_de_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            _ => Err(DeError::new("expected number")),
        }
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::new("expected string")),
        }
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            _ => Err(DeError::new("expected sequence")),
        }
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            _ => Err(DeError::new("expected sequence")),
        }
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            _ => Err(DeError::new("expected map")),
        }
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            _ => Err(DeError::new("expected map")),
        }
    }
}

macro_rules! impl_de_tuple {
    ($(($len:expr; $($n:tt $t:ident),+))*) => {$(
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Seq(items) if items.len() == $len => {
                        Ok(($($t::from_value(&items[$n])?,)+))
                    }
                    _ => Err(DeError::new("expected fixed-length sequence")),
                }
            }
        }
    )*};
}
impl_de_tuple! {
    (1; 0 A)
    (2; 0 A, 1 B)
    (3; 0 A, 1 B, 2 C)
    (4; 0 A, 1 B, 2 C, 3 D)
}

//! Minimal offline stand-in for `criterion`.
//!
//! Provides the entry points the workspace's benches use
//! (`criterion_group!`, `criterion_main!`, `Criterion::benchmark_group`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `black_box`) with
//! a simple wall-clock measurement: each benchmark body is warmed up once
//! and then timed over a fixed iteration budget, reporting mean
//! nanoseconds per iteration to stdout. There is no statistical analysis,
//! HTML report, or comparison to previous runs.
//!
//! When the binary is invoked by `cargo test` (criterion-style
//! `harness = false` bench targets are run in test mode with a `--test`
//! argument), every benchmark executes exactly one iteration so the suite
//! stays fast while still exercising the bench code paths.

use std::fmt;
use std::time::Instant;

pub use std::hint::black_box;

/// Iterations used when actually benching (not in `--test` mode).
const MEASURE_ITERS: u64 = 10;

/// Top-level driver handed to each registered bench function.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test` runs harness = false bench binaries with `--test`;
        // `cargo bench` passes `--bench`. Any explicit `--test` wins.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), test_mode: self.test_mode, _parent: self }
    }

    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let test_mode = self.test_mode;
        run_one(&name.into(), test_mode, f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    test_mode: bool,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's iteration budget is
    /// fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(&label, self.test_mode, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(&label, self.test_mode, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Identifier combining a function name and a parameter display.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId { label: format!("{function_name}/{parameter}") }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

/// Anything usable where criterion accepts a benchmark id.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.label
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Timing harness passed to each benchmark body.
pub struct Bencher {
    iters: u64,
    /// Mean nanoseconds per iteration of the last `iter` call.
    last_ns: f64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up, also keeps O alive through black_box
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        let elapsed = start.elapsed();
        self.last_ns = elapsed.as_nanos() as f64 / self.iters as f64;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, test_mode: bool, mut f: F) {
    let iters = if test_mode { 1 } else { MEASURE_ITERS };
    let mut b = Bencher { iters, last_ns: 0.0 };
    f(&mut b);
    if test_mode {
        println!("test {label} ... ok (1 iteration, shim)");
    } else {
        println!("{label:<60} {:>14.1} ns/iter (shim, n={iters})", b.last_ns);
    }
}

/// Collect bench functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Entry point: run every group. Tolerates harness-style CLI arguments
/// (`--test`, `--bench`, filters) by ignoring everything it does not
/// understand.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

//! Minimal offline stand-in for `serde_derive`.
//!
//! The build environment for this repository has no network access, so the
//! real serde cannot be fetched. This proc-macro crate derives the
//! value-tree based `Serialize`/`Deserialize` traits defined by the
//! vendored `serde` shim (see `vendor/serde`). It supports exactly the
//! shapes used in this workspace:
//!
//! * structs with named fields (honouring `#[serde(default)]`),
//! * enums with unit, tuple, and struct variants (externally tagged,
//!   matching real serde's JSON representation),
//! * no generics, no lifetimes, no tuple/unit structs.
//!
//! The item token stream is parsed by hand — `syn`/`quote` are equally
//! unavailable offline — and generated code is emitted via string
//! formatting plus `TokenStream::from_str`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Field {
    name: String,
    /// `#[serde(default)]`: substitute `Default::default()` when missing.
    default: bool,
}

#[derive(Debug)]
enum Shape {
    Unit,
    /// Tuple variant with N fields.
    Tuple(usize),
    /// Struct variant / named-field payload.
    Struct(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    shape: Shape,
}

#[derive(Debug)]
enum Item {
    Struct { name: String, fields: Vec<Field> },
    Enum { name: String, variants: Vec<Variant> },
}

/// Returns true if the attribute group tokens spell `serde(default)`.
fn attr_is_serde_default(group: &proc_macro::Group) -> bool {
    let mut toks = group.stream().into_iter();
    match (toks.next(), toks.next()) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(inner)))
            if id.to_string() == "serde" =>
        {
            inner
                .stream()
                .into_iter()
                .any(|t| matches!(&t, TokenTree::Ident(i) if i.to_string() == "default"))
        }
        _ => false,
    }
}

/// Consume attributes (`#[...]`) from the front of `toks`; report whether
/// any of them was `#[serde(default)]`.
fn skip_attrs(toks: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) -> bool {
    let mut default = false;
    loop {
        match toks.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                toks.next();
                match toks.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                        if attr_is_serde_default(&g) {
                            default = true;
                        }
                    }
                    other => panic!("serde_derive shim: malformed attribute, got {other:?}"),
                }
            }
            _ => return default,
        }
    }
}

/// Parse `name: Type` fields from a brace-group token stream. Generic
/// arguments may contain commas (`BTreeMap<String, T>`), so the type is
/// skipped with angle-bracket depth tracking.
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut toks = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        let default = skip_attrs(&mut toks);
        // Skip visibility: `pub` optionally followed by `(crate)` etc.
        if matches!(toks.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
            toks.next();
            if matches!(toks.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                toks.next();
            }
        }
        let name = match toks.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive shim: expected field name, got {other:?}"),
        };
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive shim: expected `:` after field `{name}`, got {other:?}"),
        }
        // Skip the type up to a top-level comma.
        let mut depth = 0i32;
        for t in toks.by_ref() {
            match &t {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                _ => {}
            }
        }
        fields.push(Field { name, default });
    }
    fields
}

/// Count the fields of a tuple-variant payload (top-level commas + 1,
/// tolerating a trailing comma).
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut count = 0usize;
    let mut saw_any = false;
    let mut last_was_comma = false;
    for t in stream {
        saw_any = true;
        last_was_comma = false;
        match &t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                count += 1;
                last_was_comma = true;
            }
            _ => {}
        }
    }
    if !saw_any {
        0
    } else if last_was_comma {
        count
    } else {
        count + 1
    }
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut toks = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attrs(&mut toks);
        let name = match toks.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive shim: expected variant name, got {other:?}"),
        };
        let shape = match toks.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                toks.next();
                Shape::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                toks.next();
                Shape::Struct(fields)
            }
            _ => Shape::Unit,
        };
        // Consume the separating comma, if any.
        if matches!(toks.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            toks.next();
        }
        variants.push(Variant { name, shape });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let mut toks = input.into_iter().peekable();
    skip_attrs(&mut toks);
    // Skip visibility.
    if matches!(toks.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        toks.next();
        if matches!(toks.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            toks.next();
        }
    }
    let kind = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive shim: expected `struct`/`enum`, got {other:?}"),
    };
    let name = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive shim: expected item name, got {other:?}"),
    };
    if matches!(toks.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive shim: generic type `{name}` is not supported");
    }
    let body = match toks.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => panic!(
            "serde_derive shim: `{name}` must have a braced body (tuple/unit items unsupported), got {other:?}"
        ),
    };
    match kind.as_str() {
        "struct" => Item::Struct { name, fields: parse_named_fields(body) },
        "enum" => Item::Enum { name, variants: parse_variants(body) },
        other => panic!("serde_derive shim: cannot derive for `{other}`"),
    }
}

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let mut pushes = String::new();
            for f in fields {
                pushes.push_str(&format!(
                    "m.push((::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value(&self.{f})));\n",
                    f = f.name
                ));
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                   fn to_value(&self) -> ::serde::Value {{\n\
                     let mut m: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n\
                     {pushes}\
                     ::serde::Value::Map(m)\n\
                   }}\n\
                 }}\n"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::Str(::std::string::String::from(\"{vn}\")),\n"
                    )),
                    Shape::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vn}(f0) => ::serde::Value::Map(vec![(::std::string::String::from(\"{vn}\"), ::serde::Serialize::to_value(f0))]),\n"
                    )),
                    Shape::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let elems: Vec<String> = binders
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::Value::Map(vec![(::std::string::String::from(\"{vn}\"), ::serde::Value::Seq(vec![{}]))]),\n",
                            binders.join(", "),
                            elems.join(", ")
                        ));
                    }
                    Shape::Struct(fields) => {
                        let binders: Vec<&str> =
                            fields.iter().map(|f| f.name.as_str()).collect();
                        let pushes: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value({f}))",
                                    f = f.name
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {} }} => ::serde::Value::Map(vec![(::std::string::String::from(\"{vn}\"), ::serde::Value::Map(vec![{}]))]),\n",
                            binders.join(", "),
                            pushes.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                   fn to_value(&self) -> ::serde::Value {{\n\
                     match self {{\n{arms}}}\n\
                   }}\n\
                 }}\n"
            )
        }
    }
}

fn gen_field_read(owner: &str, f: &Field) -> String {
    let missing = if f.default {
        "::std::default::Default::default()".to_string()
    } else {
        format!(
            "return ::std::result::Result::Err(::serde::DeError::new(\"{owner}: missing field `{f}`\"))",
            f = f.name
        )
    };
    format!(
        "{f}: match m.iter().find(|kv| kv.0 == \"{f}\") {{\n\
           ::std::option::Option::Some(kv) => ::serde::Deserialize::from_value(&kv.1)?,\n\
           ::std::option::Option::None => {missing},\n\
         }},\n",
        f = f.name
    )
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let reads: String = fields.iter().map(|f| gen_field_read(name, f)).collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                   fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                     let m = match v {{\n\
                       ::serde::Value::Map(m) => m,\n\
                       _ => return ::std::result::Result::Err(::serde::DeError::new(\"{name}: expected map\")),\n\
                     }};\n\
                     ::std::result::Result::Ok({name} {{\n{reads}}})\n\
                   }}\n\
                 }}\n"
            )
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => unit_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n"
                    )),
                    Shape::Tuple(1) => tagged_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(::serde::Deserialize::from_value(payload)?)),\n"
                    )),
                    Shape::Tuple(n) => {
                        let reads: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&seq[{i}])?"))
                            .collect();
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                               let seq = match payload {{\n\
                                 ::serde::Value::Seq(s) if s.len() == {n} => s,\n\
                                 _ => return ::std::result::Result::Err(::serde::DeError::new(\"{name}::{vn}: expected {n}-element sequence\")),\n\
                               }};\n\
                               ::std::result::Result::Ok({name}::{vn}({reads}))\n\
                             }},\n",
                            reads = reads.join(", ")
                        ));
                    }
                    Shape::Struct(fields) => {
                        let reads: String =
                            fields.iter().map(|f| gen_field_read(name, f)).collect();
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                               let m = match payload {{\n\
                                 ::serde::Value::Map(m) => m,\n\
                                 _ => return ::std::result::Result::Err(::serde::DeError::new(\"{name}::{vn}: expected map payload\")),\n\
                               }};\n\
                               ::std::result::Result::Ok({name}::{vn} {{\n{reads}}})\n\
                             }},\n"
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                   fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                     match v {{\n\
                       ::serde::Value::Str(s) => match s.as_str() {{\n\
                         {unit_arms}\
                         other => ::std::result::Result::Err(::serde::DeError::new(&format!(\"{name}: unknown unit variant `{{other}}`\"))),\n\
                       }},\n\
                       ::serde::Value::Map(m) if m.len() == 1 => {{\n\
                         let tag = m[0].0.as_str();\n\
                         let payload = &m[0].1;\n\
                         let _ = payload;\n\
                         match tag {{\n\
                           {tagged_arms}\
                           other => ::std::result::Result::Err(::serde::DeError::new(&format!(\"{name}: unknown variant `{{other}}`\"))),\n\
                         }}\n\
                       }},\n\
                       _ => ::std::result::Result::Err(::serde::DeError::new(\"{name}: expected string or single-key map\")),\n\
                     }}\n\
                   }}\n\
                 }}\n"
            )
        }
    }
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("serde_derive shim: generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive shim: generated Deserialize impl must parse")
}

//! Minimal offline stand-in for `serde_json`.
//!
//! Provides [`to_string`], [`to_string_pretty`], and [`from_str`] over the
//! vendored serde shim's [`Value`] data model. The emitted JSON matches
//! real serde_json's externally-tagged conventions for the types this
//! workspace derives, so schema round-trips behave identically.

use std::fmt::{self, Write as _};

pub use serde::Value;
use serde::{DeError, Deserialize, Serialize};

/// Error type covering both serialization (infallible here, kept for API
/// compatibility) and JSON parse/shape errors.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.to_string())
    }
}

pub type Result<T> = std::result::Result<T, Error>;

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_float(out: &mut String, f: f64) {
    if f.is_finite() {
        // Like serde_json: integral floats print with a trailing `.0`.
        if f == f.trunc() && f.abs() < 1e15 {
            let _ = write!(out, "{:.1}", f);
        } else if f != 0.0 && (f.abs() >= 1e16 || f.abs() < 1e-6) {
            // Exponent form for extreme magnitudes (e.g. f64::MAX):
            // `{}` would print a 300-digit integer-looking literal that
            // is not round-trippable through the number parser.
            let _ = write!(out, "{:e}", f);
        } else {
            let _ = write!(out, "{}", f);
        }
    } else {
        // serde_json rejects non-finite floats; emitting null keeps the
        // output valid JSON, which is all the reports need.
        out.push_str("null");
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => escape_into(out, s),
        Value::Seq(items) => write_block(out, indent, '[', ']', items.len(), |out, i, ind| {
            write_value(out, &items[i], ind)
        }),
        Value::Map(entries) => write_block(out, indent, '{', '}', entries.len(), |out, i, ind| {
            escape_into(out, &entries[i].0);
            out.push(':');
            if indent.is_some() {
                out.push(' ');
            }
            write_value(out, &entries[i].1, ind);
        }),
    }
}

fn write_block(
    out: &mut String,
    indent: Option<usize>,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, Option<usize>),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    let inner = indent.map(|d| d + 1);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(d) = inner {
            out.push('\n');
            out.push_str(&"  ".repeat(d));
        }
        item(out, i, inner);
    }
    if let Some(d) = indent {
        out.push('\n');
        out.push_str(&"  ".repeat(d));
    }
    out.push(close);
}

/// Serialize to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None);
    Ok(out)
}

/// Serialize to two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(0));
    Ok(out)
}

/// Serialize into the [`Value`] data model directly.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(value.to_value())
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser { bytes: s.as_bytes(), pos: 0 }
    }

    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'{') => self.parse_map(),
            Some(b'[') => self.parse_seq(),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') | Some(b'f') => {
                if self.eat_keyword("true") {
                    Ok(Value::Bool(true))
                } else if self.eat_keyword("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'n') => {
                if self.eat_keyword("null") {
                    Ok(Value::Null)
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(_) => self.parse_number(),
        }
    }

    fn parse_map(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            let key = self.parse_string()?;
            self.expect(b':')?;
            let val = self.parse_value()?;
            entries.push((key, val));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn parse_seq(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| self.err("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not produced by the writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Collect the full UTF-8 sequence starting at b.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    let end = start + width;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| self.err("truncated UTF-8"))?;
                    let s = std::str::from_utf8(chunk)
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        self.skip_ws();
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if is_float {
            text.parse::<f64>().map(Value::Float).map_err(|_| self.err("invalid number"))
        } else {
            text.parse::<i64>().map(Value::Int).map_err(|_| self.err("invalid number"))
        }
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

/// Parse a JSON document into a `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser::new(s);
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(T::from_value(&v)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_value() {
        let v = Value::Map(vec![
            ("a".into(), Value::Seq(vec![Value::Int(1), Value::Bool(true), Value::Null])),
            ("b".into(), Value::Str("x \"quoted\"\n".into())),
            ("c".into(), Value::Float(1.5)),
        ]);
        struct W(Value);
        impl Serialize for W {
            fn to_value(&self) -> Value {
                self.0.clone()
            }
        }
        let compact = to_string(&W(v.clone())).unwrap();
        let mut p = Parser::new(&compact);
        assert_eq!(p.parse_value().unwrap(), v);
        let pretty = to_string_pretty(&W(v.clone())).unwrap();
        let mut p = Parser::new(&pretty);
        assert_eq!(p.parse_value().unwrap(), v);
    }
}

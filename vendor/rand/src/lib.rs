//! Minimal offline stand-in for `rand` 0.8.
//!
//! Implements exactly the API surface this workspace uses — deterministic,
//! seedable generation for data generators and error injectors:
//!
//! * [`rngs::StdRng`] — a SplitMix64 generator (not cryptographic, but
//!   statistically fine for test-data synthesis);
//! * [`SeedableRng::seed_from_u64`];
//! * [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`];
//! * [`seq::SliceRandom::shuffle`] / [`seq::SliceRandom::choose`].
//!
//! All call sites seed explicitly, so no OS entropy source is needed.

use std::ops::{Range, RangeInclusive};

/// Raw 64-bit generator interface.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Construct a generator from a seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible by [`Rng::gen`] (stand-in for rand's
/// `Standard: Distribution<T>` bound).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`] like in real rand.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64: tiny, seedable, passes basic statistical tests —
    /// a fine stand-in for StdRng's ChaCha in test-data generation.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling and sampling.
    pub trait SliceRandom {
        type Item;
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            let x: u64 = a.gen();
            assert_eq!(x, b.gen::<u64>());
        }
        for _ in 0..1000 {
            let v = a.gen_range(-5i64..7);
            assert!((-5..7).contains(&v));
            let w = a.gen_range(1usize..=3);
            assert!((1..=3).contains(&w));
            let f: f64 = a.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_and_choose() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut v: Vec<u32> = (0..20).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}

//! Minimal offline stand-in for `proptest`.
//!
//! The build environment has no network access, so the real proptest
//! cannot be fetched. This shim keeps the workspace's property tests
//! compiling and running unchanged by re-implementing the API surface
//! they use as plain random sampling:
//!
//! * [`Strategy`] with `prop_map`, `prop_flat_map`, `prop_recursive`,
//!   and `boxed`;
//! * [`Just`], ranges (`Range`/`RangeInclusive` over the integer types),
//!   and tuples of strategies up to arity 4;
//! * [`collection::vec()`] / [`collection::btree_set()`] with usize, range,
//!   or inclusive-range size specs;
//! * [`any`] for `bool` and [`sample::Index`];
//! * the [`proptest!`], [`prop_oneof!`], and `prop_assert*!` macros.
//!
//! Differences from real proptest: failing cases are **not shrunk** (the
//! panic reports the raw case), and generation is deterministic per test
//! name unless `PROPTEST_SEED` is set in the environment. Each test still
//! runs `ProptestConfig::cases` random cases, so the lemma checks retain
//! their coverage.

use std::collections::BTreeSet;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

// ---------------------------------------------------------------------------
// RNG (SplitMix64, deterministic per test)
// ---------------------------------------------------------------------------

/// The RNG handed to strategies. Deterministic per test function so CI
/// failures reproduce locally.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }
}

/// Seed derivation used by the `proptest!` macro: FNV-1a over the test
/// name, overridable with `PROPTEST_SEED` for replaying a failure.
pub fn test_rng(test_name: &str) -> TestRng {
    if let Ok(seed) = std::env::var("PROPTEST_SEED") {
        if let Ok(n) = seed.trim().parse::<u64>() {
            return TestRng::new(n);
        }
    }
    let mut h: u64 = 0xcbf29ce484222325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    TestRng::new(h)
}

// ---------------------------------------------------------------------------
// Config
// ---------------------------------------------------------------------------

/// Subset of real proptest's config: only `cases` is consulted.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
    /// Accepted for API compatibility with real proptest; the shim does
    /// not shrink, so this is never consulted. Its presence also keeps
    /// the idiomatic `ProptestConfig { cases, ..Default::default() }`
    /// meaningful (real proptest has many more fields).
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256, max_shrink_iters: 1024 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases, ..Default::default() }
    }
}

// ---------------------------------------------------------------------------
// Strategy core
// ---------------------------------------------------------------------------

/// A generator of random values. Unlike real proptest there is no value
/// tree / shrinking; `generate` samples directly.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }

    /// Bounded recursion, like real proptest: each node either stops at
    /// the base strategy or expands one level through `f`, with a stop
    /// probability chosen so the expected total size stays in the
    /// neighbourhood of `desired_size` rather than the worst-case
    /// `branch^depth` (which would overwhelm consumers sized for small
    /// inputs, e.g. solver atom budgets).
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2 + 'static,
    {
        let base = self.boxed();
        let f: Rc<RecFn<Self::Value>> = Rc::new(move |inner| f(inner).boxed());
        Recursive { base, f, depth }.boxed()
    }
}

type RecFn<T> = dyn Fn(BoxedStrategy<T>) -> BoxedStrategy<T>;

/// Lazily recursive strategy built by [`Strategy::prop_recursive`]: every
/// node stops at the base strategy with probability 1/3 or expands one
/// level through `f`, until `depth` is exhausted. This yields a geometric
/// size distribution whose expectation is near typical `desired_size`
/// arguments, instead of the worst-case `branch^depth`.
struct Recursive<T> {
    base: BoxedStrategy<T>,
    f: Rc<RecFn<T>>,
    depth: u32,
}

impl<T> Clone for Recursive<T> {
    fn clone(&self) -> Self {
        Recursive { base: self.base.clone(), f: Rc::clone(&self.f), depth: self.depth }
    }
}

impl<T: 'static> Strategy for Recursive<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        if self.depth == 0 || rng.below(3) == 0 {
            return self.base.generate(rng);
        }
        let inner = Recursive {
            base: self.base.clone(),
            f: Rc::clone(&self.f),
            depth: self.depth - 1,
        }
        .boxed();
        (self.f)(inner).generate(rng)
    }
}

/// Object-safe adapter backing [`BoxedStrategy`].
trait DynStrategy<T> {
    fn dyn_generate(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A cloneable, type-erased strategy.
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.dyn_generate(rng)
    }
}

// ---------------------------------------------------------------------------
// Primitive strategies
// ---------------------------------------------------------------------------

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// String strategies from regex-like patterns. Real proptest compiles a
/// full regex; this shim recognizes the pattern shape the workspace uses —
/// `\PC{lo,hi}` (printable, i.e. non-control, characters with a length
/// range) — and treats any other pattern as "printable characters" with a
/// default length of 0..=32. That is enough for fuzz inputs; patterns
/// needing real structure should build strings with combinators instead.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let (lo, hi) = parse_pattern_len(self).unwrap_or((0, 32));
        let n = lo + rng.below(hi - lo + 1);
        (0..n).map(|_| printable_char(rng)).collect()
    }
}

/// Extract `{lo,hi}` from the tail of a pattern, if present.
fn parse_pattern_len(pat: &str) -> Option<(usize, usize)> {
    let body = pat.strip_suffix('}')?;
    let brace = body.rfind('{')?;
    let (lo, hi) = body[brace + 1..].split_once(',')?;
    Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
}

/// A random non-control character: mostly ASCII printable, with a tail of
/// non-ASCII code points (Latin-1 supplement, Greek, CJK) so parsers see
/// multi-byte UTF-8.
fn printable_char(rng: &mut TestRng) -> char {
    match rng.below(8) {
        0 => char::from_u32(0x00a1 + rng.below(0x1e0) as u32).unwrap_or('¿'),
        1 => char::from_u32(0x0391 + rng.below(0x30) as u32).unwrap_or('Ω'),
        2 => char::from_u32(0x4e00 + rng.below(0x1000) as u32).unwrap_or('中'),
        _ => (0x20u8 + rng.below(0x5f) as u8) as char,
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

/// `prop_map` adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// `prop_flat_map` adapter.
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Uniform choice among boxed arms; built by `prop_oneof!`.
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union { arms: self.arms.clone() }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len());
        self.arms[i].generate(rng)
    }
}

// ---------------------------------------------------------------------------
// any / Arbitrary
// ---------------------------------------------------------------------------

/// Types with a canonical strategy, reachable through [`any`].
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy produced by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

// ---------------------------------------------------------------------------
// collection
// ---------------------------------------------------------------------------

pub mod collection {
    use super::*;

    /// Length specification accepted by [`vec()`] / [`btree_set()`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            self.lo + rng.below(self.hi - self.lo + 1)
        }
    }

    /// `Vec` of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `BTreeSet` of roughly `size` elements (duplicates collapse, as
    /// with real proptest's set strategies on small domains).
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size: size.into() }
    }

    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let n = self.size.sample(rng);
            // Bounded attempts so tiny element domains cannot loop forever.
            let mut out = BTreeSet::new();
            for _ in 0..n * 4 {
                if out.len() >= n {
                    break;
                }
                out.insert(self.element.generate(rng));
            }
            out
        }
    }
}

// ---------------------------------------------------------------------------
// sample
// ---------------------------------------------------------------------------

pub mod sample {
    use super::{Arbitrary, TestRng};

    /// An index into a collection whose length is only known at use time.
    #[derive(Debug, Clone, Copy)]
    pub struct Index(u64);

    impl Index {
        /// Map onto `[0, len)`. Panics if `len == 0`, like real proptest.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64())
        }
    }
}

/// Alias of the crate root so `prop::collection::vec(..)` etc. work after
/// a prelude glob import, as with real proptest.
pub mod prop {
    pub use crate::{collection, sample};
}

pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+);
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_ne!($a, $b, $($fmt)+);
    };
}

/// The `proptest!` block: expands each
/// `fn name(pat in strategy, ...) { body }` into a `#[test]` that runs
/// `config.cases` sampled cases. Attributes (including `#[test]` and doc
/// comments) are carried over from the source.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..config.cases {
                $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)+
                $body
            }
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_oneof_sample_in_domain() {
        let mut rng = crate::test_rng("ranges");
        let s = prop_oneof![(0i64..3).prop_map(|v| v * 10), Just(99i64)];
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!(v == 0 || v == 10 || v == 20 || v == 99, "got {v}");
        }
    }

    #[test]
    fn recursive_produces_varied_depths() {
        #[derive(Debug, Clone)]
        enum Tree {
            #[allow(dead_code)] // payload exercises prop_map, value unused
            Leaf(i64),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(cs) => 1 + cs.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = (0i64..4).prop_map(Tree::Leaf).prop_recursive(3, 8, 3, |inner| {
            prop::collection::vec(inner, 1..3).prop_map(Tree::Node)
        });
        let mut rng = crate::test_rng("recursive");
        let mut seen_leaf = false;
        let mut seen_node = false;
        for _ in 0..100 {
            let t = strat.generate(&mut rng);
            let d = depth(&t);
            assert!(d <= 3, "depth {d} exceeds bound");
            seen_leaf |= d == 0;
            seen_node |= d > 0;
        }
        assert!(seen_leaf && seen_node, "sampling should mix depths");
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn macro_runs_cases(x in 0u32..10, v in prop::collection::vec(0i64..5, 0..4)) {
            prop_assert!(x < 10);
            prop_assert!(v.len() < 4);
            prop_assert_eq!(x, x);
            prop_assert_ne!(x as i64, -1);
        }
    }
}

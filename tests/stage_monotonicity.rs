//! Theorem 3.1's "once a stage is cleared, Qr-Hint never requires the
//! user to come back to fix the same fragment again": across the whole
//! Students corpus, Brass pairs, and randomized fault injection, the
//! advice trail's stage sequence must be non-decreasing (with the
//! FROM→GROUP-BY structure fix as the one legal two-stage interaction:
//! a Structure hint at the GROUP BY stage precedes the SELECT repair of
//! the de-aggregated columns, which is still forward progress).

use qr_hint::prelude::*;
use qrhint_workloads::{brass, inject, students};

fn stage_rank(s: Stage) -> u8 {
    match s {
        Stage::From => 0,
        Stage::Where => 1,
        Stage::GroupBy => 2,
        Stage::Having => 3,
        Stage::Select => 4,
        Stage::Done => 5,
    }
}

fn assert_monotone_trail(qr: &QrHint, target: &Query, working: &Query, id: &str) {
    let Ok((_, trail)) = qr.fix_fully(target, working) else {
        panic!("{id}: pipeline failed");
    };
    let stages: Vec<Stage> = trail.iter().map(|a| a.stage).collect();
    for w in stages.windows(2) {
        assert!(
            stage_rank(w[0]) <= stage_rank(w[1]),
            "{id}: stage trail revisits a cleared stage: {stages:?}"
        );
    }
    assert_eq!(*stages.last().unwrap(), Stage::Done, "{id}: {stages:?}");
    // Each stage appears at most once — one interaction per fragment
    // (the pipeline auto-applies each stage's full repair).
    let mut seen = std::collections::BTreeSet::new();
    for s in &stages {
        if *s != Stage::Done {
            assert!(seen.insert(stage_rank(*s)), "{id}: stage {s} repeated: {stages:?}");
        }
    }
}

#[test]
fn students_corpus_trails_are_monotone() {
    let qr = QrHint::new(students::schema());
    for (i, e) in students::corpus().iter().enumerate() {
        if e.category == "UNSUPPORTED" || i % 5 != 0 {
            continue;
        }
        let target = qr.prepare(&e.pair.target_sql).unwrap();
        let working = qr.prepare(&e.pair.working_sql).unwrap();
        assert_monotone_trail(&qr, &target, &working, &e.pair.id);
    }
}

#[test]
fn brass_pair_trails_are_monotone() {
    let qr = QrHint::new(brass::schema());
    for issue in brass::issues() {
        for pair in &issue.pairs {
            let target = qr.prepare(&pair.target_sql).unwrap();
            let working = qr.prepare(&pair.working_sql).unwrap();
            assert_monotone_trail(&qr, &target, &working, &pair.id);
        }
    }
}

#[test]
fn injected_error_trails_are_monotone() {
    let qr = QrHint::new(qrhint_workloads::beers::course_schema());
    let target_sql = "SELECT l.drinker FROM Likes l, Frequents f \
                      WHERE l.beer = 'Corona' AND l.drinker = f.drinker \
                        AND f.times_a_week >= 2";
    let target = qr.prepare(target_sql).unwrap();
    for seed in 0..12u64 {
        for k in 1..=3usize {
            let (broken, _) = inject::inject_atom_errors(&target.where_pred, k, seed);
            let mut wrong = target.clone();
            wrong.where_pred = broken;
            assert_monotone_trail(&qr, &target, &wrong, &format!("inject-{k}-{seed}"));
        }
    }
}

//! JSON serialization of advice: golden snapshots for every [`Hint`]
//! variant and a serialize/deserialize round-trip property test over
//! whole [`Advice`] values.

use qr_hint::prelude::*;
use qrhint_sqlparse::{parse_pred, parse_query, parse_scalar};

fn every_hint_variant() -> Vec<Hint> {
    vec![
        Hint::FromTableCount { table: "frequents".into(), have: 0, want: 1 },
        Hint::Structure { needs_grouping: true },
        Hint::PredicateRepair {
            clause: ClauseKind::Where,
            sites: vec![SiteHint {
                path: vec![3],
                current: parse_pred("s1.price > s2.price").unwrap(),
                fix: parse_pred("s1.price >= s2.price").unwrap(),
            }],
            cost: 0.25,
        },
        Hint::GroupByRemove { expr: parse_scalar("t.a").unwrap() },
        Hint::GroupByMissing { count: 2 },
        Hint::SelectReplace { position: 2, current: parse_scalar("s2.beer").unwrap() },
        Hint::SelectRemove { position: 3, current: parse_scalar("s2.bar").unwrap() },
        Hint::SelectMissing { count: 1 },
        Hint::DistinctMismatch { need_distinct: true },
    ]
}

/// Every `Hint` enum variant must appear in `every_hint_variant` — a
/// tripwire so adding a variant forces extending these tests.
#[test]
fn fixture_covers_every_variant() {
    let discriminants: std::collections::HashSet<_> =
        every_hint_variant().iter().map(std::mem::discriminant).collect();
    assert_eq!(discriminants.len(), 9, "duplicate or missing variants in fixture");
}

#[test]
fn golden_hint_snapshots() {
    let golden = [
        r#"{"FromTableCount":{"table":"frequents","have":0,"want":1}}"#,
        r#"{"Structure":{"needs_grouping":true}}"#,
        r#"{"PredicateRepair":{"clause":"Where","sites":[{"path":[3],"current":{"Cmp":[{"Col":{"table":"s1","column":"price"}},"Gt",{"Col":{"table":"s2","column":"price"}}]},"fix":{"Cmp":[{"Col":{"table":"s1","column":"price"}},"Ge",{"Col":{"table":"s2","column":"price"}}]}}],"cost":0.25}}"#,
        r#"{"GroupByRemove":{"expr":{"Col":{"table":"t","column":"a"}}}}"#,
        r#"{"GroupByMissing":{"count":2}}"#,
        r#"{"SelectReplace":{"position":2,"current":{"Col":{"table":"s2","column":"beer"}}}}"#,
        r#"{"SelectRemove":{"position":3,"current":{"Col":{"table":"s2","column":"bar"}}}}"#,
        r#"{"SelectMissing":{"count":1}}"#,
        r#"{"DistinctMismatch":{"need_distinct":true}}"#,
    ];
    for (hint, want) in every_hint_variant().iter().zip(golden) {
        let got = serde_json::to_string(hint).unwrap();
        assert_eq!(got, want, "snapshot drift for {hint:?}");
    }
}

#[test]
fn every_hint_variant_round_trips_inside_advice() {
    let fixed = parse_query(
        "SELECT s.bar, COUNT(*) FROM Serves s \
         WHERE s.price >= 3 GROUP BY s.bar HAVING COUNT(*) >= 2",
    )
    .unwrap();
    let mapping: std::collections::BTreeMap<String, String> =
        [("s1".to_string(), "s".to_string())].into_iter().collect();
    for hint in every_hint_variant() {
        let advice = Advice {
            stage: Stage::Where,
            hints: vec![hint],
            fixed: Some(fixed.clone()),
            mapping: Some(mapping.clone()),
        };
        let json = serde_json::to_string(&advice).unwrap();
        let back: Advice = serde_json::from_str(&json).unwrap();
        assert_eq!(advice, back, "round-trip drift via {json}");
    }
}

#[test]
fn whole_clause_fallback_cost_round_trips() {
    // The pipeline's whole-clause-replacement fallback uses f64::MAX (not
    // infinity, which JSON cannot represent) — it must survive a
    // round-trip exactly.
    let hint = Hint::PredicateRepair {
        clause: ClauseKind::Having,
        sites: vec![],
        cost: f64::MAX,
    };
    let json = serde_json::to_string(&hint).unwrap();
    let back: Hint = serde_json::from_str(&json).unwrap();
    assert_eq!(hint, back);
}

#[test]
fn done_advice_round_trips_with_null_fields() {
    let advice = Advice { stage: Stage::Done, hints: vec![], fixed: None, mapping: None };
    let json = serde_json::to_string(&advice).unwrap();
    assert_eq!(json, r#"{"stage":"Done","hints":[],"fixed":null,"mapping":null}"#);
    let back: Advice = serde_json::from_str(&json).unwrap();
    assert_eq!(advice, back);
}

#[test]
fn pipeline_advice_round_trips_end_to_end() {
    // Real advice out of the pipeline (not hand-built), through JSON and
    // back, for each stage of the paper's Example 2 walk.
    let schema = Schema::new()
        .with_table(
            "Likes",
            &[("drinker", SqlType::Str), ("beer", SqlType::Str)],
            &["drinker", "beer"],
        )
        .with_table(
            "Frequents",
            &[("drinker", SqlType::Str), ("bar", SqlType::Str)],
            &["drinker", "bar"],
        )
        .with_table(
            "Serves",
            &[("bar", SqlType::Str), ("beer", SqlType::Str), ("price", SqlType::Int)],
            &["bar", "beer"],
        );
    let qr = QrHint::new(schema);
    let target = "SELECT L.beer, S1.bar, COUNT(*)
        FROM Likes L, Frequents F, Serves S1, Serves S2
        WHERE L.drinker = F.drinker AND F.bar = S1.bar
          AND L.beer = S1.beer AND S1.beer = S2.beer
          AND S1.price <= S2.price
        GROUP BY F.drinker, L.beer, S1.bar
        HAVING F.drinker = 'Amy'";
    let working = "SELECT s2.beer, s2.bar, COUNT(*)
        FROM Likes, Serves s1, Serves s2
        WHERE drinker = 'Amy'
          AND Likes.beer = s1.beer AND Likes.beer = s2.beer
          AND s1.price > s2.price
        GROUP BY s2.beer, s2.bar";
    let q_star = qr.prepare(target).unwrap();
    let q = qr.prepare(working).unwrap();
    let (_, trail) = qr.fix_fully(&q_star, &q).unwrap();
    assert!(trail.len() >= 3, "expected a multi-stage trail");
    for advice in &trail {
        let json = serde_json::to_string(advice).unwrap();
        let back: Advice = serde_json::from_str(&json).unwrap();
        assert_eq!(*advice, back, "stage {}", advice.stage);
    }
}

mod proptest_roundtrip {
    use super::*;
    use proptest::prelude::*;

    fn arb_scalar() -> impl Strategy<Value = qr_hint::ast::Scalar> {
        prop_oneof![
            (0i64..100).prop_map(qr_hint::ast::Scalar::Int),
            ("[a-z]{1,6}", "[a-z]{1,6}")
                .prop_map(|(t, c)| qr_hint::ast::Scalar::col(&t, &c)),
        ]
    }

    fn arb_pred() -> impl Strategy<Value = qr_hint::ast::Pred> {
        use qr_hint::ast::{CmpOp, Pred};
        let leaf = (arb_scalar(), arb_scalar(), prop_oneof![
            Just(CmpOp::Eq),
            Just(CmpOp::Lt),
            Just(CmpOp::Ge),
        ])
        .prop_map(|(l, r, op)| Pred::cmp(l, op, r));
        leaf.prop_recursive(2, 8, 3, |inner| {
            prop::collection::vec(inner.clone(), 2..4).prop_map(Pred::and)
        })
    }

    fn arb_hint() -> impl Strategy<Value = Hint> {
        prop_oneof![
            ("[a-z]{1,8}", 0usize..4, 0usize..4)
                .prop_map(|(table, have, want)| Hint::FromTableCount { table, have, want }),
            any::<bool>().prop_map(|needs_grouping| Hint::Structure { needs_grouping }),
            (arb_pred(), arb_pred(), 0i64..40, any::<bool>()).prop_map(
                |(current, fix, quarters, wh)| Hint::PredicateRepair {
                    clause: if wh { ClauseKind::Where } else { ClauseKind::Having },
                    sites: vec![SiteHint { path: vec![0, 1], current, fix }],
                    cost: quarters as f64 * 0.25,
                }
            ),
            arb_scalar().prop_map(|expr| Hint::GroupByRemove { expr }),
            (1usize..5).prop_map(|count| Hint::GroupByMissing { count }),
            (1usize..5, arb_scalar())
                .prop_map(|(position, current)| Hint::SelectReplace { position, current }),
            (1usize..5, arb_scalar())
                .prop_map(|(position, current)| Hint::SelectRemove { position, current }),
            (1usize..5).prop_map(|count| Hint::SelectMissing { count }),
            any::<bool>().prop_map(|need_distinct| Hint::DistinctMismatch { need_distinct }),
        ]
    }

    proptest! {
        #[test]
        fn advice_round_trips(
            hints in prop::collection::vec(arb_hint(), 0..4),
            done in any::<bool>(),
        ) {
            let advice = Advice {
                stage: if done { Stage::Done } else { Stage::Where },
                hints,
                fixed: None,
                mapping: Some(
                    [("a".to_string(), "b".to_string())].into_iter().collect(),
                ),
            };
            let json = serde_json::to_string(&advice).unwrap();
            let back: Advice = serde_json::from_str(&json).unwrap();
            prop_assert_eq!(advice, back);
        }
    }
}

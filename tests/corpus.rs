//! Corpus-level integration: the synthetic Students+ corpus and the
//! Brass-issue pairs all flow through the pipeline; supported wrong
//! queries converge to verified-equivalent queries; unsupported ones are
//! rejected with a diagnostic (never a crash).

use qr_hint::prelude::*;
use qrhint_engine::differential_equiv;
use qrhint_workloads::{brass, students};

#[test]
fn students_corpus_supported_queries_converge() {
    let schema = students::schema();
    let qr = QrHint::new(schema.clone());
    let corpus = students::corpus();
    // Every 7th supported entry (deterministic sample, ~44 queries) gets
    // the full fix-and-differentially-verify treatment; the complete
    // corpus runs in the E1 experiment binary.
    let mut checked = 0;
    for (i, e) in corpus.iter().enumerate() {
        if e.category == "UNSUPPORTED" || i % 7 != 0 {
            continue;
        }
        let target = qr
            .prepare(&e.pair.target_sql)
            .unwrap_or_else(|err| panic!("{}: {err}", e.pair.id));
        let working = qr
            .prepare(&e.pair.working_sql)
            .unwrap_or_else(|err| panic!("{}: {err}", e.pair.id));
        let (final_q, trail) = qr
            .fix_fully(&target, &working)
            .unwrap_or_else(|err| panic!("{}: {err}", e.pair.id));
        assert!(
            trail.last().unwrap().is_equivalent(),
            "{} did not converge",
            e.pair.id
        );
        let ok = differential_equiv(&target, &final_q, &schema, 7 + i as u64, 10)
            .unwrap_or_else(|err| panic!("{}: {err}", e.pair.id));
        assert!(ok, "{}: fixed query differs from target on random data", e.pair.id);
        checked += 1;
    }
    assert!(checked >= 40, "sample too small: {checked}");
}

#[test]
fn students_unsupported_queries_error_cleanly() {
    let qr = QrHint::new(students::schema());
    for e in students::corpus() {
        if e.category != "UNSUPPORTED" {
            continue;
        }
        let err = qr
            .advise_sql(&e.pair.target_sql, &e.pair.working_sql)
            .unwrap_err();
        assert!(
            matches!(err, qrhint_core::QrHintError::Unsupported(_)),
            "{}: expected Unsupported, got {err:?}",
            e.pair.id
        );
    }
}

#[test]
fn brass_error_issues_are_detected_and_fixed() {
    let qr = QrHint::new(brass::schema());
    for (n, category, pair) in brass::supported_pairs() {
        if category != brass::PaperCategory::ErrorFixed {
            continue;
        }
        let target = qr.prepare(&pair.target_sql).unwrap();
        let working = qr.prepare(&pair.working_sql).unwrap();
        // The working query must be flagged (not equivalent)...
        let advice = qr
            .advise(&target, &working)
            .unwrap_or_else(|e| panic!("issue {n}: {e}"));
        assert!(
            !advice.is_equivalent(),
            "issue {n} ({}) should be flagged as an error",
            pair.id
        );
        // ...and fixable to verified equivalence.
        let (final_q, trail) = qr.fix_fully(&target, &working).unwrap();
        assert!(trail.last().unwrap().is_equivalent(), "issue {n} did not converge");
        let ok = differential_equiv(&target, &final_q, qr.schema(), n as u64, 10).unwrap();
        assert!(ok, "issue {n}: fixed query wrong on random data");
    }
}

#[test]
fn brass_no_flag_issues_are_proven_equivalent() {
    let qr = QrHint::new(brass::schema());
    for (n, category, pair) in brass::supported_pairs() {
        if category != brass::PaperCategory::EquivalentNoFlag {
            continue;
        }
        let advice = qr
            .advise_sql(&pair.target_sql, &pair.working_sql)
            .unwrap_or_else(|e| panic!("issue {n}: {e}"));
        assert!(
            advice.is_equivalent(),
            "issue {n} ({}) is only stylistic; got stage {:?} hints {:?}",
            pair.id,
            advice.stage,
            advice.hints
        );
    }
}

#[test]
fn brass_flagged_issues_still_lead_to_correct_queries() {
    // Category 3 of §9.1: Qr-Hint fails to detect equivalence (it would
    // need key/FK constraints) and suggests fixes — which must still lead
    // to correct queries (with the "side effect of resolving the issue").
    let qr = QrHint::new(brass::schema());
    for (n, category, pair) in brass::supported_pairs() {
        if category != brass::PaperCategory::EquivalentButFlagged {
            continue;
        }
        let target = qr.prepare(&pair.target_sql).unwrap();
        let working = qr.prepare(&pair.working_sql).unwrap();
        let (final_q, trail) = qr
            .fix_fully(&target, &working)
            .unwrap_or_else(|e| panic!("issue {n}: {e}"));
        assert!(trail.last().unwrap().is_equivalent(), "issue {n} did not converge");
        let ok = differential_equiv(&target, &final_q, qr.schema(), 100 + n as u64, 10)
            .unwrap();
        assert!(ok, "issue {n}: fixed query wrong on random data");
    }
}

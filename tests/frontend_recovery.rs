//! Front-end recovery experiment: how many of the Students corpus's 35
//! UNSUPPORTED queries (the 11 % the paper's prototype rejects, §9.1)
//! become hintable once the footnote-2 front-end and the positive-
//! subquery rewrite are enabled?
//!
//! Expected recovery by construction of the corpus:
//!
//! * question (b): 1/3  — the positive `IN (SELECT ...)` variant
//!   (UNION and LEFT JOIN stay out);
//! * question (c): 15/20 — `EXISTS`, `JOIN ... ON` and `IN (SELECT)`
//!   variants (INTERSECT stays out);
//! * question (d): 0/12 — EXCEPT, FULL OUTER JOIN, and IN-subqueries
//!   *with aggregation* (footnote 2 is aggregation-free) stay out.
//!
//! Total: 16/35 recovered, and every recovered query must be driven to
//! verified equivalence by the ordinary pipeline.

use qr_hint::prelude::*;
use qrhint_engine::differential_equiv;
use qrhint_workloads::students;

#[test]
fn front_end_recovers_16_of_35_unsupported_queries() {
    let schema = students::schema();
    let qr = QrHint::new(schema.clone());
    let opts = FlattenOptions::with_subquery_rewrite();
    let corpus = students::corpus();
    let unsupported: Vec<_> =
        corpus.iter().filter(|e| e.category == "UNSUPPORTED").collect();
    assert_eq!(unsupported.len(), 35);

    let mut recovered = 0usize;
    let mut by_question: std::collections::BTreeMap<&str, usize> =
        std::collections::BTreeMap::new();
    for entry in &unsupported {
        // Still out of scope for the strict §3 parser…
        assert!(
            qr.prepare(&entry.pair.working_sql).is_err(),
            "corpus bug: {} parsed strictly",
            entry.pair.id
        );
        // …but possibly recovered by the front-end.
        let Ok(working) = qr.prepare_extended(&entry.pair.working_sql, &opts) else {
            continue;
        };
        recovered += 1;
        *by_question.entry(entry.question).or_default() += 1;

        // A recovered query is a first-class citizen: the pipeline must
        // drive it to verified equivalence with the target.
        let target = qr
            .prepare_extended(&entry.pair.target_sql, &opts)
            .unwrap_or_else(|e| panic!("target of {} failed: {e}", entry.pair.id));
        let (final_q, trail) = qr
            .fix_fully(&target, &working)
            .unwrap_or_else(|e| panic!("pipeline failed on {}: {e}", entry.pair.id));
        assert!(trail.last().unwrap().is_equivalent(), "{} did not converge", entry.pair.id);
        let ok = differential_equiv(&target, &final_q, qr.schema(), 0xEC0, 15)
            .unwrap_or_else(|e| panic!("execution failed on {}: {e}", entry.pair.id));
        assert!(ok, "{}: final query not bag-equivalent to target", entry.pair.id);
    }

    assert_eq!(by_question.get("b").copied().unwrap_or(0), 1, "{by_question:?}");
    assert_eq!(by_question.get("c").copied().unwrap_or(0), 15, "{by_question:?}");
    assert_eq!(by_question.get("d").copied().unwrap_or(0), 0, "{by_question:?}");
    assert_eq!(recovered, 16, "front-end recovery rate changed: {by_question:?}");
}

#[test]
fn recovery_without_subquery_rewrite_is_join_syntax_only() {
    // With only the footnote-2 rewrites (no duplicate-caveat opt-in),
    // just the JOIN-syntax variants of question (c) are recovered.
    let qr = QrHint::new(students::schema());
    let opts = FlattenOptions::default();
    let recovered = students::corpus()
        .iter()
        .filter(|e| e.category == "UNSUPPORTED")
        .filter(|e| qr.prepare_extended(&e.pair.working_sql, &opts).is_ok())
        .count();
    assert_eq!(recovered, 5, "JOIN-syntax variants of question (c) only");
}

//! Differential check of the execution engine against an independent
//! naive reference evaluator (PR 6, satellite of the fuzz oracle).
//!
//! [`qrhint_engine::execute`] is the ground truth the differential
//! fuzz harness trusts, so it needs its own oracle: a deliberately
//! naive evaluator written here from the documented semantics (§3 of
//! the paper plus the engine's stated conventions), sharing **no code**
//! with the engine — environments are name maps instead of slot
//! layouts, LIKE is a fresh recursive matcher, grouping is a key map
//! built per row. The two must agree, as bags, on GROUP BY + HAVING
//! queries over every bundled workload schema and on the fuzzer's
//! mutated corpora, across DataGen databases from proptest-chosen
//! seeds.
//!
//! Mirrored conventions (documented engine semantics, not accidents):
//! `AVG` is the floor of the rational average (`div_euclid`);
//! aggregates over the *implicit* empty group yield `COUNT = 0` and
//! `SUM/AVG/MIN/MAX = 0`; a non-aggregate expression over the implicit
//! empty group is an error; grouped queries emit nothing on empty
//! input; non-aggregate expressions in group context evaluate on the
//! group's first row in cross-product order.

use proptest::prelude::*;
use qr_hint::workloads::mutate::{Fuzzer, SCHEMA_NAMES};
use qrhint_engine::{bag_equal, execute, DataGen, Database, Row, Value};
use qrhint_sqlast::resolve::resolve_query;
use qrhint_sqlast::{
    AggArg, AggCall, AggFunc, ArithOp, CmpOp, Pred, Query, Scalar, Schema, SqlType,
};
use qrhint_sqlparse::parse_query;
use std::collections::BTreeMap;

// ---------------------------------------------------------------------
// The naive reference evaluator.
// ---------------------------------------------------------------------

/// A row environment: (alias, column) → value.
type Env = BTreeMap<(String, String), Value>;

type RefResult<T> = Result<T, String>;

/// All FROM environments in cross-product order (first table outermost,
/// last table varying fastest — the order the engine's odometer uses,
/// which fixes the representative row of each group).
fn cross_envs(query: &Query, schema: &Schema, db: &Database) -> RefResult<Vec<Env>> {
    let mut envs: Vec<Env> = vec![BTreeMap::new()];
    for tref in &query.from {
        let ts = schema
            .table(&tref.table)
            .ok_or_else(|| format!("unknown table {}", tref.table))?;
        let rows = db.table_or_empty(&tref.table).rows;
        let mut next = Vec::with_capacity(envs.len() * rows.len());
        for env in &envs {
            for row in &rows {
                let mut e = env.clone();
                for (col, value) in ts.columns.iter().zip(row) {
                    e.insert((tref.alias.clone(), col.name.clone()), value.clone());
                }
                next.push(e);
            }
        }
        envs = next;
    }
    Ok(envs)
}

/// Recursive-descent LIKE: `%` any sequence, `_` one character.
fn ref_like(s: &[char], p: &[char]) -> bool {
    match p.first() {
        None => s.is_empty(),
        Some('%') => {
            (0..=s.len()).any(|k| ref_like(&s[k..], &p[1..]))
        }
        Some('_') => !s.is_empty() && ref_like(&s[1..], &p[1..]),
        Some(c) => s.first() == Some(c) && ref_like(&s[1..], &p[1..]),
    }
}

fn ref_arith(l: &Value, op: ArithOp, r: &Value) -> RefResult<Value> {
    let (Value::Int(a), Value::Int(b)) = (l, r) else {
        return Err("arithmetic on strings".into());
    };
    let out = match op {
        ArithOp::Add => a.checked_add(*b),
        ArithOp::Sub => a.checked_sub(*b),
        ArithOp::Mul => a.checked_mul(*b),
        ArithOp::Div => {
            if *b == 0 {
                return Err("division by zero".into());
            }
            a.checked_div(*b)
        }
    };
    out.map(Value::Int).ok_or_else(|| "overflow".into())
}

fn ref_scalar(e: &Scalar, env: &Env) -> RefResult<Value> {
    match e {
        Scalar::Col(c) => env
            .get(&(c.table.clone(), c.column.clone()))
            .cloned()
            .ok_or_else(|| format!("unknown column {c}")),
        Scalar::Int(v) => Ok(Value::Int(*v)),
        Scalar::Str(s) => Ok(Value::Str(s.clone())),
        Scalar::Arith(l, op, r) => {
            ref_arith(&ref_scalar(l, env)?, *op, &ref_scalar(r, env)?)
        }
        Scalar::Neg(inner) => match ref_scalar(inner, env)? {
            Value::Int(x) => x
                .checked_neg()
                .map(Value::Int)
                .ok_or_else(|| "overflow".into()),
            Value::Str(_) => Err("negating a string".into()),
        },
        Scalar::Agg(_) => Err("aggregate in row context".into()),
    }
}

fn ref_agg(call: &AggCall, group: &[Env]) -> RefResult<Value> {
    let mut inputs: Vec<Value> = match &call.arg {
        AggArg::Star => group.iter().map(|_| Value::Int(1)).collect(),
        AggArg::Expr(e) => group
            .iter()
            .map(|env| ref_scalar(e, env))
            .collect::<RefResult<_>>()?,
    };
    if call.distinct {
        let mut seen = std::collections::BTreeSet::new();
        inputs.retain(|v| seen.insert(v.clone()));
    }
    match call.func {
        AggFunc::Count => Ok(Value::Int(inputs.len() as i64)),
        AggFunc::Sum | AggFunc::Avg => {
            let mut total: i64 = 0;
            for v in &inputs {
                let Value::Int(x) = v else {
                    return Err("SUM/AVG over strings".into());
                };
                total = total.checked_add(*x).ok_or("overflow")?;
            }
            if call.func == AggFunc::Sum {
                Ok(Value::Int(total))
            } else if inputs.is_empty() {
                Ok(Value::Int(0)) // engine's empty-implicit-group convention
            } else {
                Ok(Value::Int(total.div_euclid(inputs.len() as i64)))
            }
        }
        AggFunc::Min => Ok(inputs.into_iter().min().unwrap_or(Value::Int(0))),
        AggFunc::Max => Ok(inputs.into_iter().max().unwrap_or(Value::Int(0))),
    }
}

fn ref_scalar_grouped(e: &Scalar, group: &[Env]) -> RefResult<Value> {
    match e {
        Scalar::Agg(call) => ref_agg(call, group),
        Scalar::Arith(l, op, r) => ref_arith(
            &ref_scalar_grouped(l, group)?,
            *op,
            &ref_scalar_grouped(r, group)?,
        ),
        Scalar::Neg(inner) => match ref_scalar_grouped(inner, group)? {
            Value::Int(x) => x
                .checked_neg()
                .map(Value::Int)
                .ok_or_else(|| "overflow".into()),
            Value::Str(_) => Err("negating a string".into()),
        },
        other => match group.first() {
            Some(representative) => ref_scalar(other, representative),
            None => Err("non-aggregate over empty group".into()),
        },
    }
}

fn ref_cmp(l: &Value, op: CmpOp, r: &Value) -> RefResult<bool> {
    let ord = match (l, r) {
        (Value::Int(a), Value::Int(b)) => a.cmp(b),
        (Value::Str(a), Value::Str(b)) => a.cmp(b),
        _ => return Err("comparing int with string".into()),
    };
    Ok(match op {
        CmpOp::Eq => ord.is_eq(),
        CmpOp::Ne => ord.is_ne(),
        CmpOp::Lt => ord.is_lt(),
        CmpOp::Le => ord.is_le(),
        CmpOp::Gt => ord.is_gt(),
        CmpOp::Ge => ord.is_ge(),
    })
}

/// Predicate evaluation, generic over row vs. group context via a
/// scalar-evaluation closure.
fn ref_pred_with(p: &Pred, eval: &dyn Fn(&Scalar) -> RefResult<Value>) -> RefResult<bool> {
    match p {
        Pred::True => Ok(true),
        Pred::False => Ok(false),
        Pred::Cmp(l, op, r) => ref_cmp(&eval(l)?, *op, &eval(r)?),
        Pred::Like { expr, pattern, negated } => {
            let Value::Str(s) = eval(expr)? else {
                return Err("LIKE on a non-string".into());
            };
            let m = ref_like(
                &s.chars().collect::<Vec<_>>(),
                &pattern.chars().collect::<Vec<_>>(),
            );
            Ok(if *negated { !m } else { m })
        }
        Pred::And(cs) => {
            for c in cs {
                if !ref_pred_with(c, eval)? {
                    return Ok(false);
                }
            }
            Ok(true)
        }
        Pred::Or(cs) => {
            for c in cs {
                if ref_pred_with(c, eval)? {
                    return Ok(true);
                }
            }
            Ok(false)
        }
        Pred::Not(c) => Ok(!ref_pred_with(c, eval)?),
    }
}

/// The reference pipeline: cross product → WHERE → GROUP BY → HAVING →
/// SELECT → DISTINCT.
fn ref_execute(query: &Query, schema: &Schema, db: &Database) -> RefResult<Vec<Row>> {
    let mut envs = cross_envs(query, schema, db)?;
    let mut kept = Vec::new();
    for env in envs.drain(..) {
        if ref_pred_with(&query.where_pred, &|s| ref_scalar(s, &env))? {
            kept.push(env);
        }
    }

    let grouped = query.is_spja()
        && (query.select.iter().any(|s| s.expr.has_aggregate())
            || !query.group_by.is_empty()
            || query.having.is_some());
    let mut out: Vec<Row> = Vec::new();
    if grouped {
        // Key map in first-appearance order; the implicit single group
        // (possibly empty) when there is no GROUP BY.
        let groups: Vec<Vec<Env>> = if query.group_by.is_empty() {
            vec![kept]
        } else {
            let mut index: BTreeMap<Vec<Value>, usize> = BTreeMap::new();
            let mut groups: Vec<Vec<Env>> = Vec::new();
            for env in kept {
                let key: Vec<Value> = query
                    .group_by
                    .iter()
                    .map(|g| ref_scalar(g, &env))
                    .collect::<RefResult<_>>()?;
                let slot = *index.entry(key).or_insert_with(|| {
                    groups.push(Vec::new());
                    groups.len() - 1
                });
                groups[slot].push(env);
            }
            groups
        };
        for group in groups {
            if let Some(h) = &query.having {
                if !ref_pred_with(h, &|s| ref_scalar_grouped(s, &group))? {
                    continue;
                }
            }
            out.push(
                query
                    .select
                    .iter()
                    .map(|s| ref_scalar_grouped(&s.expr, &group))
                    .collect::<RefResult<_>>()?,
            );
        }
    } else {
        for env in &kept {
            out.push(
                query
                    .select
                    .iter()
                    .map(|s| ref_scalar(&s.expr, env))
                    .collect::<RefResult<_>>()?,
            );
        }
    }
    if query.distinct {
        let mut seen = std::collections::BTreeSet::new();
        out.retain(|r| seen.insert(r.clone()));
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// Query corpus: synthesized GROUP BY + HAVING queries per schema plus
// the fuzzer's mutated corpora.
// ---------------------------------------------------------------------

/// Handcrafted SPJA shapes over every table of a schema: grouped
/// COUNT(*) with HAVING, the full aggregate battery over an Int column,
/// and COUNT(DISTINCT …) in HAVING.
fn synthesized_queries(schema: &Schema) -> Vec<Query> {
    let mut out = Vec::new();
    let mut push = |sql: String| {
        let q = parse_query(&sql).unwrap_or_else(|e| panic!("{sql}: {e}"));
        out.push(resolve_query(schema, &q).unwrap_or_else(|e| panic!("{sql}: {e}")));
    };
    for table in schema.tables() {
        let cols = &table.columns;
        let c0 = &cols[0].name;
        let name = &table.name;
        push(format!(
            "SELECT t.{c0}, COUNT(*) FROM {name} t GROUP BY t.{c0} HAVING COUNT(*) >= 1"
        ));
        if let Some(ci) = cols.iter().find(|c| c.ty == SqlType::Int) {
            let ci = &ci.name;
            push(format!(
                "SELECT t.{c0}, SUM(t.{ci}), AVG(t.{ci}), MIN(t.{ci}), MAX(t.{ci}) \
                 FROM {name} t GROUP BY t.{c0} HAVING SUM(t.{ci}) >= AVG(t.{ci})"
            ));
        }
        if cols.len() >= 2 {
            let c1 = &cols[1].name;
            push(format!(
                "SELECT t.{c0} FROM {name} t GROUP BY t.{c0} \
                 HAVING COUNT(DISTINCT t.{c1}) >= 2"
            ));
        }
    }
    out
}

/// Compare engine and reference on one query over one database. When
/// the engine errors the reference must error too (there is no resource
/// limit here, but these databases are far below it); when it succeeds
/// the bags must match.
fn check_query(label: &str, query: &Query, schema: &Schema, db: &Database) {
    match execute(query, schema, db) {
        Ok(engine_rows) => {
            let ref_rows = ref_execute(query, schema, db).unwrap_or_else(|e| {
                panic!("{label}: engine succeeded but reference failed ({e}) on {query}")
            });
            assert!(
                bag_equal(&engine_rows, &ref_rows),
                "{label}: engine and reference disagree on {query}\n\
                 engine: {engine_rows:?}\nreference: {ref_rows:?}"
            );
        }
        Err(e) => {
            assert!(
                ref_execute(query, schema, db).is_err(),
                "{label}: engine failed ({e}) but reference succeeded on {query}"
            );
        }
    }
}

fn check_schema(schema_name: &str, db_seed: u64, rows: usize) {
    let fuzzer = Fuzzer::for_schema(schema_name).expect("bundled schema");
    let schema = fuzzer.schema().clone();
    let mut queries = synthesized_queries(&schema);
    // The fuzzer's mutants add SELECT/GROUP BY/HAVING/FROM shapes a
    // handcrafted list would miss; constants are shared with DataGen
    // below so predicates are actually exercised.
    for case in fuzzer.generate(12, 7) {
        queries.push(case.target);
        queries.push(case.working);
    }
    let query_refs: Vec<&Query> = queries.iter().collect();
    let db = DataGen::new(db_seed).with_rows(rows).generate(&schema, &query_refs);
    for (i, query) in queries.iter().enumerate() {
        check_query(&format!("{schema_name}[{i}] seed {db_seed}"), query, &schema, &db);
    }
}

proptest! {
    // 6 schemas × ~40 queries per case keeps the whole run in seconds.
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    #[test]
    fn engine_agrees_with_naive_reference(db_seed in 0u64..1_000, rows in 2usize..7) {
        for schema_name in SCHEMA_NAMES {
            check_schema(schema_name, db_seed, rows);
        }
    }
}

#[test]
fn reference_mirrors_empty_group_conventions() {
    let fuzzer = Fuzzer::for_schema("beers").expect("bundled schema");
    let schema = fuzzer.schema().clone();
    let empty = Database::new();
    let q = parse_query("SELECT COUNT(*), SUM(s.price), AVG(s.price) FROM serves s").unwrap();
    let q = resolve_query(&schema, &q).unwrap();
    let engine_rows = execute(&q, &schema, &empty).expect("implicit group executes");
    let ref_rows = ref_execute(&q, &schema, &empty).expect("reference agrees");
    assert_eq!(engine_rows, vec![vec![Value::Int(0), Value::Int(0), Value::Int(0)]]);
    assert_eq!(engine_rows, ref_rows);

    // Mixed agg/non-agg SELECT without GROUP BY errors on empty input
    // in both implementations — the shape behind the known exec gaps.
    let q = parse_query("SELECT s.bar, COUNT(*) FROM serves s").unwrap();
    let q = resolve_query(&schema, &q).unwrap();
    assert!(execute(&q, &schema, &empty).is_err());
    assert!(ref_execute(&q, &schema, &empty).is_err());
}

//! Domain-constraint context tests (§3 "Limitations" item 4): schema
//! `CHECK` constraints enter the WHERE-stage reasoning as solver context,
//! so equivalences that hold only *under the domain* stop producing
//! spurious hints — the quantifier-free fragment of the paper's
//! "encode constraints as logical assertions" future-work item.

use qr_hint::prelude::*;
use qrhint_sqlparse::{parse_pred, parse_schema};

fn serves_with_positive_price() -> Schema {
    Schema::new()
        .with_table(
            "Serves",
            &[("bar", SqlType::Str), ("beer", SqlType::Str), ("price", SqlType::Int)],
            &["bar", "beer"],
        )
        .with_check("Serves", parse_pred("price > 0").unwrap())
}

#[test]
fn ddl_check_constraints_parse() {
    let schema = parse_schema(
        "CREATE TABLE conference_paper (
            pubkey VARCHAR(40) PRIMARY KEY,
            title  VARCHAR(200),
            year   INT CHECK (year >= 1936),
            area   VARCHAR(20),
            CHECK (area IN ('ML-AI', 'Theory', 'Database', 'Systems', 'UNKNOWN'))
         );",
    )
    .unwrap();
    let t = schema.table("conference_paper").unwrap();
    assert_eq!(t.checks.len(), 2, "{:?}", t.checks);
    assert!(t.checks[0].to_string().contains("year >= 1936"));
    assert!(t.checks[1].to_string().contains("'UNKNOWN'"));
}

#[test]
fn domain_context_is_instantiated_per_alias() {
    let schema = serves_with_positive_price();
    let q = parse_query("SELECT a.bar FROM Serves a, Serves b WHERE a.beer = b.beer").unwrap();
    let ctx = schema.domain_context(&q);
    assert_eq!(ctx.len(), 2);
    let printed: Vec<String> = ctx.iter().map(|p| p.to_string()).collect();
    assert!(printed.contains(&"a.price > 0".to_string()), "{printed:?}");
    assert!(printed.contains(&"b.price > 0".to_string()), "{printed:?}");
}

#[test]
fn check_implied_condition_is_not_flagged() {
    // Target spells out `price >= 1`; the student omitted it. Without the
    // CHECK these differ; with CHECK (price > 0) over integers they are
    // equivalent, and Qr-Hint must not hint.
    let target = "SELECT s.bar FROM Serves s WHERE s.price >= 1 AND s.beer = 'IPA'";
    let working = "SELECT s.bar FROM Serves s WHERE s.beer = 'IPA'";

    let plain = QrHint::new(
        Schema::new().with_table(
            "Serves",
            &[("bar", SqlType::Str), ("beer", SqlType::Str), ("price", SqlType::Int)],
            &["bar", "beer"],
        ),
    );
    let advice = plain.advise_sql(target, working).unwrap();
    assert_eq!(advice.stage, Stage::Where, "without CHECK the queries differ");

    let checked = QrHint::new(serves_with_positive_price());
    let advice = checked.advise_sql(target, working).unwrap();
    assert!(
        advice.is_equivalent(),
        "with CHECK (price > 0) the condition is implied: {:?}",
        advice.hints
    );
}

#[test]
fn enum_domain_equivalence_via_check() {
    // area ∈ {A,B,C} by CHECK; then `area <> 'C'` ⇔ `area = 'A' OR
    // area = 'B'` — an equivalence that only holds under the domain.
    let schema = Schema::new()
        .with_table(
            "Paper",
            &[("pubkey", SqlType::Str), ("area", SqlType::Str)],
            &["pubkey"],
        )
        .with_check("Paper", parse_pred("area IN ('A', 'B', 'C')").unwrap());
    let qr = QrHint::new(schema);
    let advice = qr
        .advise_sql(
            "SELECT p.pubkey FROM Paper p WHERE p.area <> 'C'",
            "SELECT p.pubkey FROM Paper p WHERE p.area = 'A' OR p.area = 'B'",
        )
        .unwrap();
    assert!(advice.is_equivalent(), "{:?}", advice.hints);
}

#[test]
fn repair_under_context_localizes_to_the_real_error() {
    // With CHECK (price > 0): `price >= 0` is redundant-but-harmless
    // (equivalent to the target's missing condition), so the only real
    // error is the beer name — the hint must contain exactly one site.
    let qr = QrHint::new(serves_with_positive_price());
    let advice = qr
        .advise_sql(
            "SELECT s.bar FROM Serves s WHERE s.beer = 'IPA'",
            "SELECT s.bar FROM Serves s WHERE s.price > 0 AND s.beer = 'Ale'",
        )
        .unwrap();
    assert_eq!(advice.stage, Stage::Where);
    let Hint::PredicateRepair { sites, .. } = &advice.hints[0] else {
        panic!("expected predicate repair, got {:?}", advice.hints)
    };
    assert_eq!(sites.len(), 1, "only the beer atom is wrong: {sites:?}");
    assert!(sites[0].current.to_string().contains("'Ale'"), "{sites:?}");
}

#[test]
fn context_does_not_leak_into_unconstrained_schemas() {
    // Same queries, no CHECK: both atoms differ, so the repair must
    // touch the price atom as well (one or two sites, but the fixed
    // query must be equivalent — and it is not judged equivalent
    // up front).
    let qr = QrHint::new(
        Schema::new().with_table(
            "Serves",
            &[("bar", SqlType::Str), ("beer", SqlType::Str), ("price", SqlType::Int)],
            &["bar", "beer"],
        ),
    );
    let advice = qr
        .advise_sql(
            "SELECT s.bar FROM Serves s WHERE s.beer = 'IPA'",
            "SELECT s.bar FROM Serves s WHERE s.price > 0 AND s.beer = 'Ale'",
        )
        .unwrap();
    assert_eq!(advice.stage, Stage::Where);
    // And the pipeline still converges.
    let q_star = qr.prepare("SELECT s.bar FROM Serves s WHERE s.beer = 'IPA'").unwrap();
    let q = qr
        .prepare("SELECT s.bar FROM Serves s WHERE s.price > 0 AND s.beer = 'Ale'")
        .unwrap();
    let (_, trail) = qr.fix_fully(&q_star, &q).unwrap();
    assert!(trail.last().unwrap().is_equivalent());
}

#[test]
fn check_constraints_survive_serde_roundtrip() {
    let schema = serves_with_positive_price();
    let json = serde_json::to_string(&schema).unwrap();
    let back: Schema = serde_json::from_str(&json).unwrap();
    assert_eq!(schema, back);
    assert_eq!(back.table("serves").unwrap().checks.len(), 1);
}

#[test]
fn spja_having_reasoning_uses_domain_context() {
    // CHECK (price > 0) ⇒ per-group MIN(price) >= 1 ⇒ SUM(price) >=
    // COUNT(*): a HAVING condition implied by the domain must not be
    // flagged. We use the simpler consequence `MIN(s.price) >= 1` ⇔ TRUE.
    let qr = QrHint::new(serves_with_positive_price());
    let advice = qr
        .advise_sql(
            "SELECT s.bar, COUNT(*) FROM Serves s GROUP BY s.bar \
             HAVING MIN(s.price) >= 1",
            "SELECT s.bar, COUNT(*) FROM Serves s GROUP BY s.bar",
        )
        .unwrap();
    // Domain lifting MIN bounds is solver-dependent; accept either a
    // definite equivalence or a correct (HAVING-stage) repair — but it
    // must never be misreported as a WHERE or GROUP BY problem.
    assert!(
        advice.is_equivalent()
            || advice.stage == Stage::Having
            || advice.stage == Stage::GroupBy && advice.hints.is_empty(),
        "stage = {:?}, hints = {:?}",
        advice.stage,
        advice.hints
    );
}

//! Property test (vendored proptest shim): randomly generated,
//! duplicate-heavy submission batches grade identically under
//! [`PreparedTarget::grade_batch`] and
//! [`PreparedTarget::grade_batch_parallel`] — the advice-cache read
//! path and the lock-striped group slots must never change an answer,
//! only the wall-clock.

use proptest::prelude::*;
use qr_hint::prelude::*;
// Shared with the benchmark and hammer tests (dev-only back-edge) so
// all parity definitions stay literally the same code.
use qrhint_bench::parallel_grading::fingerprint;
use qrhint_sqlast::SqlType;

fn beers_schema() -> Schema {
    Schema::new()
        .with_table(
            "Likes",
            &[("drinker", SqlType::Str), ("beer", SqlType::Str)],
            &["drinker", "beer"],
        )
        .with_table(
            "Serves",
            &[("bar", SqlType::Str), ("beer", SqlType::Str), ("price", SqlType::Int)],
            &["bar", "beer"],
        )
}

const TARGET: &str = "SELECT s.bar FROM Serves s WHERE s.price >= 3 AND s.beer = 'Bud'";

/// Submission templates spanning the interesting paths: equivalent
/// rewrites, WHERE/SELECT/structure mistakes, a distinct FROM binding,
/// a FROM-stage failure, and a parse error. Batches sample these *with*
/// replacement, so duplicates (the advice-cache read path) dominate.
const TEMPLATES: &[&str] = &[
    "SELECT s.bar FROM Serves s WHERE s.price >= 3 AND s.beer = 'Bud'",
    "SELECT s.bar FROM Serves s WHERE s.beer = 'Bud' AND s.price > 2",
    "SELECT s.bar FROM Serves s WHERE s.price > 3 AND s.beer = 'Bud'",
    "SELECT s.bar FROM Serves s WHERE s.price >= 3",
    "SELECT s.beer FROM Serves s WHERE s.price >= 3 AND s.beer = 'Bud'",
    "SELECT x.bar FROM Serves x WHERE x.price >= 3 AND x.beer = 'Bud'",
    "SELECT s.bar, COUNT(*) FROM Serves s WHERE s.price >= 3 GROUP BY s.bar",
    "SELECT l.beer FROM Likes l",
    "SELEKT bogus FROM nowhere",
];

proptest! {
    // Each case grades a whole batch twice; 24 cases keeps the suite in
    // test-budget while still mixing batch shapes and worker counts.
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn duplicate_heavy_batches_grade_identically(
        picks in prop::collection::vec(0usize..TEMPLATES.len(), 1..32),
        jobs_pick in 0usize..3,
    ) {
        let jobs = [2usize, 4, 8][jobs_pick];
        let batch: Vec<&str> = picks.iter().map(|&i| TEMPLATES[i]).collect();
        let qr = QrHint::new(beers_schema());
        let sequential = {
            let prepared = qr.compile_target(TARGET).unwrap();
            fingerprint(&prepared.grade_batch(&batch))
        };
        let parallel = {
            let prepared = qr.compile_target(TARGET).unwrap();
            fingerprint(&prepared.grade_batch_parallel(&batch, jobs))
        };
        prop_assert_eq!(&parallel, &sequential);
        // And a second hammer over the now-warm parallel target (pure
        // advice-cache read path under contention) must agree too.
        let warm = {
            let prepared = qr.compile_target(TARGET).unwrap();
            prepared.grade_batch_parallel(&batch, jobs);
            fingerprint(&prepared.grade_batch_parallel(&batch, jobs))
        };
        prop_assert_eq!(&warm, &sequential);
    }
}

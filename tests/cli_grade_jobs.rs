//! CLI batch-mode coverage for `grade --jobs N`: the JSON output must
//! be identical across worker counts (grading is deterministic and
//! order-preserving), and the exit-code contract — 0 all graded, 1 tool
//! error, 3 malformed submission present — must hold independent of
//! `--jobs`.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

const BIN: &str = env!("CARGO_BIN_EXE_qr-hint");

/// A unique scratch directory under the system temp dir (no tempfile
/// crate in the offline vendor set); removed on drop, best-effort.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!(
            "qrhint-cli-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(dir.join("subs")).expect("create scratch dir");
        Scratch(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }

    fn write(&self, rel: &str, contents: &str) {
        fs::write(self.0.join(rel), contents).expect("write fixture");
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

const SCHEMA: &str = "CREATE TABLE Serves (\
    bar VARCHAR(20), beer VARCHAR(20), price INT, PRIMARY KEY (bar, beer));";
const TARGET: &str = "SELECT s.bar FROM Serves s WHERE s.price >= 3";

fn setup(tag: &str, include_malformed: bool) -> Scratch {
    let s = Scratch::new(tag);
    s.write("schema.sql", SCHEMA);
    s.write("target.sql", TARGET);
    s.write("subs/a_equiv.sql", "SELECT s.bar FROM Serves s WHERE s.price > 2");
    s.write("subs/b_where.sql", "SELECT s.bar FROM Serves s WHERE s.price > 3");
    s.write("subs/c_select.sql", "SELECT s.beer FROM Serves s WHERE s.price >= 3");
    if include_malformed {
        s.write("subs/d_malformed.sql", "SELEKT nonsense");
    }
    s
}

fn grade(s: &Scratch, extra: &[&str]) -> Output {
    let dir = s.path();
    Command::new(BIN)
        .arg("grade")
        .args(["--schema", &dir.join("schema.sql").display().to_string()])
        .args(["--target", &dir.join("target.sql").display().to_string()])
        .args(["--submissions", &dir.join("subs").display().to_string()])
        .args(extra)
        .output()
        .expect("run qr-hint")
}

#[test]
fn jobs_4_json_is_identical_to_jobs_1() {
    let s = setup("parity", true);
    let j1 = grade(&s, &["--jobs", "1", "--json"]);
    let j4 = grade(&s, &["--jobs", "4", "--json"]);
    assert_eq!(j1.status.code(), j4.status.code());
    let (out1, out4) = (
        String::from_utf8(j1.stdout).unwrap(),
        String::from_utf8(j4.stdout).unwrap(),
    );
    assert_eq!(out1, out4, "--jobs must not change the JSON output");
    // Sanity on the content: per-file entries in submission order.
    let a = out1.find("a_equiv.sql").expect("first file present");
    let b = out1.find("b_where.sql").expect("second file present");
    let d = out1.find("d_malformed.sql").expect("malformed file present");
    assert!(a < b && b < d, "entries out of submission order");
    assert!(out1.contains("\"equivalent\": true"));
    assert!(out1.contains("parse error"));
}

#[test]
fn batch_with_malformed_submission_exits_3_for_all_job_counts() {
    let s = setup("exit3", true);
    for jobs in ["1", "2", "8"] {
        let out = grade(&s, &["--jobs", jobs]);
        assert_eq!(
            out.status.code(),
            Some(3),
            "jobs={jobs}: a malformed submission must exit 3"
        );
    }
}

#[test]
fn clean_batch_exits_0_for_all_job_counts() {
    let s = setup("exit0", false);
    for jobs in ["1", "4"] {
        let out = grade(&s, &["--jobs", jobs]);
        assert_eq!(out.status.code(), Some(0), "jobs={jobs}");
        let text = String::from_utf8(out.stdout).unwrap();
        assert!(text.contains("1 equivalent, 2 hinted, 0 malformed"), "{text}");
    }
}

#[test]
fn bad_target_exits_1_regardless_of_jobs() {
    let s = setup("exit1", false);
    s.write("target.sql", "SELEKT broken");
    for jobs in ["1", "4"] {
        let out = grade(&s, &["--jobs", jobs]);
        assert_eq!(out.status.code(), Some(1), "jobs={jobs}: target error is ours");
    }
}

#[test]
fn invalid_jobs_value_is_a_usage_error() {
    let s = setup("usage", false);
    for bad in ["-2", "many", "4.5"] {
        let out = grade(&s, &["--jobs", bad]);
        assert_eq!(out.status.code(), Some(2), "--jobs {bad} must be rejected");
    }
}

#[test]
fn jobs_auto_and_zero_use_available_parallelism() {
    // `--jobs 0` and `--jobs auto` both mean "whatever the hardware
    // offers" — they must grade successfully and produce output
    // identical to an explicit job count.
    let s = setup("auto", false);
    let baseline = grade(&s, &["--jobs", "1", "--json"]);
    assert_eq!(baseline.status.code(), Some(0));
    for auto in ["0", "auto"] {
        let out = grade(&s, &["--jobs", auto, "--json"]);
        assert_eq!(out.status.code(), Some(0), "--jobs {auto} must be accepted");
        assert_eq!(
            String::from_utf8(out.stdout).unwrap(),
            String::from_utf8(baseline.stdout.clone()).unwrap(),
            "--jobs {auto} output must match --jobs 1"
        );
    }
}

#[test]
fn serve_mode_rejects_file_flags_as_usage_errors() {
    // `serve --target t.sql` must not silently start an empty daemon —
    // targets are registered over HTTP, so file-mode flags are a usage
    // error (exit 2), matching the other mode/flag mismatches.
    for flags in [
        vec!["serve", "--target", "t.sql"],
        vec!["serve", "--schema", "s.sql"],
        vec!["serve", "--submissions", "subs"],
        vec!["serve", "--json"],
        vec!["serve", "--interactive"],
    ] {
        let out = Command::new(BIN).args(&flags).output().expect("run qr-hint");
        assert_eq!(out.status.code(), Some(2), "{flags:?} must be a usage error");
    }
}

#[test]
fn advise_mode_exit_codes_unchanged() {
    // The pre-existing single-submission contract must survive the
    // batch-mode changes: 0 graded, 3 malformed working query.
    let s = setup("advise", false);
    s.write("student.sql", "SELECT s.bar FROM Serves s WHERE s.price > 3");
    let dir = s.path();
    let run = |working: &str| {
        Command::new(BIN)
            .args(["--schema", &dir.join("schema.sql").display().to_string()])
            .args(["--target", &dir.join("target.sql").display().to_string()])
            .args(["--working", &dir.join(working).display().to_string()])
            .output()
            .expect("run qr-hint")
    };
    assert_eq!(run("student.sql").status.code(), Some(0));
    s.write("student.sql", "SELEKT nonsense");
    assert_eq!(run("student.sql").status.code(), Some(3));
}

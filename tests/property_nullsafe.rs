//! Property-based tests for the NULL prototype (§3 Limitations item 2):
//! the two-variable encoding must agree with the reference 3VL evaluator
//! on every predicate and every NULL pattern, and solver verdicts built
//! on the encoding must be sound against exhaustive grid evaluation.

use proptest::prelude::*;
use qrhint_core::nullsafe::{encode_where_3vl, eval_3vl, null_indicator, where_equiv_3vl};
use qrhint_sqlast::{CmpOp, ColRef, Pred, Scalar};
use std::collections::{BTreeMap, BTreeSet};

const COLS: [&str; 3] = ["a", "b", "c"];

fn arb_atom() -> impl Strategy<Value = Pred> {
    let col = prop_oneof![Just("a"), Just("b"), Just("c")];
    let op = prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ];
    let rhs = prop_oneof![
        (0i64..3).prop_map(Scalar::Int),
        prop_oneof![Just("a"), Just("b"), Just("c")]
            .prop_map(|c| Scalar::Col(ColRef::new("t", c))),
    ];
    (col, op, rhs)
        .prop_map(|(c, op, rhs)| Pred::Cmp(Scalar::Col(ColRef::new("t", c)), op, rhs))
}

fn arb_pred() -> impl Strategy<Value = Pred> {
    arb_atom().prop_recursive(3, 8, 3, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 2..4).prop_map(Pred::And),
            prop::collection::vec(inner.clone(), 2..4).prop_map(Pred::Or),
            inner.prop_map(|p| Pred::Not(Box::new(p))),
        ]
    })
}

fn arb_nullable() -> impl Strategy<Value = BTreeSet<ColRef>> {
    prop::collection::btree_set(
        prop_oneof![Just("a"), Just("b"), Just("c")].prop_map(|c| ColRef::new("t", c)),
        0..=3,
    )
}

/// All assignments of {NULL, 0, 1} to the three columns (non-nullable
/// columns never take NULL).
fn assignments(nullable: &BTreeSet<ColRef>) -> Vec<BTreeMap<ColRef, Option<i64>>> {
    let mut out = vec![BTreeMap::new()];
    for name in COLS {
        let c = ColRef::new("t", name);
        let domain: Vec<Option<i64>> = if nullable.contains(&c) {
            vec![None, Some(0), Some(1)]
        } else {
            vec![Some(0), Some(1)]
        };
        let mut next = Vec::with_capacity(out.len() * domain.len());
        for partial in &out {
            for v in &domain {
                let mut m = partial.clone();
                m.insert(c.clone(), *v);
                next.push(m);
            }
        }
        out = next;
    }
    out
}

/// Extend a 3VL assignment to the encoding's vocabulary: value variables
/// get arbitrary defaults when NULL, indicators reflect the pattern.
fn extend(
    assign: &BTreeMap<ColRef, Option<i64>>,
) -> BTreeMap<ColRef, Option<i64>> {
    let mut ext = BTreeMap::new();
    for (c, v) in assign {
        ext.insert(c.clone(), Some(v.unwrap_or(55)));
        ext.insert(null_indicator(c), Some(i64::from(v.is_none())));
    }
    ext
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    /// The encoding is pointwise-correct: for every NULL pattern and
    /// every value assignment, 2VL evaluation of `T(P)` equals
    /// "3VL evaluation of `P` is TRUE".
    #[test]
    fn encoding_matches_reference_semantics(p in arb_pred(), ns in arb_nullable()) {
        let enc = encode_where_3vl(&p, &ns);
        for assign in assignments(&ns) {
            let three = eval_3vl(&p, &assign);
            let two = eval_3vl(&enc, &extend(&assign));
            prop_assert_eq!(
                two,
                Some(three == Some(true)),
                "pred {} / nullable {:?} / assignment {:?}",
                p, ns, assign
            );
        }
    }

    /// Solver soundness over the encoding: a definite `where_equiv_3vl`
    /// verdict is never contradicted by exhaustive evaluation.
    #[test]
    fn solver_verdicts_sound_under_3vl(p in arb_pred(), q in arb_pred(), ns in arb_nullable()) {
        let verdict = where_equiv_3vl(&p, &q, &ns);
        if verdict.is_true() || verdict.is_false() {
            let mut all_agree = true;
            for assign in assignments(&ns) {
                let tp = eval_3vl(&p, &assign) == Some(true);
                let tq = eval_3vl(&q, &assign) == Some(true);
                if tp != tq {
                    all_agree = false;
                    break;
                }
            }
            if verdict.is_true() {
                prop_assert!(
                    all_agree,
                    "solver: TRUE-sets equal, but grid disagrees for {} vs {} ({:?})",
                    p, q, ns
                );
            }
            // verdict False means *some* assignment over the full integer
            // domain separates them — the small grid may miss it, so only
            // the True direction is checked pointwise.
        }
    }

    /// Monotonicity of nullability: predicates judged equivalent with a
    /// nullable set stay equivalent when columns become NOT NULL… is NOT
    /// generally true (e.g. guards collapse) — but reflexivity is:
    /// every predicate is 3VL-equivalent to itself under any pattern.
    #[test]
    fn reflexivity_under_any_null_pattern(p in arb_pred(), ns in arb_nullable()) {
        prop_assert!(where_equiv_3vl(&p, &p, &ns).is_true(), "{} not self-equivalent", p);
    }

    /// NOT-NULL degeneration: with no nullable columns, the encoding is
    /// the identity (modulo smart-constructor normalization), so the 3VL
    /// check agrees with plain 2VL equivalence on the grid.
    #[test]
    fn empty_nullable_set_degenerates_to_2vl(p in arb_pred()) {
        let ns = BTreeSet::new();
        let enc = encode_where_3vl(&p, &ns);
        for assign in assignments(&ns) {
            prop_assert_eq!(eval_3vl(&enc, &assign), eval_3vl(&p, &assign));
        }
    }
}

//! The user-study queries (Appendix Tables 2–3) through the pipeline:
//! Qr-Hint must produce hints matching the study's (stage, site) shape
//! and fix every wrong query to full equivalence.

use qr_hint::prelude::*;
use qrhint_workloads::dblp;

fn session() -> QrHint {
    QrHint::new(dblp::schema())
}

fn question(id: &str) -> dblp::StudyQuestion {
    dblp::questions().into_iter().find(|q| q.id == id).unwrap()
}

#[test]
fn q1_hint_is_a_where_repair_on_the_year_condition() {
    let qr = session();
    let q1 = question("Q1");
    let advice = qr.advise_sql(q1.correct_sql, q1.wrong_sql).unwrap();
    assert_eq!(advice.stage, Stage::Where, "hints: {:?}", advice.hints);
    let Hint::PredicateRepair { sites, .. } = &advice.hints[0] else {
        panic!("expected a WHERE repair: {:?}", advice.hints)
    };
    // The study hint: "You should change a.year + 20 > d.year".
    assert!(
        sites.iter().any(|s| s.current.to_string().contains("year")),
        "some site should involve the year comparison: {sites:?}"
    );
}

#[test]
fn q2_hints_are_group_by_then_select() {
    let qr = session();
    let q2 = question("Q2");
    // First interaction: GROUP BY (authorship.author must go) — matching
    // the study's Qr-Hint hint 1.
    let advice = qr.advise_sql(q2.correct_sql, q2.wrong_sql).unwrap();
    assert_eq!(advice.stage, Stage::GroupBy, "hints: {:?}", advice.hints);
    assert!(
        advice.hints.iter().any(|h| matches!(h, Hint::GroupByRemove { expr }
            if expr.to_string().contains("author"))),
        "Δ− should name the spurious author grouping: {:?}",
        advice.hints
    );
    // Continue: the next failing stage is SELECT (COUNT(*) is wrong) —
    // the study's Qr-Hint hint 2.
    let target = qr.prepare(q2.correct_sql).unwrap();
    let fixed = advice.fixed.unwrap();
    let advice2 = qr.advise(&target, &fixed).unwrap();
    assert_eq!(advice2.stage, Stage::Select, "hints: {:?}", advice2.hints);
    assert!(advice2
        .hints
        .iter()
        .any(|h| matches!(h, Hint::SelectReplace { position: 3, .. })));
}

#[test]
fn q4_hints_are_in_group_by_and_having() {
    let qr = session();
    let q4 = question("Q4");
    let advice = qr.advise_sql(q4.correct_sql, q4.wrong_sql).unwrap();
    // The wrong query groups by conference_paper.area (spurious) and has
    // two HAVING errors ('System' + wrong count attribute). The first
    // failing stage after FROM/WHERE is GROUP BY or HAVING.
    assert!(
        advice.stage == Stage::GroupBy
            || advice.stage == Stage::Having
            || advice.stage == Stage::Where,
        "unexpected stage {:?} with hints {:?}",
        advice.stage,
        advice.hints
    );
}

#[test]
fn all_study_queries_fix_fully() {
    let qr = session();
    for q in dblp::questions() {
        // Q1 joins 8 tables; differential execution would need a tiny
        // instance, so here we rely on the pipeline's own verified
        // equivalence (every stage repair is solver-verified).
        let target = qr.prepare(q.correct_sql).unwrap();
        let working = qr.prepare(q.wrong_sql).unwrap();
        let (final_q, trail) = qr
            .fix_fully(&target, &working)
            .unwrap_or_else(|e| panic!("{}: {e}", q.id));
        assert!(trail.last().unwrap().is_equivalent(), "{} did not converge", q.id);
        let recheck = qr.advise(&target, &final_q).unwrap();
        assert!(recheck.is_equivalent(), "{} final query not equivalent", q.id);
    }
}

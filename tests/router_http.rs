//! End-to-end coverage of the `qr-hint route` scale-out layer over real
//! `TcpStream`s: consistent-hash placement stability, advice-JSON byte
//! parity between routed and direct-to-backend responses, failover
//! re-sharding when a backend dies mid-serve, and the bounded-queue
//! `429` shedding contract under a saturated router.

use qr_hint::server::{
    Client, RegistryConfig, Ring, Router, RouterConfig, Server, ServerConfig, ServiceConfig,
};
use serde::Value;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::{Duration, Instant};

const SCHEMA: &str = "CREATE TABLE Serves (\
    bar VARCHAR(20), beer VARCHAR(20), price INT, PRIMARY KEY (bar, beer));";

/// Distinct targets so placement has something to spread.
const TARGETS: &[&str] = &[
    "SELECT s.bar FROM Serves s WHERE s.price >= 3",
    "SELECT s.beer FROM Serves s WHERE s.price < 5",
    "SELECT s.bar, s.beer FROM Serves s WHERE s.price = 4",
    "SELECT DISTINCT s.bar FROM Serves s",
    "SELECT s.bar FROM Serves s WHERE s.price >= 3 AND s.beer = 'ipa'",
    "SELECT s.beer FROM Serves s WHERE s.bar = 'alehouse'",
    "SELECT s.bar FROM Serves s WHERE s.price > 1 AND s.price < 9",
    "SELECT s.beer, s.price FROM Serves s WHERE s.price <> 2",
];

const SUBMISSION: &str = "SELECT s.bar FROM Serves s WHERE s.price > 2";

fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    qr_hint::server::client::request_once(addr, method, path, body).expect("request")
}

fn json_get<'v>(v: &'v Value, key: &str) -> &'v Value {
    match v {
        Value::Map(m) => m
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .unwrap_or_else(|| panic!("no key `{key}` in {v:?}")),
        other => panic!("expected map for `{key}`, got {other:?}"),
    }
}

fn json_str(v: &Value) -> &str {
    match v {
        Value::Str(s) => s.as_str(),
        other => panic!("expected string, got {other:?}"),
    }
}

fn json_int(v: &Value) -> i64 {
    match v {
        Value::Int(i) => *i,
        other => panic!("expected integer, got {other:?}"),
    }
}

fn parse_json(body: &str) -> Value {
    serde_json::from_str::<Value>(body).unwrap_or_else(|e| panic!("bad JSON ({e}): {body}"))
}

// ---------------------------------------------------------------------------
// Harness: two in-process backends joined by a router
// ---------------------------------------------------------------------------

struct Topology {
    router_addr: SocketAddr,
    backend_addrs: Vec<SocketAddr>,
    router_thread: Option<std::thread::JoinHandle<std::io::Result<()>>>,
    backend_threads: Vec<std::thread::JoinHandle<std::io::Result<()>>>,
}

impl Topology {
    fn start(backends: usize, health_interval: Duration) -> Topology {
        let mut backend_addrs = Vec::new();
        let mut backend_threads = Vec::new();
        for _ in 0..backends {
            let server = Server::bind(ServerConfig {
                addr: "127.0.0.1:0".into(),
                workers: 2,
                service: ServiceConfig { jobs: 1, registry: RegistryConfig::default() },
                ..ServerConfig::default()
            })
            .expect("bind backend");
            backend_addrs.push(server.addr());
            backend_threads.push(std::thread::spawn(move || server.run()));
        }
        let router = Router::start(RouterConfig {
            addr: "127.0.0.1:0".into(),
            backends: backend_addrs.clone(),
            health_interval,
            workers: 2,
            ..RouterConfig::default()
        })
        .expect("start router");
        let router_addr = router.addr();
        let router_thread = Some(std::thread::spawn(move || router.run()));
        Topology { router_addr, backend_addrs, router_thread, backend_threads }
    }

    /// Register through the router; returns (gid, home backend addr).
    fn register(&self, target: &str) -> (String, String) {
        let body = format!(
            "{{\"schema\": {}, \"target\": {}}}",
            serde_json::to_string(SCHEMA).unwrap(),
            serde_json::to_string(target).unwrap()
        );
        let (status, body) = request(self.router_addr, "POST", "/targets", &body);
        assert_eq!(status, 201, "register through router failed: {body}");
        let v = parse_json(&body);
        (json_str(json_get(&v, "id")).to_string(), json_str(json_get(&v, "backend")).to_string())
    }

    /// Drain the router, then every still-listening backend.
    fn shutdown(mut self) {
        let (status, body) = request(self.router_addr, "POST", "/shutdown", "");
        assert_eq!(status, 200, "{body}");
        self.router_thread
            .take()
            .unwrap()
            .join()
            .expect("router thread panicked")
            .expect("router run() errored");
        for &addr in &self.backend_addrs {
            if let Ok(mut client) = Client::connect(addr) {
                let _ = client.request("POST", "/shutdown", "");
            }
        }
        for handle in self.backend_threads.drain(..) {
            handle.join().expect("backend thread panicked").expect("backend run() errored");
        }
    }
}

// ---------------------------------------------------------------------------
// Consistent-hash placement
// ---------------------------------------------------------------------------

/// The ring is a pure function of (labels, replicas): the same inputs
/// place every id identically across rebuilds, and removing one
/// backend moves only the ids it owned — the property routed failover
/// relies on.
#[test]
fn ring_placement_is_deterministic_and_only_moves_dead_shares() {
    let labels: Vec<String> =
        ["10.0.0.1:7878", "10.0.0.2:7878", "10.0.0.3:7878"].map(String::from).to_vec();
    let ring_a = Ring::new(&labels, 64);
    let ring_b = Ring::new(&labels, 64);
    let ids: Vec<String> = (0..200).map(|i| format!("t{i}")).collect();
    let all_up = |_: usize| true;
    let before: Vec<usize> =
        ids.iter().map(|id| ring_a.place(id, all_up).expect("placed")).collect();
    let rebuilt: Vec<usize> =
        ids.iter().map(|id| ring_b.place(id, all_up).expect("placed")).collect();
    assert_eq!(before, rebuilt, "identical rings must place identically");

    // Kill backend 1: its ids move, everyone else's stay put.
    let survives = |idx: usize| idx != 1;
    for (id, &home) in ids.iter().zip(&before) {
        let after = ring_a.place(id, survives).expect("still placeable");
        if home == 1 {
            assert_ne!(after, 1, "{id} still placed on the dead backend");
        } else {
            assert_eq!(after, home, "{id} moved although its backend survived");
        }
    }
}

#[test]
fn router_reports_stable_placement_across_scrapes() {
    let topo = Topology::start(2, Duration::from_millis(200));
    let mut homes = Vec::new();
    for target in TARGETS {
        let (_, home) = topo.register(target);
        homes.push(home);
    }

    let scrape = || {
        let (status, body) = request(topo.router_addr, "GET", "/healthz", "");
        assert_eq!(status, 200);
        let v = parse_json(&body);
        assert_eq!(json_int(json_get(&v, "healthy_backends")), 2, "{body}");
        assert_eq!(json_int(json_get(&v, "targets")), TARGETS.len() as i64, "{body}");
        match json_get(&v, "backends") {
            Value::Seq(backends) => backends
                .iter()
                .map(|b| {
                    (
                        json_str(json_get(b, "addr")).to_string(),
                        json_int(json_get(b, "targets")),
                    )
                })
                .collect::<Vec<_>>(),
            other => panic!("expected backend list, got {other:?}"),
        }
    };
    let first = scrape();
    let second = scrape();
    assert_eq!(first, second, "placement changed with no topology change");
    let per_backend: Vec<i64> = first.iter().map(|(_, t)| *t).collect();
    assert_eq!(per_backend.iter().sum::<i64>(), TARGETS.len() as i64);
    // The register responses and the health report must tell one story.
    for (addr, count) in &first {
        let owned = homes.iter().filter(|h| *h == addr).count() as i64;
        assert_eq!(owned, *count, "health report disagrees with register responses");
    }
    topo.shutdown();
}

// ---------------------------------------------------------------------------
// Byte parity routed vs direct
// ---------------------------------------------------------------------------

#[test]
fn routed_advice_is_byte_identical_to_direct_backend_advice() {
    let topo = Topology::start(2, Duration::from_millis(200));
    let (gid, home) = topo.register(TARGETS[0]);
    let home_addr: SocketAddr = home.parse().expect("backend addr");

    // Register the same target directly on the home backend.
    let reg_body = format!(
        "{{\"schema\": {}, \"target\": {}}}",
        serde_json::to_string(SCHEMA).unwrap(),
        serde_json::to_string(TARGETS[0]).unwrap()
    );
    let (status, body) = request(home_addr, "POST", "/targets", &reg_body);
    assert_eq!(status, 201, "{body}");
    let local_id = json_str(json_get(&parse_json(&body), "id")).to_string();

    let advise_body = format!("{{\"sql\": {}}}", serde_json::to_string(SUBMISSION).unwrap());
    for _ in 0..3 {
        let direct =
            request(home_addr, "POST", &format!("/targets/{local_id}/advise"), &advise_body);
        let routed =
            request(topo.router_addr, "POST", &format!("/targets/{gid}/advise"), &advise_body);
        assert_eq!(direct.0, routed.0, "status diverged");
        assert_eq!(direct.1, routed.1, "routed advice is not byte-identical to direct");
    }

    // Unknown ids answer 404 through the router exactly like a backend.
    let (status, body) =
        request(topo.router_addr, "POST", "/targets/t999/advise", &advise_body);
    assert_eq!(status, 404, "{body}");
    topo.shutdown();
}

// ---------------------------------------------------------------------------
// Failover
// ---------------------------------------------------------------------------

#[test]
fn killing_a_backend_reshards_its_targets_onto_the_survivor() {
    let topo = Topology::start(2, Duration::from_millis(100));
    let mut placed = Vec::new();
    for target in TARGETS {
        placed.push(topo.register(target));
    }
    let victim = topo.backend_addrs[1];
    let moved: Vec<&String> = placed
        .iter()
        .filter(|(_, home)| home == &victim.to_string())
        .map(|(gid, _)| gid)
        .collect();
    assert!(!moved.is_empty(), "no target landed on the victim backend; placement is broken");

    // Kill the victim (drain directly — the router doesn't own it).
    let (status, _) = request(victim, "POST", "/shutdown", "");
    assert_eq!(status, 200);

    // Every moved target must answer through the router again, and the
    // health report must converge on one healthy backend owning all.
    let advise_body = format!("{{\"sql\": {}}}", serde_json::to_string(SUBMISSION).unwrap());
    let deadline = Instant::now() + Duration::from_secs(10);
    'gids: for gid in &moved {
        loop {
            let path = format!("/targets/{gid}/advise");
            if let Ok((status, _)) = qr_hint::server::client::request_once(
                topo.router_addr,
                "POST",
                &path,
                &advise_body,
            ) {
                if status == 200 || status == 422 {
                    continue 'gids;
                }
            }
            assert!(Instant::now() < deadline, "{gid} never recovered after backend kill");
            std::thread::sleep(Duration::from_millis(20));
        }
    }
    loop {
        let (status, body) = request(topo.router_addr, "GET", "/healthz", "");
        assert_eq!(status, 200);
        let v = parse_json(&body);
        if json_int(json_get(&v, "healthy_backends")) == 1 {
            assert_eq!(json_int(json_get(&v, "targets")), TARGETS.len() as i64, "{body}");
            break;
        }
        assert!(Instant::now() < deadline, "health never converged: {body}");
        std::thread::sleep(Duration::from_millis(20));
    }
    topo.shutdown();
}

// ---------------------------------------------------------------------------
// Overload shedding
// ---------------------------------------------------------------------------

/// A scripted fake backend: healthy on `/healthz`, answers registers,
/// and stalls on everything else for `stall` — pinning a router worker
/// so the test can saturate the bounded dispatch queue on purpose.
fn stalling_backend(stall: Duration) -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind fake backend");
    let addr = listener.local_addr().unwrap();
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(mut stream) = stream else { continue };
            std::thread::spawn(move || {
                let mut buf = [0u8; 4096];
                let n = stream.read(&mut buf).unwrap_or(0);
                let head = String::from_utf8_lossy(&buf[..n]).to_string();
                let respond = |stream: &mut TcpStream, status: &str, body: &str| {
                    let _ = write!(
                        stream,
                        "HTTP/1.1 {status}\r\nContent-Type: application/json\r\n\
                         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
                        body.len()
                    );
                };
                if head.starts_with("GET /healthz") {
                    respond(&mut stream, "200 OK", "{\"status\":\"ok\"}");
                } else if head.starts_with("POST /targets ") {
                    respond(&mut stream, "201 Created", "{\"id\":\"t1\"}");
                } else {
                    std::thread::sleep(stall);
                    respond(&mut stream, "200 OK", "{}");
                }
            });
        }
    });
    addr
}

/// With one router worker and a one-deep dispatch queue, a burst of
/// connections beyond capacity must be refused with the documented
/// shape: `429 Too Many Requests`, `Retry-After`, `Connection: close`,
/// and a JSON error body — written without reading the request.
#[test]
fn saturated_router_sheds_429_with_retry_after() {
    let backend = stalling_backend(Duration::from_millis(300));
    let router = Router::start(RouterConfig {
        addr: "127.0.0.1:0".into(),
        backends: vec![backend],
        health_interval: Duration::from_millis(500),
        workers: 1,
        max_pending: 1,
        ..RouterConfig::default()
    })
    .expect("start router");
    let router_addr = router.addr();
    let router_thread = std::thread::spawn(move || router.run());

    // Register through the router: the fake backend stalls on the
    // forwarded advise, pinning the single worker.
    let advise = "POST /targets/t1/advise HTTP/1.1\r\nHost: x\r\nContent-Type: application/json\r\nContent-Length: 12\r\n\r\n{\"sql\": \"x\"}";
    let (status, body) = request(
        router_addr,
        "POST",
        "/targets",
        "{\"schema\": \"CREATE TABLE T (a INT);\", \"target\": \"SELECT t.a FROM T t\"}",
    );
    assert_eq!(status, 201, "{body}");

    // The shell clamps the pool to two workers; pin both with advises
    // stalled at the backend.
    let mut pinned = Vec::new();
    for i in 1..=2 {
        let mut conn = TcpStream::connect(router_addr).expect("pinned conn");
        conn.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        conn.write_all(advise.as_bytes()).unwrap_or_else(|e| panic!("pin {i}: {e}"));
        pinned.push(conn);
        std::thread::sleep(Duration::from_millis(100));
    }

    // Burst: far more readable connections than the one-deep dispatch
    // queue can hold. Whatever the interleaving, most must be shed.
    let mut burst = Vec::new();
    for i in 0..8 {
        let mut conn = TcpStream::connect(router_addr).expect("burst conn");
        conn.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        conn.write_all(advise.as_bytes()).unwrap_or_else(|e| panic!("burst {i}: {e}"));
        burst.push(conn);
    }
    let mut shed = 0;
    let mut accepted = 0;
    for mut conn in burst {
        // Responses go out in a single write; the first read has the
        // status line.
        let mut buf = [0u8; 1024];
        let n = conn.read(&mut buf).expect("burst response");
        let head = String::from_utf8_lossy(&buf[..n]).to_string();
        if head.starts_with("HTTP/1.1 429 Too Many Requests") {
            // Shed conns are closed by the server: read to EOF.
            let mut rest = String::new();
            let _ = conn.read_to_string(&mut rest);
            let full = head + &rest;
            assert!(full.contains("Retry-After: 1"), "no Retry-After: {full}");
            assert!(full.contains("Connection: close"), "no Connection: close: {full}");
            assert!(full.contains("\"kind\":\"overloaded\""), "no JSON error body: {full}");
            shed += 1;
        } else {
            assert!(head.starts_with("HTTP/1.1 200"), "unexpected response: {head}");
            accepted += 1;
        }
    }
    assert_eq!(shed + accepted, 8, "every request must be accounted ok or shed");
    assert!(shed >= 1, "the saturated queue never shed");

    // Let the pinned requests finish (first response byte is enough —
    // the conns are keep-alive), then release them.
    for conn in &mut pinned {
        let mut byte = [0u8; 1];
        let _ = conn.read(&mut byte);
    }
    drop(pinned);

    // The EOF events of the dropped conns can transiently refill the
    // one-deep queue, shedding the shutdown itself: honor Retry-After.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let (status, body) = request(router_addr, "POST", "/shutdown", "");
        if status == 200 {
            break;
        }
        assert_eq!(status, 429, "{body}");
        assert!(Instant::now() < deadline, "shutdown kept being shed");
        std::thread::sleep(Duration::from_millis(100));
    }
    router_thread.join().expect("router thread").expect("router run");
}

//! Known gaps surfaced by the differential fuzz oracle (PR 6), now
//! caught statically by the analyzer (PR 7).
//!
//! Every divergence the PR 6 bring-up runs found belongs to **one
//! family**:
//!
//! **GROUP BY elision under a WHERE-pinned grouping column**. When the
//! target groups by a column that a WHERE equality pins to a single
//! value (`WHERE s.bar = 'Joyce' … GROUP BY s.bar`), the GROUP BY
//! repair stage proves the working query's grouping redundant and emits
//! a repaired query with **no** GROUP BY at all while the SELECT list
//! keeps both the pinned column and an aggregate. Under the paper's
//! per-group semantics that rewrite is equivalence-preserving on
//! *nonempty* inputs, but the two shapes differ on empty ones: the
//! grouped query returns zero rows, while the ungrouped query has a
//! single implicit (empty) group whose non-aggregate SELECT item cannot
//! be evaluated — the engine rejects it with "bad aggregate:
//! non-aggregate expression over empty group" (real SQL rejects the
//! ungrouped mixed SELECT outright).
//!
//! PR 6 could only quarantine the family as `exec-gap` reproducers.
//! The static analyzer's aggregate-placement pass now flags exactly
//! this shape as **QH-A04** (`UngroupedSelect`, error severity) without
//! executing anything, and the differential taxonomy classifies the
//! family as `statically-rejected` — no longer a divergence, so the
//! formerly `#[ignore]`d reproducers are un-ignored below as passing
//! pins of the new contract.
//!
//! Observed instances (corpus seed 42, 60 pairs/schema):
//! `fuzz-brass-42-00055` and `fuzz-tpch-42-{00001,00027,00043,00051}`
//! — all on targets with a WHERE-pinned grouping column, all formerly
//! failing only on instance 0 (the one whose generated database leaves
//! the WHERE filter empty).

use qr_hint::prelude::*;
use qr_hint::workloads::differential::{classify_case, run, CaseClass, RunConfig};
use qr_hint::workloads::mutate::Fuzzer;
use qrhint_engine::{execute, Database};
use qrhint_sqlast::resolve::resolve_query;

/// Tutor-repair `working` against `target` and return the fixed query.
fn repair(schema: &Schema, target: &str, working: &str) -> Query {
    let qr = QrHint::new(schema.clone());
    let prepared = qr.compile_target(target).expect("target compiles");
    let wq = parse_query(working).expect("working parses");
    let wq = resolve_query(schema, &wq).expect("working resolves");
    let (fixed, _) = prepared
        .tutor(wq)
        .run_to_completion()
        .expect("pipeline converges");
    fixed
}

/// The five PR 6 reproducers, by (schema, fuzz case id).
const REPRODUCERS: [(&str, &str); 5] = [
    ("brass", "fuzz-brass-42-00055"),
    ("tpch", "fuzz-tpch-42-00001"),
    ("tpch", "fuzz-tpch-42-00027"),
    ("tpch", "fuzz-tpch-42-00043"),
    ("tpch", "fuzz-tpch-42-00051"),
];

/// Formerly `#[ignore]`d as an exec-gap: the family must now be caught
/// *before* execution. Every quarantined reproducer (regenerated from
/// its corpus seed) classifies as `statically-rejected`, and the detail
/// names QH-A04 — the ungrouped-mixed-SELECT diagnostic that predicts
/// the engine's empty-group rejection.
#[test]
fn quarantined_reproducers_are_statically_rejected_with_qh_a04() {
    for (schema_name, case_id) in REPRODUCERS {
        let fuzzer = Fuzzer::for_schema(schema_name).expect("known schema");
        let cases = fuzzer.generate(60, 42);
        let case = cases
            .iter()
            .find(|c| c.id == case_id)
            .unwrap_or_else(|| panic!("{case_id} missing from the seed-42 corpus"));
        let qr = QrHint::new(fuzzer.schema().clone());
        let prepared = qr
            .compile_target(&case.target.to_string())
            .expect("target compiles");
        let outcome = classify_case(&prepared, fuzzer.schema(), case, 2, 42);
        assert_eq!(
            outcome.class,
            CaseClass::StaticallyRejected,
            "{case_id}: expected statically-rejected, got {:?} ({})",
            outcome.class,
            outcome.detail
        );
        assert!(
            outcome.detail.contains("QH-A04"),
            "{case_id}: detail must name the QH-A04 diagnostic, got: {}",
            outcome.detail
        );
    }
}

/// Formerly `#[ignore]`d (brass family member, explicit SQL): the
/// repaired query is flagged QH-A04 by the analyzer, statically, with
/// no engine run.
#[test]
fn brass_pinned_group_by_repair_is_flagged_qh_a04() {
    let schema = qr_hint::workloads::brass::schema();
    let fixed = repair(
        &schema,
        "SELECT s.bar, COUNT(*) FROM serves s WHERE s.bar = 'Joyce' GROUP BY s.bar",
        "SELECT s.bar, COUNT(*) FROM serves s WHERE s.bar = 'Joyce' GROUP BY s.beer",
    );
    let diags = qr_hint::analysis::analyze(&schema, &fixed);
    assert!(
        diags.iter().any(|d| d.code == DiagCode::UngroupedSelect && d.is_error()),
        "repaired `{fixed}` must carry an error-severity QH-A04, got: {diags:?}"
    );
}

/// Formerly `#[ignore]`d (tpch family member on the Q3-derived base):
/// same static flag, bigger query.
#[test]
fn tpch_pinned_group_by_repair_is_flagged_qh_a04() {
    let schema = qr_hint::workloads::tpch::schema();
    let fixed = repair(
        &schema,
        "SELECT c.mktsegment, COUNT(*) FROM customer c, orders o, lineitem l \
         WHERE c.mktsegment = 'BUILDING' AND c.custkey = o.custkey \
         AND l.orderkey = o.orderkey AND o.orderdate < 19950315 \
         AND l.shipdate > 19950315 GROUP BY c.mktsegment HAVING COUNT(*) >= 2",
        "SELECT c.mktsegment, COUNT(*) FROM customer c, orders o, lineitem l \
         WHERE c.mktsegment = 'BUILDING' AND c.custkey = o.custkey \
         AND l.orderkey = o.orderkey AND o.orderdate < 19950315 \
         AND l.shipdate > 19950315 GROUP BY c.name HAVING COUNT(*) >= 2",
    );
    let diags = qr_hint::analysis::analyze(&schema, &fixed);
    assert!(
        diags.iter().any(|d| d.code == DiagCode::UngroupedSelect && d.is_error()),
        "repaired `{fixed}` must carry an error-severity QH-A04, got: {diags:?}"
    );
}

/// Pin the *underlying* repair behavior so un-noticed drift is visible:
/// the GROUP BY elision itself is unchanged (the repair still drops the
/// pinned GROUP BY and the engine still rejects the result on empty
/// input). If this starts failing, the repair-side gap was closed —
/// delete this pin and demote QH-A04 expectations accordingly.
#[test]
fn pinned_group_by_elision_and_engine_rejection_are_unchanged() {
    let schema = qr_hint::workloads::brass::schema();
    let fixed = repair(
        &schema,
        "SELECT s.bar, COUNT(*) FROM serves s WHERE s.bar = 'Joyce' GROUP BY s.bar",
        "SELECT s.bar, COUNT(*) FROM serves s WHERE s.bar = 'Joyce' GROUP BY s.beer",
    );
    assert!(
        fixed.group_by.is_empty(),
        "gap closed? repaired query kept a GROUP BY ({fixed}) — \
         delete this pin and revisit the QH-A04 reproducers in this file"
    );
    let err = execute(&fixed, &schema, &Database::new())
        .expect_err("ungrouped mixed SELECT must fail on empty input");
    assert!(
        err.to_string().contains("empty group"),
        "unexpected engine error for the known-gap shape: {err}"
    );
}

/// Differential smoke across the two formerly-divergent schemas: the
/// full seed-42 corpora now classify with **zero** divergences — the
/// family lands in `statically-rejected`, which is not a divergence.
#[test]
fn seed_42_corpora_have_no_divergences_only_static_rejections() {
    let cfg = RunConfig { jobs: 1, instances: 2 };
    for (schema_name, expected_rejections) in [("brass", 1usize), ("tpch", 4usize)] {
        let report = run(schema_name, 60, 42, &cfg).expect("known schema");
        assert_eq!(report.unclassified, 0, "{schema_name}: {report:?}");
        assert!(report.divergent.is_empty(), "{schema_name}: {report:?}");
        assert_eq!(
            report.classes["statically-rejected"], expected_rejections,
            "{schema_name}: statically-rejected count drifted: {:?}",
            report.classes
        );
    }
}

/// Differential smoke: the students corpus stays divergence-free (the
/// acceptance schema; its bases have no WHERE-pinned grouping columns).
#[test]
fn students_corpus_is_divergence_free() {
    let report = run("students", 40, 42, &RunConfig::default()).expect("known schema");
    assert_eq!(report.unclassified, 0, "{report:?}");
    assert!(report.divergent.is_empty(), "{report:?}");
}

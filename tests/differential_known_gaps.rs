//! Known gaps surfaced by the differential fuzz oracle (PR 6).
//!
//! Every divergence the bring-up runs found belongs to **one family**,
//! quarantined here as `#[ignore]`d reproducers (they assert the
//! *desired* behavior, so they fail if run today; un-ignore them when
//! the pipeline closes the gap):
//!
//! **GROUP BY elision under a WHERE-pinned grouping column**
//! (classification: `exec-gap`). When the target groups by a column
//! that a WHERE equality pins to a single value (`WHERE s.bar = 'Joyce'
//! … GROUP BY s.bar`), the GROUP BY repair stage proves the working
//! query's grouping redundant and emits a repaired query with **no**
//! GROUP BY at all while the SELECT list keeps both the pinned column
//! and an aggregate. Under the paper's per-group semantics that
//! rewrite is equivalence-preserving on *nonempty* inputs, but the two
//! shapes differ on empty ones: the grouped query returns zero rows,
//! while the ungrouped query has a single implicit (empty) group whose
//! non-aggregate SELECT item cannot be evaluated — the engine rejects
//! it with "bad aggregate: non-aggregate expression over empty group"
//! (real SQL rejects the ungrouped mixed SELECT outright). The
//! differential harness classifies these as `exec-gap`: the repair is
//! right under the solver's semantics and inexecutable under the
//! engine's.
//!
//! Observed instances (corpus seed 42, 60 pairs/schema):
//! `fuzz-brass-42-00055` and `fuzz-tpch-42-{00001,00027,00043,00051}`
//! — all on targets with a WHERE-pinned grouping column, all failing
//! only on instance 0 (the one whose generated database leaves the
//! WHERE filter empty).

use qr_hint::prelude::*;
use qr_hint::workloads::differential::{run, RunConfig};
use qrhint_engine::{bag_equal, execute, Database};
use qrhint_sqlast::resolve::resolve_query;

/// Tutor-repair `working` against `target` and return the fixed query.
fn repair(schema: &Schema, target: &str, working: &str) -> Query {
    let qr = QrHint::new(schema.clone());
    let prepared = qr.compile_target(target).expect("target compiles");
    let wq = parse_query(working).expect("working parses");
    let wq = resolve_query(schema, &wq).expect("working resolves");
    let (fixed, _) = prepared
        .tutor(wq)
        .run_to_completion()
        .expect("pipeline converges");
    fixed
}

/// Desired behavior: a repaired query must execute wherever its target
/// does — including the empty database, where the grouped target yields
/// zero rows.
fn assert_repair_executes_on_empty(schema: &Schema, target: &str, working: &str) {
    let fixed = repair(schema, target, working);
    let empty = Database::new();
    let tq = resolve_query(schema, &parse_query(target).unwrap()).unwrap();
    let target_rows = execute(&tq, schema, &empty).expect("grouped target executes");
    let fixed_rows = execute(&fixed, schema, &empty).unwrap_or_else(|e| {
        panic!("repaired query `{fixed}` must execute on empty input, got: {e}")
    });
    assert!(
        bag_equal(&target_rows, &fixed_rows),
        "repaired `{fixed}` disagrees with target on empty input"
    );
}

/// Reproducer for `fuzz-brass-42-00055`. KNOWN GAP (exec-gap): the
/// repair drops `GROUP BY` because `s.bar` is pinned by the WHERE
/// equality, leaving `SELECT s.bar, COUNT(*)` ungrouped — inexecutable
/// on empty input.
#[test]
#[ignore = "known gap: GROUP BY elision under a WHERE-pinned grouping column (exec-gap)"]
fn brass_pinned_group_by_repair_executes_on_empty_input() {
    let schema = qr_hint::workloads::brass::schema();
    assert_repair_executes_on_empty(
        &schema,
        "SELECT s.bar, COUNT(*) FROM serves s WHERE s.bar = 'Joyce' GROUP BY s.bar",
        "SELECT s.bar, COUNT(*) FROM serves s WHERE s.bar = 'Joyce' GROUP BY s.beer",
    );
}

/// Reproducer for `fuzz-tpch-42-00043` (same family on the Q3-derived
/// base: `c.mktsegment` pinned by the WHERE equality, working grouped
/// by another customer column).
#[test]
#[ignore = "known gap: GROUP BY elision under a WHERE-pinned grouping column (exec-gap)"]
fn tpch_pinned_group_by_repair_executes_on_empty_input() {
    let schema = qr_hint::workloads::tpch::schema();
    assert_repair_executes_on_empty(
        &schema,
        "SELECT c.mktsegment, COUNT(*) FROM customer c, orders o, lineitem l \
         WHERE c.mktsegment = 'BUILDING' AND c.custkey = o.custkey \
         AND l.orderkey = o.orderkey AND o.orderdate < 19950315 \
         AND l.shipdate > 19950315 GROUP BY c.mktsegment HAVING COUNT(*) >= 2",
        "SELECT c.mktsegment, COUNT(*) FROM customer c, orders o, lineitem l \
         WHERE c.mktsegment = 'BUILDING' AND c.custkey = o.custkey \
         AND l.orderkey = o.orderkey AND o.orderdate < 19950315 \
         AND l.shipdate > 19950315 GROUP BY c.name HAVING COUNT(*) >= 2",
    );
}

/// Pin the *current* behavior so taxonomy drift is visible: the family
/// must keep classifying as `exec-gap` (never `unclassified`, never
/// silently "fixed" without un-ignoring the reproducers above).
#[test]
fn pinned_group_by_family_classifies_as_exec_gap_today() {
    let schema = qr_hint::workloads::brass::schema();
    let fixed = repair(
        &schema,
        "SELECT s.bar, COUNT(*) FROM serves s WHERE s.bar = 'Joyce' GROUP BY s.bar",
        "SELECT s.bar, COUNT(*) FROM serves s WHERE s.bar = 'Joyce' GROUP BY s.beer",
    );
    assert!(
        fixed.group_by.is_empty(),
        "gap closed? repaired query kept a GROUP BY ({fixed}) — \
         un-ignore the reproducers in this file and delete this pin"
    );
    let err = execute(&fixed, &schema, &Database::new())
        .expect_err("ungrouped mixed SELECT must fail on empty input");
    assert!(
        err.to_string().contains("empty group"),
        "unexpected engine error for the known-gap shape: {err}"
    );
}

/// Differential smoke: the students corpus stays divergence-free (the
/// acceptance schema; its bases have no WHERE-pinned grouping columns).
#[test]
fn students_corpus_is_divergence_free() {
    let report = run("students", 40, 42, &RunConfig::default()).expect("known schema");
    assert_eq!(report.unclassified, 0, "{report:?}");
    assert!(report.divergent.is_empty(), "{report:?}");
}

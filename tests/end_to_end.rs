//! Cross-crate integration tests: the full Theorem-3.1 story — every
//! pipeline interaction leads to a working query that is *really*
//! equivalent to the target, verified by differential execution on
//! randomized databases (qrhint-engine is the ground truth the solver
//! never sees).

use qr_hint::prelude::*;
use qrhint_engine::differential_equiv;
use qrhint_workloads::beers;

fn assert_differentially_equivalent(qr: &QrHint, target_sql: &str, final_q: &Query) {
    let target = qr.prepare(target_sql).unwrap();
    let ok = differential_equiv(&target, final_q, qr.schema(), 0xA11CE, 25)
        .unwrap_or_else(|e| panic!("execution failed: {e}"));
    assert!(ok, "final query {final_q} is not bag-equivalent to the target");
}

fn fix_and_verify(qr: &QrHint, target_sql: &str, working_sql: &str) -> Vec<Stage> {
    let q_star = qr.prepare(target_sql).unwrap();
    let q = qr.prepare(working_sql).unwrap();
    let (final_q, trail) = qr
        .fix_fully(&q_star, &q)
        .unwrap_or_else(|e| panic!("pipeline failed: {e}"));
    assert!(trail.last().unwrap().is_equivalent());
    assert_differentially_equivalent(qr, target_sql, &final_q);
    trail.iter().map(|a| a.stage).collect()
}

#[test]
fn paper_example_1_and_2_full_story() {
    let qr = QrHint::new(beers::schema());
    let stages = fix_and_verify(&qr, beers::EXAMPLE1_TARGET, beers::EXAMPLE1_WORKING);
    // The paper's narrative: FROM first (missing Frequents), then WHERE.
    assert_eq!(stages[0], Stage::From);
    assert!(stages.contains(&Stage::Where));
    assert_eq!(*stages.last().unwrap(), Stage::Done);
}

#[test]
fn paper_example2_where_hint_is_the_inequality() {
    // After the FROM fix and adding the join conditions the paper's user
    // would write, the only remaining WHERE problem is > vs >=.
    let qr = QrHint::new(beers::schema());
    let intermediate = "SELECT s2.beer, s2.bar, COUNT(*)
        FROM Likes, Frequents, Serves s1, Serves s2
        WHERE likes.drinker = 'Amy'
          AND likes.drinker = frequents.drinker AND frequents.bar = s2.bar
          AND likes.beer = s1.beer AND likes.beer = s2.beer
          AND s1.price > s2.price
        GROUP BY s2.beer, s2.bar";
    let advice = qr.advise_sql(beers::EXAMPLE1_TARGET, intermediate).unwrap();
    assert_eq!(advice.stage, Stage::Where);
    let Hint::PredicateRepair { sites, .. } = &advice.hints[0] else {
        panic!("expected a WHERE repair, got {:?}", advice.hints)
    };
    assert_eq!(sites.len(), 1, "exactly one repair site: {sites:?}");
    // The site is the price inequality; the fix flips > to ≥ (NOT to ≤,
    // because the mapping sends S1 ↦ s2 — the paper's key subtlety).
    assert_eq!(sites[0].current.to_string(), "s1.price > s2.price");
    let fix = &sites[0].fix;
    let expected = qrhint_sqlparse::parse_pred("s1.price >= s2.price").unwrap();
    let wrong_direction = qrhint_sqlparse::parse_pred("s1.price <= s2.price").unwrap();
    let mut oracle = qrhint_core::Oracle::for_preds(&[fix, &expected]);
    assert!(
        oracle.equiv_pred(fix, &expected, &[]).is_true(),
        "fix {fix} must mean s1.price >= s2.price"
    );
    assert!(
        !oracle.equiv_pred(fix, &wrong_direction, &[]).is_true(),
        "fix must NOT be the naive <= suggestion"
    );
}

#[test]
fn spj_simple_fixes() {
    let qr = QrHint::new(beers::course_schema());
    for (target, working) in [
        (
            "SELECT s.beer FROM Serves s WHERE s.bar = 'James Joyce Pub'",
            "SELECT s.beer FROM Serves s WHERE s.bar = 'Joyce'",
        ),
        (
            "SELECT b.name, b.address FROM Bar b, Serves s \
             WHERE b.name = s.bar AND s.beer = 'Budweiser' AND s.price > 220",
            "SELECT b.name, b.address FROM Bar b, Serves s \
             WHERE s.beer = 'Budweiser' AND s.price >= 220",
        ),
        (
            "SELECT l.drinker FROM Likes l, Frequents f \
             WHERE l.beer = 'Corona' AND l.drinker = f.drinker \
               AND f.bar = 'James Joyce Pub' AND f.times_a_week >= 2",
            "SELECT l.drinker FROM Likes l, Frequents f \
             WHERE l.beer = 'Corona' AND f.bar = 'James Joyce Pub' \
               AND f.times_a_week > 2",
        ),
    ] {
        fix_and_verify(&qr, target, working);
    }
}

#[test]
fn spja_group_having_select_fixes() {
    let qr = QrHint::new(beers::course_schema());
    for (target, working) in [
        // HAVING threshold error.
        (
            "SELECT l.drinker FROM Likes l GROUP BY l.drinker HAVING COUNT(*) >= 2",
            "SELECT l.drinker FROM Likes l GROUP BY l.drinker HAVING COUNT(*) > 2",
        ),
        // Extra GROUP BY expression.
        (
            "SELECT l.drinker FROM Likes l GROUP BY l.drinker HAVING COUNT(*) >= 2",
            "SELECT l.drinker FROM Likes l GROUP BY l.drinker, l.beer \
             HAVING COUNT(*) >= 2",
        ),
        // Aggregation missing entirely.
        (
            "SELECT l.drinker, COUNT(*) FROM Likes l GROUP BY l.drinker",
            "SELECT l.drinker, l.beer FROM Likes l",
        ),
        // WHERE condition written as HAVING (movable) + SELECT mismatch.
        (
            "SELECT s.bar, SUM(s.price) FROM Serves s WHERE s.beer = 'Bud' \
             GROUP BY s.bar",
            "SELECT s.bar, COUNT(*) FROM Serves s GROUP BY s.bar \
             HAVING s.beer = 'Bud'",
        ),
    ] {
        fix_and_verify(&qr, target, working);
    }
}

#[test]
fn self_join_mapping_respected_end_to_end() {
    let qr = QrHint::new(beers::course_schema());
    // Roles of s1/s2 swapped relative to the target: no repair needed at
    // all once the mapping is right.
    let target = "SELECT a.bar FROM Serves a, Serves b \
                  WHERE a.beer = b.beer AND a.price < b.price";
    let working = "SELECT y.bar FROM Serves x, Serves y \
                   WHERE x.beer = y.beer AND y.price < x.price";
    let advice = qr.advise_sql(target, working).unwrap();
    assert!(advice.is_equivalent(), "mapping should absorb the role swap");
}

#[test]
fn transitivity_avoids_spurious_where_hints() {
    // Example 1's observation: Likes.beer=s2.beer vs S1.beer=S2.beer are
    // interchangeable thanks to transitivity.
    let qr = QrHint::new(beers::schema());
    let target = "SELECT s1.bar FROM Likes l, Serves s1, Serves s2 \
                  WHERE l.beer = s1.beer AND s1.beer = s2.beer";
    let working = "SELECT s1.bar FROM Likes l, Serves s1, Serves s2 \
                   WHERE l.beer = s1.beer AND l.beer = s2.beer";
    let advice = qr.advise_sql(target, working).unwrap();
    assert!(advice.is_equivalent());
}

#[test]
fn unsupported_features_reported_not_crashed() {
    let qr = QrHint::new(beers::schema());
    let err = qr
        .advise_sql(
            "SELECT l.beer FROM Likes l",
            "SELECT l.beer FROM Likes l UNION SELECT s.beer FROM Serves s",
        )
        .unwrap_err();
    assert!(matches!(err, qrhint_core::QrHintError::Unsupported(_)));
}

#[test]
fn idempotence_done_queries_get_no_hints() {
    let qr = QrHint::new(beers::schema());
    let q = qr.prepare(beers::EXAMPLE1_TARGET).unwrap();
    let advice = qr.advise(&q, &q).unwrap();
    assert!(advice.is_equivalent());
    assert!(advice.hints.is_empty());
}

//! Robustness fuzzing: every public parser entry point must return
//! `Ok`/`Err` — never panic, hang, or overflow — on arbitrary input.
//! Two generators: raw unicode garbage, and "token soup" built from SQL
//! keywords/punctuation (which reaches much deeper into the grammar).

use proptest::prelude::*;
use qr_hint::prelude::*;
use qrhint_sqlparse::{
    parse_multi, parse_pred, parse_pred_nullable, parse_query, parse_query_extended,
    parse_schema, parse_scalar,
};

fn token_soup() -> impl Strategy<Value = String> {
    let word = prop_oneof![
        Just("SELECT"),
        Just("DISTINCT"),
        Just("FROM"),
        Just("WHERE"),
        Just("GROUP"),
        Just("BY"),
        Just("HAVING"),
        Just("ORDER"),
        Just("JOIN"),
        Just("INNER"),
        Just("CROSS"),
        Just("LEFT"),
        Just("ON"),
        Just("WITH"),
        Just("AS"),
        Just("AND"),
        Just("OR"),
        Just("NOT"),
        Just("EXISTS"),
        Just("IN"),
        Just("BETWEEN"),
        Just("LIKE"),
        Just("IS"),
        Just("NULL"),
        Just("COUNT"),
        Just("SUM"),
        Just("CHECK"),
        Just("CREATE"),
        Just("TABLE"),
        Just("PRIMARY"),
        Just("KEY"),
        Just("INT"),
        Just("VARCHAR"),
        Just("t"),
        Just("s"),
        Just("a"),
        Just("t.a"),
        Just("s.b"),
        Just("x1"),
        Just("'Amy'"),
        Just("'O''Brien'"),
        Just("42"),
        Just("-7"),
        Just("("),
        Just(")"),
        Just(","),
        Just(";"),
        Just("*"),
        Just("="),
        Just("<>"),
        Just("<="),
        Just(">"),
        Just("+"),
        Just("/"),
        Just("."),
    ];
    prop::collection::vec(word, 0..24).prop_map(|ws| ws.join(" "))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 512, ..ProptestConfig::default() })]

    #[test]
    fn parsers_never_panic_on_unicode_garbage(s in "\\PC{0,80}") {
        let _ = parse_query(&s);
        let _ = parse_pred(&s);
        let _ = parse_pred_nullable(&s);
        let _ = parse_scalar(&s);
        let _ = parse_schema(&s);
        let _ = parse_multi(&s);
        let _ = parse_query_extended(&s, &FlattenOptions::default());
        let _ = parse_query_extended(&s, &FlattenOptions::with_subquery_rewrite());
    }

    #[test]
    fn parsers_never_panic_on_token_soup(s in token_soup()) {
        let _ = parse_query(&s);
        let _ = parse_pred(&s);
        let _ = parse_pred_nullable(&s);
        let _ = parse_scalar(&s);
        let _ = parse_schema(&s);
        let _ = parse_multi(&s);
        let _ = parse_query_extended(&s, &FlattenOptions::default());
        let _ = parse_query_extended(&s, &FlattenOptions::with_subquery_rewrite());
    }

    /// Whatever the extended front-end accepts must be a well-formed
    /// single-block query: it pretty-prints and reparses to itself under
    /// the *strict* parser (closure property of the flattening rewrite).
    #[test]
    fn flattened_output_is_always_in_the_strict_fragment(s in token_soup()) {
        if let Ok(q) = parse_query_extended(&s, &FlattenOptions::with_subquery_rewrite()) {
            let printed = q.to_string();
            let reparsed = parse_query(&printed)
                .unwrap_or_else(|e| panic!("flattened {printed:?} left the fragment: {e}"));
            prop_assert_eq!(q, reparsed);
        }
    }
}

#[test]
fn deep_nesting_does_not_overflow() {
    // 300 nested parens in a predicate and 40 nested derived tables.
    let deep_pred = format!("{}t.a = 1{}", "(".repeat(300), ")".repeat(300));
    let _ = parse_pred(&deep_pred);
    let mut q = "SELECT w.x FROM r w".to_string();
    for i in 0..40 {
        q = format!("SELECT d{i}.x FROM ({q}) d{i}");
    }
    let _ = parse_query_extended(&q, &FlattenOptions::default());
}

#[test]
fn pathological_but_valid_inputs_parse() {
    // Keyword-ish identifiers in quoted positions, mixed case, odd
    // whitespace, trailing semicolons.
    for sql in [
        "select T.A from T where T.A = 'WHERE'",
        "SELECT t.a FROM t WHERE t.a = 'select'",
        "SELECT\n\tt.a\nFROM\tt\nWHERE\n t.a\t>\n1;",
        "select distinct t.a from t group by t.a having count(*) > 0",
    ] {
        parse_query(sql).unwrap_or_else(|e| panic!("{sql:?}: {e}"));
    }
}

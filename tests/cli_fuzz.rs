//! CLI coverage for `qr-hint fuzz` (PR 6): the JSON taxonomy report
//! must be byte-identical across `--jobs` values (the acceptance
//! criterion behind CI's fuzz-smoke job), the students corpus must
//! grade divergence-free, and the usage contract — exit 2 on unknown
//! schemas or malformed flags — must hold.

use serde::Value;
use std::process::{Command, Output};

const BIN: &str = env!("CARGO_BIN_EXE_qr-hint");

/// Field lookup in the vendored shim's JSON data model.
fn field<'v>(v: &'v Value, key: &str) -> &'v Value {
    let Value::Map(entries) = v else { panic!("expected a JSON object, got {v:?}") };
    &entries
        .iter()
        .find(|(k, _)| k == key)
        .unwrap_or_else(|| panic!("report lacks key `{key}`"))
        .1
}

fn fuzz(args: &[&str]) -> Output {
    Command::new(BIN)
        .arg("fuzz")
        .args(args)
        .output()
        .expect("run qr-hint fuzz")
}

#[test]
fn students_json_report_is_byte_identical_across_jobs() {
    let base = ["--schema", "students", "--count", "120", "--seed", "42", "--json"];
    let one = fuzz(&[&base[..], &["--jobs", "1"]].concat());
    assert!(
        one.status.success(),
        "jobs=1 failed: {}",
        String::from_utf8_lossy(&one.stderr)
    );
    let eight = fuzz(&[&base[..], &["--jobs", "8"]].concat());
    assert!(
        eight.status.success(),
        "jobs=8 failed: {}",
        String::from_utf8_lossy(&eight.stderr)
    );
    assert!(!one.stdout.is_empty());
    assert_eq!(
        one.stdout, eight.stdout,
        "taxonomy report must not depend on worker count"
    );
    let report: Value = serde_json::from_str(&String::from_utf8_lossy(&one.stdout))
        .expect("stdout is a JSON report");
    assert_eq!(field(&report, "schema"), &Value::Str("students".into()));
    assert_eq!(field(&report, "unclassified"), &Value::Int(0));
    assert_eq!(field(&report, "total"), &Value::Int(120));
}

#[test]
fn text_report_lists_every_class() {
    let out = fuzz(&["--schema", "students", "--count", "24", "--seed", "7"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for class in [
        "equivalent-mutant",
        "repaired-validated",
        "repair-unsound",
        "repair-non-convergent",
        "exec-gap",
        "statically-rejected",
        "unsupported-fragment",
        "unclassified",
    ] {
        assert!(text.contains(class), "missing class `{class}` in:\n{text}");
    }
    // Throughput goes to stderr so stdout stays machine-diffable.
    assert!(String::from_utf8_lossy(&out.stderr).contains("pairs/s"));
}

#[test]
fn unknown_schema_is_a_usage_error() {
    let out = fuzz(&["--schema", "nosuch", "--count", "10"]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("nosuch"), "stderr should name the bad schema: {err}");
}

#[test]
fn fuzz_rejects_grade_mode_flags() {
    // fuzz has no target/working; mixing modes is a usage error.
    let out = fuzz(&["--schema", "students", "--target", "SELECT 1"]);
    assert_eq!(out.status.code(), Some(2));
    let out = fuzz(&["--count", "10"]);
    assert_eq!(out.status.code(), Some(2), "fuzz requires --schema");
}

//! End-to-end coverage of the daemon's telemetry surface over real
//! `TcpStream`s: `GET /metrics` after register/advise/grade traffic —
//! Prometheus exposition validity (checked by the `qrhint-obs`
//! validator, the same one behind the `promcheck` binary), counter
//! monotonicity across scrapes, histogram counts agreeing with request
//! counters, bounded label cardinality, and the scrape content type.

use qr_hint::server::{RegistryConfig, Server, ServerConfig, ServiceConfig};
use serde::Value;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

const SCHEMA: &str = "CREATE TABLE Serves (\
    bar VARCHAR(20), beer VARCHAR(20), price INT, PRIMARY KEY (bar, beer));";
const TARGET: &str = "SELECT s.bar FROM Serves s WHERE s.price >= 3";

fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    qr_hint::server::client::request_once(addr, method, path, body).expect("request")
}

struct TestServer {
    addr: SocketAddr,
    handle: Option<std::thread::JoinHandle<std::io::Result<()>>>,
}

impl TestServer {
    fn start() -> TestServer {
        let server = Server::bind(ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            service: ServiceConfig {
                jobs: 2,
                registry: RegistryConfig { max_targets: 8, ..RegistryConfig::default() },
            },
            ..ServerConfig::default()
        })
        .expect("bind test server");
        let addr = server.addr();
        let handle = std::thread::spawn(move || server.run());
        TestServer { addr, handle: Some(handle) }
    }

    fn register(&self, schema: &str, target: &str) -> String {
        let body = format!(
            "{{\"schema\": {}, \"target\": {}}}",
            serde_json::to_string(schema).unwrap(),
            serde_json::to_string(target).unwrap()
        );
        let (status, body) = request(self.addr, "POST", "/targets", &body);
        assert_eq!(status, 201, "register failed: {body}");
        let parsed: Value = serde_json::from_str(&body).expect("register response JSON");
        let Value::Map(fields) = parsed else { panic!("register response not a map: {body}") };
        match fields.iter().find(|(k, _)| k == "id") {
            Some((_, Value::Str(id))) => id.clone(),
            other => panic!("no string id in register response ({other:?}): {body}"),
        }
    }

    fn scrape(&self) -> String {
        let (status, body) = request(self.addr, "GET", "/metrics", "");
        assert_eq!(status, 200, "{body}");
        qrhint_obs::expo::validate(&body)
            .unwrap_or_else(|e| panic!("invalid exposition: {e}\n{body}"));
        body
    }

    fn shutdown(mut self) {
        let (status, body) = request(self.addr, "POST", "/shutdown", "");
        assert_eq!(status, 200, "{body}");
        self.handle.take().unwrap().join().expect("server thread panicked").expect("run() err");
    }
}

impl Drop for TestServer {
    fn drop(&mut self) {
        if let Some(handle) = self.handle.take() {
            let _ = request(self.addr, "POST", "/shutdown", "");
            let _ = handle.join();
        }
    }
}

/// The value of the exposition sample whose line starts with
/// `name_and_labels ` (exact match up to the separating space).
fn sample(text: &str, name_and_labels: &str) -> f64 {
    text.lines()
        .find_map(|l| l.strip_prefix(name_and_labels).and_then(|rest| rest.strip_prefix(' ')))
        .unwrap_or_else(|| panic!("no sample `{name_and_labels}` in scrape:\n{text}"))
        .trim()
        .parse()
        .expect("numeric sample value")
}

/// Every `qrhint_http_requests_total` sample in `earlier`, keyed by its
/// label set, must be ≤ the matching sample in `later`.
fn assert_request_counters_monotone(earlier: &str, later: &str) {
    for line in earlier.lines().filter(|l| l.starts_with("qrhint_http_requests_total{")) {
        let (key, value) = line.rsplit_once(' ').expect("sample line");
        let before: f64 = value.parse().unwrap();
        let after = sample(later, key);
        assert!(
            after >= before,
            "counter went backwards: {key} {before} -> {after}"
        );
    }
}

#[test]
fn metrics_scrape_reflects_register_advise_grade_traffic() {
    let server = TestServer::start();
    let id = server.register(SCHEMA, TARGET);

    for sql in
        ["SELECT s.bar FROM Serves s WHERE s.price > 2", "SELECT s.bar FROM Serves s WHERE s.price > 3"]
    {
        let body = format!("{{\"sql\": {}}}", serde_json::to_string(sql).unwrap());
        let (status, resp) = request(server.addr, "POST", &format!("/targets/{id}/advise"), &body);
        assert_eq!(status, 200, "{resp}");
    }
    let subs = ["SELECT s.bar FROM Serves s WHERE s.price > 2", "SELECT s.beer FROM Serves s", "SELEKT no", "SELECT s.bar FROM Serves s"];
    let (status, resp) = request(
        server.addr,
        "POST",
        &format!("/targets/{id}/grade"),
        &format!("{{\"submissions\": {}}}", serde_json::to_string(&subs[..]).unwrap()),
    );
    assert_eq!(status, 200, "{resp}");

    let first = server.scrape();
    assert_eq!(sample(&first, "qrhint_http_requests_total{route=\"register\",status=\"201\"}"), 1.0);
    assert_eq!(sample(&first, "qrhint_http_requests_total{route=\"advise\",status=\"200\"}"), 2.0);
    assert_eq!(sample(&first, "qrhint_http_requests_total{route=\"grade\",status=\"200\"}"), 1.0);
    assert_eq!(sample(&first, "qrhint_registry_targets"), 1.0);
    assert_eq!(sample(&first, "qrhint_registry_registered_total"), 1.0);
    // 2 advise requests + 4 batch entries (the malformed one errors
    // before the session counts it) hit the one resident target.
    assert_eq!(sample(&first, "qrhint_session_advise_calls"), 5.0);
    // The histogram agrees with the request counters: each advise
    // request contributed exactly one latency observation, and the
    // +Inf bucket is the count (cumulative rendering).
    assert_eq!(sample(&first, "qrhint_http_request_duration_seconds_count{route=\"advise\"}"), 2.0);
    assert_eq!(
        sample(&first, "qrhint_http_request_duration_seconds_bucket{route=\"advise\",le=\"+Inf\"}"),
        2.0
    );
    // Bounded cardinality: the target id must never become a label.
    assert!(!first.contains(&id), "target id leaked into the scrape:\n{first}");

    // More traffic, then a second scrape: counters only go up, and the
    // first scrape itself is now visible as metrics-route traffic.
    let body = format!(
        "{{\"sql\": {}}}",
        serde_json::to_string("SELECT s.bar FROM Serves s WHERE s.price > 2").unwrap()
    );
    let (status, _) = request(server.addr, "POST", &format!("/targets/{id}/advise"), &body);
    assert_eq!(status, 200);
    let second = server.scrape();
    assert_request_counters_monotone(&first, &second);
    assert_eq!(sample(&second, "qrhint_http_requests_total{route=\"advise\",status=\"200\"}"), 3.0);
    assert_eq!(sample(&second, "qrhint_http_requests_total{route=\"metrics\",status=\"200\"}"), 1.0);
    assert_eq!(sample(&second, "qrhint_http_request_duration_seconds_count{route=\"advise\"}"), 3.0);

    server.shutdown();
}

#[test]
fn metrics_content_type_is_prometheus_text() {
    let server = TestServer::start();
    let mut stream = TcpStream::connect(server.addr).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    stream
        .write_all(b"GET /metrics HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")
        .unwrap();
    let mut resp = String::new();
    stream.read_to_string(&mut resp).unwrap();
    assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
    let headers = resp.split("\r\n\r\n").next().unwrap().to_ascii_lowercase();
    assert!(
        headers.contains("content-type: text/plain; version=0.0.4"),
        "scrape must use the exposition content type, got:\n{headers}"
    );
    server.shutdown();
}

//! PR 7 acceptance properties for the static analyzer
//! (`qrhint-analysis`), cross-checked against every workload schema:
//!
//! * **No false positives on reference queries** — every base/target
//!   query of every workload corpus is fully diagnostic-silent (the
//!   references are instructor-written correct SQL; any finding there
//!   is an analyzer bug).
//! * **No false positives on execution-valid mutants** — a fuzzed
//!   working query that the engine executes successfully on the empty
//!   database *and* on generated instances must never carry an
//!   error-severity diagnostic (errors claim "statically guaranteed to
//!   misbehave"; warnings remain legitimate on mutants — a mutated
//!   constant genuinely can create a contradiction).
//! * **Determinism** — `analyze` is a pure function of (schema, query);
//!   its serialized output is byte-stable across calls. Byte-parity
//!   across `--jobs` is pinned end-to-end in `cli_grade_jobs.rs`
//!   (diagnostics ride inside the compared `grade --json` output).
//! * **Span and code round-trips** — `Span`'s `CLAUSE[item]@p.q.r`
//!   rendering parses back exactly (property-based), and every
//!   `DiagCode` survives `as_str` → `parse`.

use proptest::prelude::*;
use qr_hint::analysis::{analyze, has_errors, Clause, DiagCode, Span};
use qr_hint::workloads::mutate::{Fuzzer, SCHEMA_NAMES};
use qrhint_engine::{execute, DataGen, Database};

/// Mirror of the differential harness's row scaling: keep generated
/// cross products small enough for the 8-way DBLP self-joins.
fn rows_for(from_len: usize) -> usize {
    match from_len {
        0..=2 => 6,
        3..=4 => 4,
        _ => 3,
    }
}

#[test]
fn reference_queries_are_diagnostic_silent_on_every_schema() {
    for name in SCHEMA_NAMES {
        let fuzzer = Fuzzer::for_schema(name).expect("known schema");
        for (id, q) in fuzzer.bases() {
            let diags = analyze(fuzzer.schema(), q);
            assert!(
                diags.is_empty(),
                "{name}/{id}: reference query `{q}` flagged: {diags:?}"
            );
        }
    }
}

#[test]
fn execution_valid_mutants_carry_no_error_diagnostics() {
    for name in SCHEMA_NAMES {
        let fuzzer = Fuzzer::for_schema(name).expect("known schema");
        let cases = fuzzer.generate(80, 1234);
        let mut valid = 0usize;
        for case in &cases {
            // Validity probe: the analyzer's error codes all predict
            // failures on *some* instance — most of them on the empty
            // one — so the probe must include the empty database, not
            // just populated instances.
            let schema = fuzzer.schema();
            let empty_ok = execute(&case.working, schema, &Database::new()).is_ok();
            let rows = rows_for(case.working.from.len());
            let gen_ok = (0..2u64).all(|k| {
                let db = DataGen::new(0xA11CE + k)
                    .with_rows(rows)
                    .generate(schema, &[&case.working]);
                execute(&case.working, schema, &db).is_ok()
            });
            if empty_ok && gen_ok {
                valid += 1;
                let diags = analyze(schema, &case.working);
                assert!(
                    !has_errors(&diags),
                    "{name}/{}: execution-valid mutant `{}` got error-severity \
                     diagnostics: {diags:?}",
                    case.id,
                    case.working
                );
            }
        }
        assert!(valid > 0, "{name}: validity probe matched no mutants — probe broken");
    }
}

#[test]
fn diagnostics_serialize_byte_identically_across_calls() {
    for name in SCHEMA_NAMES {
        let fuzzer = Fuzzer::for_schema(name).expect("known schema");
        for case in fuzzer.generate(40, 99) {
            let once = serde_json::to_string(&analyze(fuzzer.schema(), &case.working))
                .expect("diagnostics serialize");
            let twice = serde_json::to_string(&analyze(fuzzer.schema(), &case.working))
                .expect("diagnostics serialize");
            assert_eq!(once, twice, "{name}/{}: analyze is not deterministic", case.id);
        }
    }
}

#[test]
fn diag_codes_round_trip_and_pin_severity() {
    for code in DiagCode::all() {
        assert_eq!(DiagCode::parse(code.as_str()), Some(code), "{code}");
        // Severity is a function of the code — `Diagnostic::new` relies
        // on this, and the wire format re-derives it on deserialize.
        assert_eq!(code.severity().as_str(), code.severity().as_str());
    }
    assert_eq!(DiagCode::parse("QH-X99"), None);
}

fn arb_clause() -> impl Strategy<Value = Clause> {
    prop_oneof![
        Just(Clause::Select),
        Just(Clause::From),
        Just(Clause::Where),
        Just(Clause::GroupBy),
        Just(Clause::Having),
    ]
}

proptest! {
    #[test]
    fn span_display_parse_round_trips(
        clause in arb_clause(),
        item in 0usize..32,
        path in prop::collection::vec(0usize..8, 0..5),
    ) {
        let span = Span::at(clause, item, &path);
        let rendered = span.to_string();
        let parsed: Result<Span, String> = rendered.parse();
        prop_assert_eq!(parsed, Ok(span), "rendered as `{}`", rendered);
    }
}

//! Randomized fault-injection: take correct course queries, break them
//! with the error injectors, and require the pipeline to (a) notice,
//! (b) converge, and (c) produce a differentially verified equivalent —
//! the end-to-end Theorem-3.1 property under many random error shapes.

use qr_hint::prelude::*;
use qrhint_engine::differential_equiv;
use qrhint_workloads::{beers, inject};

#[test]
fn injected_where_errors_are_always_repaired() {
    let qr = QrHint::new(beers::course_schema());
    let targets = [
        "SELECT b.name, b.address FROM Bar b, Serves s \
         WHERE b.name = s.bar AND s.beer = 'Budweiser' AND s.price > 220",
        "SELECT l.drinker FROM Likes l, Frequents f \
         WHERE l.beer = 'Corona' AND l.drinker = f.drinker \
           AND f.bar = 'James Joyce Pub' AND f.times_a_week >= 2",
        "SELECT s.beer FROM Serves s WHERE s.price >= 100 AND s.price <= 500",
    ];
    let mut verified = 0;
    for (ti, target_sql) in targets.iter().enumerate() {
        let target = qr.prepare(target_sql).unwrap();
        for k in 1..=2usize {
            for seed in 0..4u64 {
                let mut wrong = target.clone();
                let (broken, errors) =
                    inject::inject_atom_errors(&target.where_pred, k, seed * 31 + ti as u64);
                wrong.where_pred = broken;
                // Skip no-op injections (e.g. an operator change that is
                // equivalent on this predicate).
                let advice = qr.advise(&target, &wrong).unwrap();
                if advice.is_equivalent() {
                    continue;
                }
                assert_eq!(
                    advice.stage,
                    Stage::Where,
                    "errors {errors:?} should surface in WHERE"
                );
                let (fixed, trail) = qr.fix_fully(&target, &wrong).unwrap();
                assert!(trail.last().unwrap().is_equivalent());
                let ok = differential_equiv(
                    &target,
                    &fixed,
                    qr.schema(),
                    seed + 1000 * ti as u64,
                    8,
                )
                .unwrap();
                assert!(ok, "target {ti}, k={k}, seed={seed}: {errors:?}");
                verified += 1;
            }
        }
    }
    assert!(verified >= 15, "too few effective injections: {verified}");
}

#[test]
fn injected_having_errors_are_always_repaired() {
    let qr = QrHint::new(beers::course_schema());
    let target = qr
        .prepare(
            "SELECT l.drinker FROM Likes l GROUP BY l.drinker \
             HAVING COUNT(*) >= 2 AND MIN(l.beer) <> 'Corona'",
        )
        .unwrap();
    let mut verified = 0;
    for seed in 0..8u64 {
        let mut wrong = target.clone();
        let (broken, _) =
            inject::inject_atom_errors(&target.having.clone().unwrap(), 1, seed);
        wrong.having = Some(broken);
        let advice = qr.advise(&target, &wrong).unwrap();
        if advice.is_equivalent() {
            continue;
        }
        assert_eq!(advice.stage, Stage::Having);
        let (fixed, trail) = qr.fix_fully(&target, &wrong).unwrap();
        assert!(trail.last().unwrap().is_equivalent());
        let ok = differential_equiv(&target, &fixed, qr.schema(), 77 + seed, 8).unwrap();
        assert!(ok, "seed {seed}");
        verified += 1;
    }
    assert!(verified >= 4, "too few effective injections: {verified}");
}

#[test]
fn structural_connective_flips_are_repaired() {
    let qr = QrHint::new(beers::course_schema());
    let target = qr
        .prepare(
            "SELECT s.beer FROM Serves s \
             WHERE (s.bar = 'Joyce' AND s.price > 3) OR (s.bar = 'Dive' AND s.price > 7)",
        )
        .unwrap();
    for seed in 0..6u64 {
        let mut wrong = target.clone();
        let (broken, _) = inject::inject_mixed_errors(&target.where_pred, 3, seed);
        wrong.where_pred = broken;
        let advice = qr.advise(&target, &wrong).unwrap();
        if advice.is_equivalent() {
            continue;
        }
        let (fixed, trail) = qr.fix_fully(&target, &wrong).unwrap();
        assert!(trail.last().unwrap().is_equivalent(), "seed {seed}");
        let ok = differential_equiv(&target, &fixed, qr.schema(), 500 + seed, 8).unwrap();
        assert!(ok, "seed {seed}");
    }
}

//! Concurrency soundness of the sharded session layer: hammering one
//! [`PreparedTarget`] from many threads must produce advice that is
//! **byte-identical** (serde-JSON form) to the sequential
//! [`PreparedTarget::grade_batch`] output, in input order, for every
//! worker count — and the atomic [`SessionStats`] counters must stay
//! coherent (no lost updates) under the same contention.
//!
//! Run under `--release` in CI as well: debug-build scheduling is too
//! tame to surface real interleavings.

use qr_hint::prelude::*;
// The parity fingerprint and batch builders come from the bench crate
// (dev-only back-edge) so test and benchmark parity definitions cannot
// drift apart.
use qrhint_bench::parallel_grading::fingerprint;
use qrhint_bench::session_api;
use qrhint_workloads::{beers, students};
use std::collections::BTreeMap;

/// Students-corpus batches: every 4th supported submission, grouped by
/// target (all four questions, every error category) — the shape of a
/// real grading run, self-joins included.
fn students_batches() -> (Schema, Vec<(String, Vec<String>)>) {
    let mut by_target: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for (i, e) in students::corpus().iter().enumerate() {
        if e.category == "UNSUPPORTED" || i % 4 != 0 {
            continue;
        }
        by_target
            .entry(e.pair.target_sql.clone())
            .or_default()
            .push(e.pair.working_sql.clone());
    }
    (students::schema(), by_target.into_iter().collect())
}

/// Beers batch: fault-injected WHERE variants of course question (c)
/// (the bench crate's builder) — 24 distinct submissions sharing one
/// FROM binding, so every worker contends on the same memo group (the
/// slot pool's worst case).
fn beers_batch() -> (Schema, String, Vec<String>) {
    session_api::beers_batch(24)
}

fn assert_parallel_matches_sequential(
    schema: &Schema,
    target: &str,
    subs: &[String],
    label: &str,
) {
    let qr = QrHint::new(schema.clone());
    let sequential = {
        let prepared = qr.compile_target(target).unwrap();
        fingerprint(&prepared.grade_batch(subs))
    };
    for jobs in [1usize, 2, 4, 8] {
        // Cold pass on a *fresh* target per job count: every worker
        // does real concurrent run_stages work (slot-pool growth, memo
        // seeding) — a shared target would be all advice-cache hits
        // after the first job count and hide cold-path races.
        let hammered = qr.compile_target(target).unwrap();
        let cold = fingerprint(&hammered.grade_batch_parallel(subs, jobs));
        assert_eq!(cold.len(), subs.len(), "{label}: jobs={jobs}");
        for (i, (p, s)) in cold.iter().zip(&sequential).enumerate() {
            assert_eq!(
                p, s,
                "{label}: jobs={jobs}, cold submission {i} diverged from sequential"
            );
        }
        // Warm pass on the same target: the concurrent advice-cache
        // read path must agree too.
        let warm = fingerprint(&hammered.grade_batch_parallel(subs, jobs));
        for (i, (p, s)) in warm.iter().zip(&sequential).enumerate() {
            assert_eq!(
                p, s,
                "{label}: jobs={jobs}, warm submission {i} diverged from sequential"
            );
        }
    }
}

#[test]
fn eight_thread_hammer_matches_sequential_on_students_corpus() {
    let (schema, batches) = students_batches();
    assert!(batches.len() >= 4, "expected all four questions");
    for (i, (target, subs)) in batches.iter().enumerate() {
        assert_parallel_matches_sequential(&schema, target, subs, &format!("students-q{i}"));
    }
}

#[test]
fn eight_thread_hammer_matches_sequential_on_beers_injections() {
    let (schema, target, subs) = beers_batch();
    assert!(subs.len() >= 20);
    assert_parallel_matches_sequential(&schema, &target, &subs, "beers-inject-c");
}

#[test]
fn session_stats_stay_coherent_under_concurrency() {
    let schema = beers::schema();
    let target = "SELECT s.bar FROM Serves s WHERE s.price >= 3";
    // A mixed batch with known structure: two distinct FROM groups
    // (bindings `s` and `t`), a FROM-stage failure (wrong table), and
    // heavy duplication.
    let distinct = [
        "SELECT s.bar FROM Serves s WHERE s.price > 3",
        "SELECT s.bar FROM Serves s WHERE s.price >= 2",
        "SELECT s.bar FROM Serves s WHERE s.price >= 3",
        "SELECT t.bar FROM Serves t WHERE t.price >= 3",
        "SELECT t.bar FROM Serves t WHERE t.price > 1",
        "SELECT l.beer FROM Likes l",
    ];
    let mut batch: Vec<&str> = Vec::new();
    for _ in 0..6 {
        batch.extend(distinct);
    }
    let n = batch.len() as u64;
    let expected_groups = 2; // `s` and `t`; the Likes submission fails FROM

    // Sequential ground truth: exact counter values.
    let qr = QrHint::new(schema.clone());
    let sequential = qr.compile_target(target).unwrap();
    sequential.grade_batch(&batch);
    let seq = sequential.stats();
    assert_eq!(seq.advise_calls, n);
    assert_eq!(seq.from_groups, expected_groups);
    // Each distinct submission is graded once; every repeat hits the
    // advice cache.
    assert_eq!(seq.advice_cache_hits, n - distinct.len() as u64);
    // Every fresh viable-FROM advise either created or reused a group.
    assert_eq!(seq.mapping_reuses, 5 - expected_groups);

    // Concurrent run: atomics must lose nothing that is deterministic
    // under races. advise_calls is exact; group creation is exact (one
    // insert wins per key); cache hits depend on interleaving (two
    // threads may both miss on the same duplicate) so they are bounded,
    // not exact.
    let hammered = qr.compile_target(target).unwrap();
    hammered.grade_batch_parallel(&batch, 8);
    let par = hammered.stats();
    assert_eq!(par.advise_calls, n, "lost advise_calls updates");
    assert_eq!(par.from_groups, expected_groups, "group counter diverged");
    assert!(par.advice_cache_hits <= par.advise_calls);
    assert!(
        par.advice_cache_hits <= n - distinct.len() as u64,
        "more hits than duplicates: {par:?}"
    );
    // Fresh viable advises (non-hits) split exactly into creations and
    // reuses; FROM failures and cache hits account for the rest.
    let viable_fresh = par.from_groups + par.mapping_reuses;
    let from_failures_fresh = n - par.advice_cache_hits - viable_fresh;
    assert!(
        (1..=6).contains(&from_failures_fresh),
        "FROM-failure accounting broken: {par:?}"
    );
    assert!(par.solver_calls > 0);
    assert!(par.solver_calls >= seq.solver_calls, "{par:?} vs {seq:?}");

    // Batched equivalence checks share context *preparation*, not
    // accounting: every underlying sat check counts exactly one
    // `solver_calls` bump and exactly one verdict-cache hit or miss —
    // never one per candidate-batch membership.
    assert_eq!(
        seq.verdict_cache_hits + seq.verdict_cache_misses,
        seq.solver_calls,
        "sequential batched checks broke hit/miss pairing: {seq:?}"
    );
    assert_eq!(
        par.verdict_cache_hits + par.verdict_cache_misses,
        par.solver_calls,
        "parallel batched checks broke hit/miss pairing: {par:?}"
    );
    // The workload exercises the batch routes (SELECT positional
    // equivalence at minimum, WHERE repair for the off-by-one bounds).
    assert!(seq.equiv_batches > 0, "no candidate batch issued: {seq:?}");
    assert!(
        seq.equiv_batch_candidates >= seq.equiv_batches,
        "batch candidate accounting inverted: {seq:?}"
    );
    // The incremental assumption stack is on by default and must have
    // done per-literal translation work on the cold pass.
    assert!(seq.theory_pushes > 0, "incremental theory stack idle: {seq:?}");
    assert!(seq.theory_full_checks > 0, "{seq:?}");
}

#[test]
fn stats_advise_calls_exact_across_many_rounds() {
    // The counter most exposed to lost updates: bump it from 8 threads
    // over repeated rounds on one target and require exactness.
    let schema = beers::schema();
    let qr = QrHint::new(schema);
    let prepared = qr.compile_target("SELECT s.bar FROM Serves s WHERE s.price >= 3").unwrap();
    let batch: Vec<String> = (0..40)
        .map(|i| format!("SELECT s.bar FROM Serves s WHERE s.price >= {}", i % 10))
        .collect();
    for round in 1..=3u64 {
        prepared.grade_batch_parallel(&batch, 8);
        assert_eq!(prepared.stats().advise_calls, round * batch.len() as u64);
    }
    assert_eq!(prepared.stats().from_groups, 1);
}

//! Property-based tests for the multi-block front-end (footnote 2):
//!
//! * rendering a random comma-join query in `JOIN ... ON` syntax and
//!   flattening it recovers the same single-block query;
//! * wrapping every base table into a trivial CTE (or derived table)
//!   preserves semantics, verified by differential execution.

use proptest::prelude::*;
use qr_hint::prelude::*;
use qrhint_engine::differential_equiv;
use qrhint_sqlast::resolve::resolve_query;
use qrhint_sqlparse::{parse_query, parse_query_extended};

const TABLES: [&str; 3] = ["r", "s", "t"];

fn schema() -> Schema {
    let mut sch = Schema::new();
    for t in TABLES {
        sch = sch.with_table(t, &[("x", SqlType::Int), ("y", SqlType::Int)], &["x"]);
    }
    sch
}

/// Description of a random chain-join query: which tables, the join
/// column pairs between consecutive aliases, and extra WHERE atoms.
#[derive(Debug, Clone)]
struct JoinSpec {
    tables: Vec<&'static str>,
    /// (left_col, right_col) for alias pair (ti, ti+1).
    joins: Vec<(&'static str, &'static str)>,
    /// (alias_idx, col, op_is_gt, constant) extra filters.
    filters: Vec<(usize, &'static str, bool, i64)>,
}

fn arb_spec() -> impl Strategy<Value = JoinSpec> {
    let table = prop_oneof![Just("r"), Just("s"), Just("t")];
    let col = prop_oneof![Just("x"), Just("y")];
    (2usize..=4).prop_flat_map(move |n| {
        let tables = prop::collection::vec(table.clone(), n);
        let joins = prop::collection::vec((col.clone(), col.clone()), n - 1);
        let filters = prop::collection::vec(
            (0..n, prop_oneof![Just("x"), Just("y")], any::<bool>(), 0i64..6),
            0..3,
        );
        (tables, joins, filters).prop_map(|(tables, joins, filters)| JoinSpec {
            tables,
            joins,
            filters,
        })
    })
}

impl JoinSpec {
    fn alias(&self, i: usize) -> String {
        format!("t{i}")
    }

    fn filter_sql(&self) -> Vec<String> {
        self.filters
            .iter()
            .map(|(i, c, gt, k)| {
                format!("{}.{} {} {}", self.alias(*i), c, if *gt { ">" } else { "<=" }, k)
            })
            .collect()
    }

    fn join_conds(&self) -> Vec<String> {
        self.joins
            .iter()
            .enumerate()
            .map(|(i, (lc, rc))| {
                format!("{}.{} = {}.{}", self.alias(i), lc, self.alias(i + 1), rc)
            })
            .collect()
    }

    /// `FROM a t0, b t1, ... WHERE filters AND joins` — the order the
    /// flattener produces (WHERE conjuncts first, ON conjuncts after).
    fn comma_sql(&self) -> String {
        let from: Vec<String> = self
            .tables
            .iter()
            .enumerate()
            .map(|(i, t)| format!("{t} {}", self.alias(i)))
            .collect();
        let mut conds = self.filter_sql();
        conds.extend(self.join_conds());
        let where_clause = if conds.is_empty() {
            String::new()
        } else {
            format!(" WHERE {}", conds.join(" AND "))
        };
        format!("SELECT t0.x FROM {}{}", from.join(", "), where_clause)
    }

    /// `FROM a t0 JOIN b t1 ON ... JOIN c t2 ON ... WHERE filters`.
    fn join_sql(&self) -> String {
        let mut from = format!("{} {}", self.tables[0], self.alias(0));
        for (i, cond) in self.join_conds().iter().enumerate() {
            from = format!("{from} JOIN {} {} ON {cond}", self.tables[i + 1], self.alias(i + 1));
        }
        let filters = self.filter_sql();
        let where_clause = if filters.is_empty() {
            String::new()
        } else {
            format!(" WHERE {}", filters.join(" AND "))
        };
        format!("SELECT t0.x FROM {from}{where_clause}")
    }

    /// Every base table wrapped into a CTE exporting both columns.
    fn cte_sql(&self) -> String {
        let mut ctes = Vec::new();
        let mut from = Vec::new();
        for (i, t) in self.tables.iter().enumerate() {
            let v = format!("v{i}");
            ctes.push(format!("{v} AS (SELECT w.x AS x, w.y AS y FROM {t} w)"));
            from.push(format!("{v} {}", self.alias(i)));
        }
        let mut conds = self.filter_sql();
        conds.extend(self.join_conds());
        let where_clause = if conds.is_empty() {
            String::new()
        } else {
            format!(" WHERE {}", conds.join(" AND "))
        };
        format!(
            "WITH {} SELECT t0.x FROM {}{}",
            ctes.join(", "),
            from.join(", "),
            where_clause
        )
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// JOIN-syntax rendering flattens to exactly the comma-join query.
    #[test]
    fn join_rendering_flattens_to_comma_join(spec in arb_spec()) {
        let comma = parse_query(&spec.comma_sql()).unwrap();
        let joined = parse_query_extended(&spec.join_sql(), &FlattenOptions::default())
            .unwrap_or_else(|e| panic!("flatten failed for {:?}: {e}", spec.join_sql()));
        prop_assert_eq!(&comma.from, &joined.from);
        prop_assert_eq!(&comma.select, &joined.select);
        // Conjunct multisets agree (associativity aside).
        let conjs = |p: &qrhint_sqlast::Pred| {
            let mut v: Vec<String> = match p {
                qrhint_sqlast::Pred::And(cs) => cs.iter().map(|c| c.to_string()).collect(),
                qrhint_sqlast::Pred::True => vec![],
                other => vec![other.to_string()],
            };
            v.sort();
            v
        };
        prop_assert_eq!(conjs(&comma.where_pred), conjs(&joined.where_pred));
    }

    /// CTE-wrapping every table preserves semantics: differential
    /// execution on randomized databases cannot tell the queries apart.
    #[test]
    fn cte_wrapping_preserves_semantics(spec in arb_spec(), seed in 0u64..1000) {
        let sch = schema();
        let direct = resolve_query(&sch, &parse_query(&spec.comma_sql()).unwrap()).unwrap();
        let via_cte = resolve_query(
            &sch,
            &parse_query_extended(&spec.cte_sql(), &FlattenOptions::default())
                .unwrap_or_else(|e| panic!("flatten failed for {:?}: {e}", spec.cte_sql())),
        )
        .unwrap();
        let ok = differential_equiv(&direct, &via_cte, &sch, seed, 8)
            .unwrap_or_else(|e| panic!("execution failed: {e}"));
        prop_assert!(
            ok,
            "CTE form diverged:\n  direct: {}\n  cte:    {}",
            direct, via_cte
        );
    }

    /// The pipeline agrees: a query and its JOIN-syntax rendering are
    /// judged equivalent with no hints.
    #[test]
    fn pipeline_judges_renderings_equivalent(spec in arb_spec()) {
        let qr = QrHint::new(schema());
        let advice = qr
            .advise_sql_extended(&spec.comma_sql(), &spec.join_sql(), &FlattenOptions::default())
            .unwrap();
        prop_assert!(advice.is_equivalent(), "hints: {:?}", advice.hints);
    }
}

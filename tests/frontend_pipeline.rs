//! End-to-end tests of the multi-block front-end (footnote 2 of the
//! paper): queries written with JOIN syntax, CTEs and FROM subqueries are
//! flattened to the single-block fragment and then hinted exactly like
//! hand-written single-block queries — with every final query
//! differentially verified against the target on randomized databases.

use qr_hint::prelude::*;
use qrhint_engine::differential_equiv;
use qrhint_workloads::beers;

fn fix_and_verify_ext(qr: &QrHint, target_sql: &str, working_sql: &str) -> Vec<Stage> {
    let opts = FlattenOptions::with_subquery_rewrite();
    let q_star = qr.prepare_extended(target_sql, &opts).unwrap();
    let q = qr.prepare_extended(working_sql, &opts).unwrap();
    let (final_q, trail) = qr
        .fix_fully(&q_star, &q)
        .unwrap_or_else(|e| panic!("pipeline failed: {e}"));
    assert!(trail.last().unwrap().is_equivalent());
    let ok = differential_equiv(&q_star, &final_q, qr.schema(), 0xF00D, 25)
        .unwrap_or_else(|e| panic!("execution failed: {e}"));
    assert!(ok, "final query {final_q} is not bag-equivalent to the target");
    trail.iter().map(|a| a.stage).collect()
}

#[test]
fn join_syntax_equals_comma_join() {
    // The same query written both ways must be judged equivalent with no
    // hints at all.
    let qr = QrHint::new(beers::schema());
    let target = "SELECT l.beer FROM Likes l, Serves s \
                  WHERE l.beer = s.beer AND s.price > 3";
    let working = "SELECT l.beer FROM Likes l JOIN Serves s ON l.beer = s.beer \
                   WHERE s.price > 3";
    let advice = qr
        .advise_sql_extended(target, working, &FlattenOptions::default())
        .unwrap();
    assert!(advice.is_equivalent(), "{:?}", advice.hints);
}

#[test]
fn wrong_join_condition_is_hinted_in_where() {
    let qr = QrHint::new(beers::schema());
    let target = "SELECT l.beer FROM Likes l, Serves s \
                  WHERE l.beer = s.beer AND s.price >= 3";
    // Student used JOIN syntax and got the price comparison wrong.
    let working = "SELECT l.beer FROM Likes l JOIN Serves s ON l.beer = s.beer \
                   WHERE s.price > 3";
    let advice = qr
        .advise_sql_extended(target, working, &FlattenOptions::default())
        .unwrap();
    assert_eq!(advice.stage, Stage::Where);
    let stages = fix_and_verify_ext(&qr, target, working);
    assert_eq!(*stages.last().unwrap(), Stage::Done);
}

#[test]
fn missing_join_table_hinted_in_from() {
    let qr = QrHint::new(beers::schema());
    let target = "SELECT f.drinker FROM Frequents f JOIN Serves s ON f.bar = s.bar \
                  WHERE s.beer = 'IPA'";
    let working = "SELECT f.drinker FROM Frequents f WHERE f.bar = 'IPA'";
    let advice = qr
        .advise_sql_extended(target, working, &FlattenOptions::default())
        .unwrap();
    assert_eq!(advice.stage, Stage::From);
    fix_and_verify_ext(&qr, target, working);
}

#[test]
fn cte_working_query_matches_plain_target() {
    let qr = QrHint::new(beers::schema());
    let target = "SELECT s.bar FROM Serves s WHERE s.price < 3 AND s.beer = 'IPA'";
    let working = "WITH cheap AS (SELECT s.bar, s.beer FROM Serves s WHERE s.price < 3) \
                   SELECT c.bar FROM cheap c WHERE c.beer = 'IPA'";
    let advice = qr
        .advise_sql_extended(target, working, &FlattenOptions::default())
        .unwrap();
    assert!(advice.is_equivalent(), "{:?}", advice.hints);
}

#[test]
fn cte_with_wrong_filter_gets_where_hint_and_converges() {
    let qr = QrHint::new(beers::schema());
    let target = "SELECT s.bar FROM Serves s WHERE s.price <= 3 AND s.beer = 'IPA'";
    let working = "WITH cheap AS (SELECT s.bar, s.beer FROM Serves s WHERE s.price < 3) \
                   SELECT c.bar FROM cheap c WHERE c.beer = 'IPA'";
    let advice = qr
        .advise_sql_extended(target, working, &FlattenOptions::default())
        .unwrap();
    assert_eq!(advice.stage, Stage::Where);
    let stages = fix_and_verify_ext(&qr, target, working);
    assert_eq!(*stages.last().unwrap(), Stage::Done);
}

#[test]
fn derived_table_aggregation_free_inlines_and_hints() {
    let qr = QrHint::new(beers::schema());
    let target = "SELECT l.drinker FROM Likes l, Serves s \
                  WHERE l.beer = s.beer AND s.price >= 5";
    let working = "SELECT l.drinker \
                   FROM Likes l, (SELECT s.beer FROM Serves s WHERE s.price > 5) d \
                   WHERE l.beer = d.beer";
    let advice = qr
        .advise_sql_extended(target, working, &FlattenOptions::default())
        .unwrap();
    assert_eq!(advice.stage, Stage::Where);
    fix_and_verify_ext(&qr, target, working);
}

#[test]
fn exists_rewrite_equivalence_under_distinct() {
    // Under DISTINCT the EXISTS ↔ join rewrite is semantics-preserving;
    // the pipeline must judge these equivalent.
    let qr = QrHint::new(beers::schema());
    let target = "SELECT DISTINCT l.drinker FROM Likes l, Serves s \
                  WHERE l.beer = s.beer";
    let working = "SELECT DISTINCT l.drinker FROM Likes l \
                   WHERE EXISTS (SELECT * FROM Serves s WHERE s.beer = l.beer)";
    let advice = qr
        .advise_sql_extended(target, working, &FlattenOptions::with_subquery_rewrite())
        .unwrap();
    assert!(advice.is_equivalent(), "{:?}", advice.hints);
    // Differential check: DISTINCT makes the rewrite exact.
    let opts = FlattenOptions::with_subquery_rewrite();
    let q_star = qr.prepare_extended(target, &opts).unwrap();
    let q = qr.prepare_extended(working, &opts).unwrap();
    assert!(differential_equiv(&q_star, &q, qr.schema(), 7, 25).unwrap());
}

#[test]
fn in_subquery_rewrite_with_wrong_threshold() {
    let qr = QrHint::new(beers::schema());
    let target = "SELECT DISTINCT l.drinker FROM Likes l \
                  WHERE l.beer IN (SELECT s.beer FROM Serves s WHERE s.price <= 4)";
    let working = "SELECT DISTINCT l.drinker FROM Likes l \
                   WHERE l.beer IN (SELECT s.beer FROM Serves s WHERE s.price < 4)";
    let opts = FlattenOptions::with_subquery_rewrite();
    let advice = qr.advise_sql_extended(target, working, &opts).unwrap();
    assert_eq!(advice.stage, Stage::Where);
    fix_and_verify_ext(&qr, target, working);
}

#[test]
fn mixed_syntax_spja_query_converges() {
    // GROUP BY / HAVING on top of a JOIN-syntax FROM.
    let qr = QrHint::new(beers::schema());
    let target = "SELECT l.beer, COUNT(*) FROM Likes l, Serves s \
                  WHERE l.beer = s.beer GROUP BY l.beer HAVING COUNT(*) >= 2";
    let working = "SELECT l.beer, COUNT(*) \
                   FROM Likes l JOIN Serves s ON l.beer = s.beer \
                   GROUP BY l.beer HAVING COUNT(*) > 2";
    let advice = qr
        .advise_sql_extended(target, working, &FlattenOptions::default())
        .unwrap();
    assert_eq!(advice.stage, Stage::Having);
    fix_and_verify_ext(&qr, target, working);
}

#[test]
fn negative_subqueries_surface_unsupported() {
    let qr = QrHint::new(beers::schema());
    let err = qr
        .advise_sql_extended(
            "SELECT l.drinker FROM Likes l",
            "SELECT l.drinker FROM Likes l \
             WHERE NOT EXISTS (SELECT * FROM Serves s WHERE s.beer = l.beer)",
            &FlattenOptions::with_subquery_rewrite(),
        )
        .unwrap_err();
    assert!(matches!(err, qrhint_core::QrHintError::Unsupported(_)), "{err:?}");
}

#[test]
fn strict_prepare_and_extended_prepare_agree_on_fragment() {
    let qr = QrHint::new(beers::schema());
    for sql in [
        beers::EXAMPLE1_TARGET,
        beers::EXAMPLE1_WORKING,
        "SELECT s.bar FROM Serves s WHERE s.price BETWEEN 2 AND 5",
    ] {
        let a = qr.prepare(sql).unwrap();
        let b = qr.prepare_extended(sql, &FlattenOptions::default()).unwrap();
        assert_eq!(a, b, "strict vs extended mismatch for {sql:?}");
    }
}

//! End-to-end coverage of the `qr-hint serve` daemon over real
//! `TcpStream`s: register → advise → batch-grade round trips, JSON
//! parity with the offline `grade --json` path, the 400/422/404/405
//! error contract (malformed input answers, never silently drops the
//! connection), LRU eviction, concurrent clients hammering one target,
//! and graceful shutdown — both in-process ([`Server`]) and through the
//! actual `qr-hint serve` binary.

use qr_hint::server::{Client, RegistryConfig, Server, ServerConfig, ServiceConfig};
use serde::Value;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

const SCHEMA: &str = "CREATE TABLE Serves (\
    bar VARCHAR(20), beer VARCHAR(20), price INT, PRIMARY KEY (bar, beer));";
const TARGET: &str = "SELECT s.bar FROM Serves s WHERE s.price >= 3";

const SUBMISSIONS: &[&str] = &[
    "SELECT s.bar FROM Serves s WHERE s.price > 2",   // equivalent
    "SELECT s.bar FROM Serves s WHERE s.price > 3",   // WHERE hint
    "SELECT s.beer FROM Serves s WHERE s.price >= 3", // SELECT hint
    "SELEKT nonsense",                                // malformed
];

// ---------------------------------------------------------------------------
// Client + JSON helpers (the HTTP client itself is the daemon crate's
// own `qrhint_server::Client`, exercised here over real sockets)
// ---------------------------------------------------------------------------

/// One-shot request on a fresh connection.
fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    qr_hint::server::client::request_once(addr, method, path, body).expect("request")
}

fn json_get<'v>(v: &'v Value, key: &str) -> &'v Value {
    match v {
        Value::Map(m) => m
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .unwrap_or_else(|| panic!("no key `{key}` in {v:?}")),
        other => panic!("expected map for `{key}`, got {other:?}"),
    }
}

fn json_str(v: &Value) -> &str {
    match v {
        Value::Str(s) => s.as_str(),
        other => panic!("expected string, got {other:?}"),
    }
}

fn parse_json(body: &str) -> Value {
    serde_json::from_str::<Value>(body)
        .unwrap_or_else(|e| panic!("bad JSON ({e}): {body}"))
}

/// Canonical compact serialization: both the CLI's pretty JSON and the
/// server's compact JSON parse into the same `Value` tree, and this
/// writer is deterministic, so equal canonical strings ⇔ byte-identical
/// advice JSON.
fn canonical(v: &Value) -> String {
    serde_json::to_string(v).unwrap()
}

// ---------------------------------------------------------------------------
// Server harness
// ---------------------------------------------------------------------------

struct TestServer {
    addr: SocketAddr,
    handle: Option<std::thread::JoinHandle<std::io::Result<()>>>,
}

impl TestServer {
    fn start(max_targets: usize) -> TestServer {
        let server = Server::bind(ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            service: ServiceConfig {
                jobs: 2,
                registry: RegistryConfig { max_targets, ..RegistryConfig::default() },
            },
            ..ServerConfig::default()
        })
        .expect("bind test server");
        let addr = server.addr();
        let handle = std::thread::spawn(move || server.run());
        TestServer { addr, handle: Some(handle) }
    }

    fn register(&self, schema: &str, target: &str) -> String {
        let body = format!(
            "{{\"schema\": {}, \"target\": {}}}",
            serde_json::to_string(schema).unwrap(),
            serde_json::to_string(target).unwrap()
        );
        let (status, body) = request(self.addr, "POST", "/targets", &body);
        assert_eq!(status, 201, "register failed: {body}");
        json_str(json_get(&parse_json(&body), "id")).to_string()
    }

    /// Drain and join; asserts a clean exit.
    fn shutdown(mut self) {
        let (status, body) = request(self.addr, "POST", "/shutdown", "");
        assert_eq!(status, 200, "{body}");
        self.handle
            .take()
            .unwrap()
            .join()
            .expect("server thread panicked")
            .expect("server run() errored");
    }
}

impl Drop for TestServer {
    fn drop(&mut self) {
        // Best-effort drain if a failing test returns early.
        if let Some(handle) = self.handle.take() {
            if let Ok(mut client) = Client::connect(self.addr) {
                let _ = client.request("POST", "/shutdown", "");
            }
            let _ = handle.join();
        }
    }
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

#[test]
fn register_advise_grade_stats_round_trip() {
    let server = TestServer::start(8);
    let id = server.register(SCHEMA, TARGET);

    // Advise: an equivalent submission.
    let (status, body) = request(
        server.addr,
        "POST",
        &format!("/targets/{id}/advise"),
        "{\"sql\": \"SELECT s.bar FROM Serves s WHERE s.price > 2\"}",
    );
    assert_eq!(status, 200, "{body}");
    let report = parse_json(&body);
    assert_eq!(json_get(&report, "equivalent"), &Value::Bool(true));

    // Advise: a WHERE mistake gets a WHERE-stage hint.
    let (status, body) = request(
        server.addr,
        "POST",
        &format!("/targets/{id}/advise"),
        "{\"sql\": \"SELECT s.bar FROM Serves s WHERE s.price > 3\"}",
    );
    assert_eq!(status, 200, "{body}");
    let report = parse_json(&body);
    assert_eq!(json_get(&report, "equivalent"), &Value::Bool(false));
    assert_eq!(json_str(json_get(&report, "stage")), "WHERE");

    // Batch grade: entries in order, per-submission errors in place.
    let grade_body = format!(
        "{{\"submissions\": {}, \"jobs\": 4}}",
        serde_json::to_string(&SUBMISSIONS.iter().map(|s| s.to_string()).collect::<Vec<_>>())
            .unwrap()
    );
    let (status, body) =
        request(server.addr, "POST", &format!("/targets/{id}/grade"), &grade_body);
    assert_eq!(status, 200, "{body}");
    let resp = parse_json(&body);
    let Value::Seq(entries) = json_get(&resp, "entries") else { panic!("entries not a list") };
    assert_eq!(entries.len(), SUBMISSIONS.len());
    assert_eq!(json_get(&entries[0], "ok"), &Value::Bool(true));
    assert_eq!(json_get(&entries[3], "ok"), &Value::Bool(false));
    assert!(json_str(json_get(&entries[3], "error")).contains("parse error"));

    // Stats reflect the traffic (2 advises + 4 batch entries).
    let (status, body) = request(server.addr, "GET", &format!("/targets/{id}/stats"), "");
    assert_eq!(status, 200, "{body}");
    let stats = json_get(&parse_json(&body), "stats").clone();
    assert_eq!(json_get(&stats, "advise_calls"), &Value::Int(5), "{body}");

    server.shutdown();
}

#[test]
fn advice_json_is_byte_identical_to_offline_grade_json() {
    // The same target and submissions through (a) the offline CLI
    // `grade --json --jobs 2` and (b) the HTTP daemon must produce
    // byte-identical advice JSON (canonical serialization of each
    // submission's report, including the structured Advice tree).
    use std::process::Command;

    let dir = std::env::temp_dir().join(format!("qrhint-server-parity-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(dir.join("subs")).unwrap();
    std::fs::write(dir.join("schema.sql"), SCHEMA).unwrap();
    std::fs::write(dir.join("target.sql"), TARGET).unwrap();
    for (i, sql) in SUBMISSIONS.iter().enumerate() {
        std::fs::write(dir.join("subs").join(format!("s{i}.sql")), sql).unwrap();
    }

    let out = Command::new(env!("CARGO_BIN_EXE_qr-hint"))
        .arg("grade")
        .args(["--schema", &dir.join("schema.sql").display().to_string()])
        .args(["--target", &dir.join("target.sql").display().to_string()])
        .args(["--submissions", &dir.join("subs").display().to_string()])
        .args(["--jobs", "2", "--json"])
        .output()
        .expect("run qr-hint grade");
    let cli_json = String::from_utf8(out.stdout).unwrap();
    // `grade --json` wraps the entries in a `{summary, entries}` object.
    let cli_output = parse_json(&cli_json);
    let Value::Seq(cli_entries) = json_get(&cli_output, "entries").clone() else {
        panic!("CLI output has no entries list")
    };
    assert_eq!(cli_entries.len(), SUBMISSIONS.len());

    let server = TestServer::start(8);
    let id = server.register(SCHEMA, TARGET);

    // (1) Single-submission advise parity.
    for (i, sql) in SUBMISSIONS.iter().enumerate() {
        let body = format!("{{\"sql\": {}}}", serde_json::to_string(*sql).unwrap());
        let (status, resp) =
            request(server.addr, "POST", &format!("/targets/{id}/advise"), &body);
        let cli_report = json_get(&cli_entries[i], "report");
        if status == 200 {
            assert_eq!(
                canonical(&parse_json(&resp)),
                canonical(cli_report),
                "submission {i}: server advise diverged from grade --json"
            );
        } else {
            // Malformed submission: CLI reports it in-place, server 422s.
            assert_eq!(status, 422, "{resp}");
            assert_eq!(cli_report, &Value::Null);
        }
    }

    // (2) Batch-grade parity, entry by entry, jobs 1 vs 4 as well.
    let subs_json =
        serde_json::to_string(&SUBMISSIONS.iter().map(|s| s.to_string()).collect::<Vec<_>>())
            .unwrap();
    let mut batch_bodies = Vec::new();
    for jobs in [1usize, 4] {
        let (status, resp) = request(
            server.addr,
            "POST",
            &format!("/targets/{id}/grade"),
            &format!("{{\"submissions\": {subs_json}, \"jobs\": {jobs}}}"),
        );
        assert_eq!(status, 200, "{resp}");
        let parsed = parse_json(&resp);
        let Value::Seq(entries) = json_get(&parsed, "entries").clone() else {
            panic!("entries not a list")
        };
        for (i, entry) in entries.iter().enumerate() {
            assert_eq!(
                canonical(json_get(entry, "report")),
                canonical(json_get(&cli_entries[i], "report")),
                "jobs={jobs}, submission {i}: batch report diverged from grade --json"
            );
            assert_eq!(
                canonical(json_get(entry, "error")),
                canonical(json_get(&cli_entries[i], "error")),
                "jobs={jobs}, submission {i}: error text diverged"
            );
        }
        batch_bodies.push(canonical(json_get(&parsed, "entries")));
    }
    assert_eq!(batch_bodies[0], batch_bodies[1], "grade entries must not depend on jobs");

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn malformed_http_and_sql_get_clean_error_responses() {
    let server = TestServer::start(8);

    // Garbage that is not HTTP at all → a real 400 response, not a
    // silent connection drop.
    {
        let mut stream = TcpStream::connect(server.addr).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        stream.write_all(b"THIS IS NOT HTTP\r\n\r\n").unwrap();
        let mut resp = String::new();
        stream.read_to_string(&mut resp).unwrap();
        assert!(resp.starts_with("HTTP/1.1 400"), "got: {resp:?}");
        assert!(resp.contains("bad_http"), "got: {resp:?}");
    }

    // Unsupported HTTP version → 400.
    {
        let mut stream = TcpStream::connect(server.addr).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        stream.write_all(b"GET /healthz HTTP/2.0\r\n\r\n").unwrap();
        let mut resp = String::new();
        stream.read_to_string(&mut resp).unwrap();
        assert!(resp.starts_with("HTTP/1.1 400"), "got: {resp:?}");
    }

    // Bad JSON body → 400 with a reason.
    let (status, body) = request(server.addr, "POST", "/targets", "{this is not json");
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("bad JSON"), "{body}");

    // Well-formed JSON, malformed target SQL → 422.
    let (status, body) = request(
        server.addr,
        "POST",
        "/targets",
        &format!(
            "{{\"schema\": {}, \"target\": \"SELEKT broken\"}}",
            serde_json::to_string(SCHEMA).unwrap()
        ),
    );
    assert_eq!(status, 422, "{body}");
    assert!(body.contains("bad_sql"), "{body}");

    // Malformed submission against a real target → 422.
    let id = server.register(SCHEMA, TARGET);
    let (status, body) = request(
        server.addr,
        "POST",
        &format!("/targets/{id}/advise"),
        "{\"sql\": \"SELEKT nonsense\"}",
    );
    assert_eq!(status, 422, "{body}");

    // Unknown target → 404; unknown route → 404; wrong verb → 405.
    let (status, _) =
        request(server.addr, "POST", "/targets/t999/advise", "{\"sql\": \"SELECT 1\"}");
    assert_eq!(status, 404);
    let (status, _) = request(server.addr, "GET", "/no/such/route", "");
    assert_eq!(status, 404);
    let (status, _) = request(server.addr, "GET", "/targets", "");
    assert_eq!(status, 405);

    // The connection survives an application-level error (keep-alive):
    // a 422 then a 200 on the same socket.
    {
        let mut client = Client::connect(server.addr).unwrap();
        let (status, _) = client
            .request(
                "POST",
                &format!("/targets/{id}/advise"),
                "{\"sql\": \"SELEKT nonsense\"}",
            )
            .unwrap();
        assert_eq!(status, 422);
        let (status, _) = client.request("GET", "/healthz", "").unwrap();
        assert_eq!(status, 200, "keep-alive must survive a 422");
    }

    server.shutdown();
}

#[test]
fn concurrent_clients_hammer_one_target_consistently() {
    let server = TestServer::start(8);
    let id = server.register(SCHEMA, TARGET);
    let addr = server.addr;

    // Expected equivalence per submission, established up front.
    let expected: Vec<bool> = vec![true, false, false];
    let clients = 6usize;
    let rounds = 8usize;

    std::thread::scope(|scope| {
        let id = &id;
        let expected = &expected;
        for c in 0..clients {
            scope.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                for r in 0..rounds {
                    let i = (c + r) % expected.len();
                    let body = format!(
                        "{{\"sql\": {}}}",
                        serde_json::to_string(SUBMISSIONS[i]).unwrap()
                    );
                    let (status, resp) = client
                        .request("POST", &format!("/targets/{id}/advise"), &body)
                        .unwrap();
                    assert_eq!(status, 200, "client {c} round {r}: {resp}");
                    let report = parse_json(&resp);
                    assert_eq!(
                        json_get(&report, "equivalent"),
                        &Value::Bool(expected[i]),
                        "client {c} round {r} submission {i}"
                    );
                }
            });
        }
    });

    // Every request hit the one shared prepared target.
    let (status, body) = request(addr, "GET", &format!("/targets/{id}/stats"), "");
    assert_eq!(status, 200);
    let stats = json_get(&parse_json(&body), "stats").clone();
    assert_eq!(
        json_get(&stats, "advise_calls"),
        &Value::Int((clients * rounds) as i64),
        "{body}"
    );
    // Duplicates dominated, so the bounded advice cache must have hits.
    // Racing first-grades of the same submission can each miss (both
    // grade for real, deterministically), so the worst case is one miss
    // per client per distinct submission — not one per submission.
    let Value::Int(hits) = json_get(&stats, "advice_cache_hits") else { panic!("{body}") };
    let Value::Int(misses) = json_get(&stats, "advice_cache_misses") else { panic!("{body}") };
    assert_eq!(*hits + *misses, (clients * rounds) as i64, "{body}");
    assert!(
        *hits >= (clients * rounds - clients * expected.len()) as i64,
        "{body}"
    );

    server.shutdown();
}

#[test]
fn lru_eviction_over_http_keeps_touched_targets() {
    let server = TestServer::start(2);
    let t1 = server.register(SCHEMA, TARGET);
    let t2 = server.register(SCHEMA, "SELECT s.beer FROM Serves s WHERE s.price >= 1");
    // Touch t1 so t2 is the LRU entry when t3 arrives.
    let (status, _) = request(server.addr, "GET", &format!("/targets/{t1}/stats"), "");
    assert_eq!(status, 200);
    let t3 = server.register(SCHEMA, "SELECT s.bar FROM Serves s");

    let (status, _) = request(server.addr, "GET", &format!("/targets/{t2}/stats"), "");
    assert_eq!(status, 404, "LRU target must be evicted");
    for alive in [&t1, &t3] {
        let (status, _) = request(server.addr, "GET", &format!("/targets/{alive}/stats"), "");
        assert_eq!(status, 200, "{alive} must survive");
    }
    // healthz reports the eviction.
    let (_, body) = request(server.addr, "GET", "/healthz", "");
    let health = parse_json(&body);
    assert_eq!(json_get(&health, "targets"), &Value::Int(2));
    assert_eq!(json_get(&health, "evicted_total"), &Value::Int(1));

    server.shutdown();
}

#[test]
fn graceful_shutdown_drains_and_frees_the_port() {
    let server = TestServer::start(8);
    let addr = server.addr;
    let id = server.register(SCHEMA, TARGET);
    // Work before the drain completes normally.
    let (status, _) = request(
        addr,
        "POST",
        &format!("/targets/{id}/advise"),
        "{\"sql\": \"SELECT s.bar FROM Serves s WHERE s.price > 2\"}",
    );
    assert_eq!(status, 200);

    server.shutdown(); // asserts run() returned Ok

    // The listener is gone: a fresh connection must fail (or be
    // instantly closed with nothing listening).
    match TcpStream::connect_timeout(&addr, Duration::from_millis(500)) {
        Err(_) => {}
        Ok(mut stream) => {
            // A racing TIME_WAIT accept can succeed; the read must fail.
            stream.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
            let _ = stream.write_all(b"GET /healthz HTTP/1.1\r\n\r\n");
            let mut buf = String::new();
            assert_eq!(
                stream.read_to_string(&mut buf).map(|_| buf.clone()).ok().filter(|b| !b.is_empty()),
                None,
                "server answered after drain"
            );
        }
    }
}

#[test]
fn serve_binary_smoke_round_trip() {
    // The actual `qr-hint serve` subcommand: spawn, parse the announced
    // address, register/advise/healthz, then drain and check exit 0.
    use std::process::{Command, Stdio};

    let mut child = Command::new(env!("CARGO_BIN_EXE_qr-hint"))
        .args(["serve", "--addr", "127.0.0.1:0", "--jobs", "auto", "--max-targets", "4"])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn qr-hint serve");
    let stdout = child.stdout.take().unwrap();
    let mut lines = BufReader::new(stdout);
    let mut first = String::new();
    lines.read_line(&mut first).expect("read announce line");
    let addr: SocketAddr = first
        .trim()
        .strip_prefix("qr-hint serving on http://")
        .unwrap_or_else(|| panic!("bad announce line: {first:?}"))
        .parse()
        .expect("parse announced address");

    let (status, body) = request(addr, "GET", "/healthz", "");
    assert_eq!(status, 200, "{body}");
    let body = format!(
        "{{\"schema\": {}, \"target\": {}}}",
        serde_json::to_string(SCHEMA).unwrap(),
        serde_json::to_string(TARGET).unwrap()
    );
    let (status, resp) = request(addr, "POST", "/targets", &body);
    assert_eq!(status, 201, "{resp}");
    let id = json_str(json_get(&parse_json(&resp), "id")).to_string();
    let (status, resp) = request(
        addr,
        "POST",
        &format!("/targets/{id}/advise"),
        "{\"sql\": \"SELECT s.bar FROM Serves s WHERE s.price > 3\"}",
    );
    assert_eq!(status, 200, "{resp}");
    let (status, _) = request(addr, "POST", "/shutdown", "");
    assert_eq!(status, 200);

    let exit = child.wait().expect("wait for serve to drain");
    assert!(exit.success(), "serve must exit 0 after a graceful drain, got {exit:?}");
}

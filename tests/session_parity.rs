//! Session-layer soundness: grading through a shared [`PreparedTarget`]
//! (memoized table mappings, persistent per-FROM-binding oracles with
//! hash-keyed verdict caches, duplicate-advice cache) must produce
//! exactly the advice the cold stateless path produces, across the
//! Students corpus — including the self-join questions that exercise
//! signature-based mapping.

use qr_hint::prelude::*;
use qrhint_workloads::students;
use std::collections::BTreeMap;

#[test]
fn prepared_grading_matches_cold_grading_on_students_corpus() {
    let qr = QrHint::new(students::schema());
    let mut prepared: BTreeMap<String, PreparedTarget> = BTreeMap::new();
    let mut compared = 0usize;
    for (i, e) in students::corpus().iter().enumerate() {
        // Every 3rd supported entry keeps the test fast while covering
        // all four questions and every error category.
        if e.category == "UNSUPPORTED" || i % 3 != 0 {
            continue;
        }
        let target = prepared
            .entry(e.pair.target_sql.clone())
            .or_insert_with(|| qr.compile_target(&e.pair.target_sql).unwrap());
        let warm = target.advise_sql(&e.pair.working_sql).unwrap();
        let cold = qr.advise_sql(&e.pair.target_sql, &e.pair.working_sql).unwrap();
        assert_eq!(cold.stage, warm.stage, "{}", e.pair.id);
        assert_eq!(cold.hints, warm.hints, "{}", e.pair.id);
        assert_eq!(cold.fixed, warm.fixed, "{}", e.pair.id);
        compared += 1;
    }
    assert!(compared >= 80, "only {compared} entries compared");
    // The memo layers must actually have been exercised by the sweep.
    let stats: Vec<SessionStats> = prepared.values().map(|p| p.stats()).collect();
    assert!(stats.iter().any(|s| s.mapping_reuses > 0), "{stats:?}");
}

#[test]
fn tutor_sessions_converge_like_fix_fully_on_a_corpus_slice() {
    let qr = QrHint::new(students::schema());
    let mut prepared: BTreeMap<String, PreparedTarget> = BTreeMap::new();
    for (i, e) in students::corpus().iter().enumerate() {
        if e.category == "UNSUPPORTED" || i % 11 != 0 {
            continue;
        }
        let target = prepared
            .entry(e.pair.target_sql.clone())
            .or_insert_with(|| qr.compile_target(&e.pair.target_sql).unwrap());
        let session = target.tutor_sql(&e.pair.working_sql).unwrap();
        let (final_q, trail) = session.run_to_completion().unwrap();
        assert!(trail.last().unwrap().is_equivalent(), "{}", e.pair.id);
        // The converged query must be equivalent under a *cold* check —
        // stage-resume trust must never manufacture a bogus Done.
        let verdict = qr
            .advise(&qr.prepare(&e.pair.target_sql).unwrap(), &final_q)
            .unwrap();
        assert!(verdict.is_equivalent(), "{}: {final_q}", e.pair.id);
    }
}

//! Hint-minimality over single-mutation fuzz corpora (PR 6).
//!
//! The fuzzer records, for every mutant, which clause it touched and —
//! for WHERE-atom mutations — the exact predicate path it rewrote. For
//! a pair that differs by **one** mutation, a minimal hint must point
//! at that clause: the first stage the pipeline flags has to be the
//! mutated one (stage order FROM → WHERE → GROUP BY → HAVING → SELECT
//! means an earlier-stage hint would blame untouched structure), and a
//! WHERE-atom repair's site paths must stay on the mutated subtree
//! rather than rewriting the whole clause.
//!
//! Mutants the pipeline proves *equivalent* are skipped — a
//! semantics-preserving mutation has no clause to localize (the
//! corpus keeps them deliberately; the differential harness classifies
//! them as `equivalent-mutant`).

use qr_hint::prelude::*;
use qr_hint::workloads::mutate::{Fuzzer, MutationKind, SCHEMA_NAMES};
use qrhint_core::Hint;

const CASES_PER_SCHEMA: usize = 20;
const SEED: u64 = 11;

#[test]
fn single_mutation_hints_localize_to_the_mutated_clause() {
    let mut checked = 0usize;
    let mut equivalent = 0usize;
    for schema_name in SCHEMA_NAMES {
        let fuzzer = Fuzzer::for_schema(schema_name).expect("bundled schema");
        let qr = QrHint::new(fuzzer.schema().clone());
        let mut prepared = std::collections::BTreeMap::new();
        for case in fuzzer.generate_single(CASES_PER_SCHEMA, SEED) {
            let target = prepared.entry(case.base_id.clone()).or_insert_with(|| {
                qr.compile_target(&case.target.to_string())
                    .expect("fuzz target compiles")
            });
            let advice = target.advise(&case.working).expect("mutant is gradable");
            if advice.is_equivalent() {
                equivalent += 1;
                continue;
            }
            // Fuzz pairs share one alias space, but self-joined targets
            // let the FROM stage pick a non-identity alias
            // correspondence (signature matching, Appendix B.1) — under
            // a swapped mapping the discrepancy legitimately surfaces
            // in a different clause than the one mutated, so
            // clause-localization is only well-defined when the chosen
            // mapping is the identity.
            if advice
                .mapping
                .as_ref()
                .is_some_and(|m| m.iter().any(|(star, work)| star != work))
            {
                continue;
            }
            let mutation = &case.mutations[0];
            assert_eq!(
                advice.stage.to_string(),
                mutation.clause,
                "{}: first flagged stage must be the mutated clause \
                 ({})\ntarget:  {}\nworking: {}",
                case.id,
                mutation.description,
                case.target,
                case.working,
            );
            if mutation.kind == MutationKind::WhereAtom {
                let path = mutation.where_path.as_ref().expect("atom mutations carry a path");
                let sites: Vec<_> = advice
                    .hints
                    .iter()
                    .filter_map(|h| match h {
                        Hint::PredicateRepair { sites, .. } => Some(sites),
                        _ => None,
                    })
                    .flatten()
                    .collect();
                assert!(
                    !sites.is_empty(),
                    "{}: WHERE-atom mutation must yield a predicate repair, got {:?}",
                    case.id,
                    advice.hints,
                );
                // Minimality: every repair site stays on the mutated
                // subtree (site path a prefix of the mutated path, or a
                // refinement below it) instead of touching siblings.
                for site in &sites {
                    let on_subtree = site.path.len() <= path.len()
                        && path[..site.path.len()] == site.path[..]
                        || site.path.len() > path.len()
                            && site.path[..path.len()] == path[..];
                    assert!(
                        on_subtree,
                        "{}: repair site {:?} strays from mutated path {:?}\n\
                         target:  {}\nworking: {}",
                        case.id, site.path, path, case.target, case.working,
                    );
                }
            }
            checked += 1;
        }
    }
    // The corpus is deterministic, so these floors are stable: most
    // single mutations must be non-equivalent and actually checked.
    assert!(
        checked >= 4 * SCHEMA_NAMES.len(),
        "too few localization checks ran: {checked} checked, {equivalent} equivalent"
    );
}

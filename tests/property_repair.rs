//! Property-based tests (proptest) for the repair machinery's paper
//! lemmas:
//!
//! * Lemma 5.3 — any repair applied at any site set lands inside
//!   `CreateBounds`;
//! * Lemma 5.4 — whenever the target is inside the bounds, `DeriveFixes`
//!   produces a repair whose application is equivalent to the target;
//! * solver soundness — `Unsat` formulas have no model among random
//!   assignments; models returned on `Sat` satisfy the formula.

use proptest::prelude::*;
use qrhint_core::repair::{bounds_admit, create_bounds, derive_fixes, Repair};
use qrhint_core::Oracle;
use qrhint_smt::{Model, SatResult, Solver, Value};
use qrhint_sqlast::pred::PredPath;
use qrhint_sqlast::{CmpOp, Pred, Scalar};

/// Random atomic predicates over a small variable/constant universe so
/// interactions (implications, contradictions) actually occur.
fn arb_atom() -> impl Strategy<Value = Pred> {
    let col = prop_oneof![Just("a"), Just("b"), Just("c"), Just("d")];
    let op = prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ];
    let rhs = prop_oneof![
        (0i64..5).prop_map(Scalar::Int),
        prop_oneof![Just("a"), Just("b"), Just("c")]
            .prop_map(|c| Scalar::Col(qrhint_sqlast::ColRef::new("t", c))),
    ];
    (col, op, rhs).prop_map(|(c, op, rhs)| {
        Pred::Cmp(Scalar::Col(qrhint_sqlast::ColRef::new("t", c)), op, rhs)
    })
}

/// Random small predicate trees (≤ 3 levels, ≤ 7 atoms).
fn arb_pred() -> impl Strategy<Value = Pred> {
    arb_atom().prop_recursive(3, 10, 3, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 2..4).prop_map(Pred::And),
            prop::collection::vec(inner.clone(), 2..4).prop_map(Pred::Or),
            inner.prop_map(|p| Pred::Not(Box::new(p))),
        ]
    })
}

/// Evaluate a predicate over an integer assignment (total on t.a..t.d).
fn eval_pred(p: &Pred, vals: &[i64; 4]) -> bool {
    fn scalar(e: &Scalar, vals: &[i64; 4]) -> i64 {
        match e {
            Scalar::Col(c) => match c.column.as_str() {
                "a" => vals[0],
                "b" => vals[1],
                "c" => vals[2],
                _ => vals[3],
            },
            Scalar::Int(v) => *v,
            _ => unreachable!("generator emits cols and ints only"),
        }
    }
    match p {
        Pred::True => true,
        Pred::False => false,
        Pred::Cmp(l, op, r) => op.eval(&scalar(l, vals), &scalar(r, vals)),
        Pred::And(cs) => cs.iter().all(|c| eval_pred(c, vals)),
        Pred::Or(cs) => cs.iter().any(|c| eval_pred(c, vals)),
        Pred::Not(c) => !eval_pred(c, vals),
        Pred::Like { .. } => unreachable!("generator emits no LIKE"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Lemma 5.3: applying any fixes at the chosen sites stays within the
    /// computed repair bounds — checked *semantically* by exhaustive
    /// evaluation over a small grid (no solver in the loop, so this also
    /// cross-validates the solver-based tests).
    #[test]
    fn lemma_5_3_bounds_are_valid(
        p in arb_pred(),
        fixes_src in prop::collection::vec(arb_atom(), 1..=2),
        site_seed in any::<prop::sample::Index>(),
    ) {
        let paths = p.all_paths();
        let site = paths[site_seed.index(paths.len())].clone();
        let sites = vec![site];
        let (lo, hi) = create_bounds(&p, &sites);
        let repair = Repair { sites: sites.clone(), fixes: vec![fixes_src[0].clone()] };
        let applied = repair.apply(&p);
        // lo ⇒ applied ⇒ hi pointwise over the grid.
        for a in 0..3i64 {
            for b in 0..3 {
                for c in 0..3 {
                    for d in 0..3 {
                        let vals = [a, b, c, d];
                        let lv = eval_pred(&lo, &vals);
                        let av = eval_pred(&applied, &vals);
                        let hv = eval_pred(&hi, &vals);
                        prop_assert!(!lv || av, "lower bound violated at {vals:?}");
                        prop_assert!(!av || hv, "upper bound violated at {vals:?}");
                    }
                }
            }
        }
    }

    /// Lemma 5.4: if the viability check admits the target, DeriveFixes
    /// produces a correct repair.
    #[test]
    fn lemma_5_4_derive_fixes_correct(
        p in arb_pred(),
        p_star in arb_pred(),
        sites in prop::collection::vec(any::<prop::sample::Index>(), 1..=2),
    ) {
        let paths = p.all_paths();
        let mut chosen: Vec<PredPath> = Vec::new();
        for s in &sites {
            let cand = paths[s.index(paths.len())].clone();
            if chosen.iter().all(|c| {
                let m = c.len().min(cand.len());
                c[..m] != cand[..m]
            }) {
                chosen.push(cand);
            }
        }
        let mut oracle = Oracle::for_preds(&[&p, &p_star]);
        let (lo, hi) = create_bounds(&p, &chosen);
        if bounds_admit(&mut oracle, &lo, &hi, &p_star, &[]).is_true() {
            let fixes = derive_fixes(&mut oracle, &[], &p, &chosen, &p_star, &p_star);
            let mut ordered = Vec::new();
            for s in &chosen {
                let fix = fixes.iter().find(|(path, _)| path == s);
                prop_assert!(fix.is_some(), "missing fix for {s:?}");
                ordered.push(fix.unwrap().1.clone());
            }
            let repair = Repair { sites: chosen.clone(), fixes: ordered };
            let applied = repair.apply(&p);
            // Semantic check over the grid (ground truth, solver-free).
            for a in 0..3i64 {
                for b in 0..3 {
                    for c in 0..3 {
                        for d in 0..3 {
                            let vals = [a, b, c, d];
                            prop_assert_eq!(
                                eval_pred(&applied, &vals),
                                eval_pred(&p_star, &vals),
                                "applied {} != target {} at {:?}",
                                applied, p_star, vals
                            );
                        }
                    }
                }
            }
        }
    }

    /// Solver soundness: on Unsat no grid assignment satisfies the
    /// formula (Sat answers are model-validated inside the solver).
    #[test]
    fn solver_verdicts_are_sound(p in arb_pred()) {
        let mut oracle = Oracle::for_preds(&[&p]);
        let outcome = oracle.sat_pred(&p, &[]);
        let mut any_grid_model = false;
        for a in 0..4i64 {
            for b in 0..4 {
                for c in 0..4 {
                    for d in 0..4 {
                        if eval_pred(&p, &[a, b, c, d]) {
                            any_grid_model = true;
                        }
                    }
                }
            }
        }
        match outcome {
            qrhint_smt::TriBool::False => {
                prop_assert!(!any_grid_model, "solver said Unsat but {p} has a model");
            }
            qrhint_smt::TriBool::True | qrhint_smt::TriBool::Unknown => {}
        }
    }
}

#[test]
fn solver_models_validate() {
    // Deterministic spot-check that Sat models satisfy formulas when
    // driving the solver directly (not through the oracle).
    let p = qrhint_sqlparse::parse_pred("t.a > t.b AND (t.b = 3 OR t.a < 0)").unwrap();
    let mut oracle = Oracle::for_preds(&[&p]);
    let fid = oracle.lower_pred(&p);
    let f = oracle.formula(fid);
    let solver = Solver::default();
    // Build a standalone pool covering the formula's variables.
    let mut vars = Vec::new();
    f.collect_vars(&mut vars);
    let mut pool = qrhint_smt::VarPool::new();
    for _ in 0..=vars.iter().map(|v| v.0).max().unwrap_or(0) {
        pool.fresh("x", qrhint_smt::Sort::Int);
    }
    let outcome = solver.check(&f, &mut pool);
    assert_eq!(outcome.result, SatResult::Sat);
    let m: Model = outcome.model.unwrap();
    assert_eq!(m.eval_formula(&f), Some(true));
    // And the model's values are genuine integers.
    for (_, v) in m.iter() {
        assert!(matches!(v, Value::Int(_)));
    }
}

//! PR 5 parity harness for the interned oracle.
//!
//! The oracle layer was rebuilt around hash-consed `TermId`/`FormulaId`
//! arenas with one shared, sharded verdict cache per prepared target.
//! These tests pin the refactor to the seed's behavior:
//!
//! 1. **Structural parity (proptest).** For random predicates, solving
//!    through the interned oracle must return exactly the verdicts of
//!    the seed's structural path — reconstructed here as tree lowering
//!    with first-use variable allocation plus the seed's `equiv`
//!    (syntactic-equality fast path, then two implications) driven
//!    straight through [`qrhint_smt::Solver`].
//! 2. **Corpus parity.** On the students/beers corpora, `AdviceReport`
//!    JSON is byte-identical across the stateless baseline, a prepared
//!    target (cold and warm), a target that was shed mid-run, and
//!    8-way parallel grading.
//! 3. **Cross-thread sharing.** An 8-thread hammer on one target must
//!    produce shared-verdict-cache hits from *other* threads' work, and
//!    the stats counters must stay coherent.

use proptest::prelude::*;
use qr_hint::prelude::*;
use qrhint_bench::parallel_grading::fingerprint;
use qrhint_bench::session_api;
use qrhint_core::{AdviceReport, Oracle};
use qrhint_smt::{Formula, Rel, Solver, Sort, Term, TriBool, VarPool};
use qrhint_sqlast::{ArithOp, CmpOp, ColRef, Pred, Scalar};
use std::collections::BTreeMap;

// ---------------------------------------------------------------------
// 1. Structural parity
// ---------------------------------------------------------------------

/// The seed's tree lowering: first-use variable allocation over an
/// all-integer typing (the generators below never produce strings), so
/// variable numbering — and therefore every canonical atom — matches
/// what the interned oracle allocates walking the same predicate.
struct TreeLower {
    pool: VarPool,
    vars: BTreeMap<ColRef, qrhint_smt::VarId>,
}

impl TreeLower {
    fn new() -> TreeLower {
        TreeLower { pool: VarPool::new(), vars: BTreeMap::new() }
    }

    fn scalar(&mut self, e: &Scalar) -> Term {
        match e {
            Scalar::Col(c) => {
                let v = match self.vars.get(c) {
                    Some(v) => *v,
                    None => {
                        let v = self.pool.fresh(&c.to_string(), Sort::Int);
                        self.vars.insert(c.clone(), v);
                        v
                    }
                };
                Term::var(v)
            }
            Scalar::Int(k) => Term::IntConst(*k),
            Scalar::Arith(l, op, r) => {
                let (lt, rt) = (self.scalar(l), self.scalar(r));
                match op {
                    ArithOp::Add => Term::add(lt, rt),
                    ArithOp::Sub => Term::sub(lt, rt),
                    ArithOp::Mul => Term::mul(lt, rt),
                    ArithOp::Div => Term::div(lt, rt),
                }
            }
            Scalar::Neg(inner) => Term::Neg(Box::new(self.scalar(inner))),
            other => panic!("generator produced unsupported scalar {other}"),
        }
    }

    fn pred(&mut self, p: &Pred) -> Formula {
        match p {
            Pred::True => Formula::True,
            Pred::False => Formula::False,
            Pred::Cmp(l, op, r) => {
                let rel = match op {
                    CmpOp::Eq => Rel::Eq,
                    CmpOp::Ne => Rel::Ne,
                    CmpOp::Lt => Rel::Lt,
                    CmpOp::Le => Rel::Le,
                    CmpOp::Gt => Rel::Gt,
                    CmpOp::Ge => Rel::Ge,
                };
                let (lt, rt) = (self.scalar(l), self.scalar(r));
                Formula::cmp(lt, rel, rt)
            }
            Pred::And(cs) => Formula::and(cs.iter().map(|c| self.pred(c)).collect()),
            Pred::Or(cs) => Formula::or(cs.iter().map(|c| self.pred(c)).collect()),
            Pred::Not(c) => Formula::not(self.pred(c)),
            other => panic!("generator produced unsupported pred {other}"),
        }
    }
}

/// The seed oracle's `equiv_f` driven on trees: syntactic-equality fast
/// path, then `Unsat(ctx ∧ f ∧ ¬g)` in both directions.
fn tree_equiv(
    solver: &Solver,
    f: &Formula,
    g: &Formula,
    ctx: &[Formula],
    pool: &mut VarPool,
) -> TriBool {
    if f == g {
        return TriBool::True;
    }
    let fw = solver.implies(f, g, ctx, pool);
    if fw == TriBool::False {
        return TriBool::False;
    }
    let bw = solver.implies(g, f, ctx, pool);
    if bw == TriBool::False {
        return TriBool::False;
    }
    fw.and(bw)
}

fn arb_scalar() -> impl Strategy<Value = Scalar> {
    let col = prop_oneof![Just("a"), Just("b"), Just("c")]
        .prop_map(|c| Scalar::Col(ColRef::new("t", c)));
    let leaf = prop_oneof![col, (-4i64..10).prop_map(Scalar::Int)];
    leaf.prop_recursive(2, 4, 2, |inner| {
        (inner.clone(), prop_oneof![Just(ArithOp::Add), Just(ArithOp::Sub), Just(ArithOp::Mul)], inner)
            .prop_map(|(l, op, r)| Scalar::Arith(Box::new(l), op, Box::new(r)))
    })
}

fn arb_atom() -> impl Strategy<Value = Pred> {
    let op = prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ];
    (arb_scalar(), op, arb_scalar()).prop_map(|(l, op, r)| Pred::Cmp(l, op, r))
}

fn arb_pred() -> impl Strategy<Value = Pred> {
    arb_atom().prop_recursive(2, 8, 3, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 2..4).prop_map(Pred::And),
            prop::collection::vec(inner.clone(), 2..4).prop_map(Pred::Or),
            inner.prop_map(|p| Pred::Not(Box::new(p))),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn interned_sat_matches_structural_sat(p in arb_pred(), ctx in prop::collection::vec(arb_atom(), 0..3)) {
        // Interned path: the oracle's public pred-level API (which caches
        // in the shared verdict table and consults it on re-checks).
        let ctx_refs: Vec<&Pred> = ctx.iter().collect();
        let mut preds: Vec<&Pred> = vec![&p];
        preds.extend(ctx_refs.iter().copied());
        let mut oracle = Oracle::for_preds(&preds);
        let interned = oracle.sat_pred(&p, &ctx_refs);
        let again = oracle.sat_pred(&p, &ctx_refs);
        prop_assert_eq!(interned, again, "cached re-check must agree");

        // Structural path: the same walk on boxed trees, solver driven
        // directly. Allocation order matches, so the formulas are
        // literally identical and the verdicts must be too.
        let mut lower = TreeLower::new();
        let ftree = lower.pred(&p);
        let ctx_trees: Vec<Formula> = ctx.iter().map(|c| lower.pred(c)).collect();
        let structural =
            Solver::default().is_satisfiable(&ftree, &ctx_trees, &mut lower.pool);
        prop_assert_eq!(interned, structural, "p = {}", p);
    }

    #[test]
    fn interned_equiv_matches_structural_equiv(p in arb_pred(), q in arb_pred()) {
        let mut oracle = Oracle::for_preds(&[&p, &q]);
        let interned = oracle.equiv_pred(&p, &q, &[]);

        let mut lower = TreeLower::new();
        // Lower p then q, exactly as the oracle's equiv_pred does.
        let ftree = lower.pred(&p);
        let gtree = lower.pred(&q);
        let structural =
            tree_equiv(&Solver::default(), &ftree, &gtree, &[], &mut lower.pool);
        prop_assert_eq!(interned, structural, "p = {} ; q = {}", p, q);
    }
}

// ---------------------------------------------------------------------
// 2. Corpus parity: byte-identical AdviceReport JSON
// ---------------------------------------------------------------------

fn report_json(advices: &[qrhint_core::QrResult<Advice>]) -> Vec<String> {
    advices
        .iter()
        .map(|r| match r {
            Ok(a) => serde_json::to_string(&AdviceReport::new(a.clone()))
                .expect("report serializes"),
            Err(e) => format!("error: {e}"),
        })
        .collect()
}

fn assert_corpus_parity(schema: &Schema, target: &str, subs: &[String], label: &str) {
    let qr = QrHint::new(schema.clone());
    // Stateless baseline: one-shot advises, no session memo layers.
    let baseline: Vec<qrhint_core::QrResult<Advice>> =
        subs.iter().map(|s| qr.prepare(s).and_then(|q| {
            let q_star = qr.prepare(target)?;
            qr.advise(&q_star, &q)
        })).collect();
    let baseline_json = report_json(&baseline);

    let prepared = qr.compile_target(target).unwrap();
    let cold = report_json(&prepared.grade_batch(subs));
    assert_eq!(cold, baseline_json, "{label}: cold prepared vs stateless");

    // Warm pass: advice cache + stage memos + shared verdicts all hot.
    let warm = report_json(&prepared.grade_batch(subs));
    assert_eq!(warm, baseline_json, "{label}: warm prepared vs stateless");

    // Shed mid-run: the swapped-in fresh context must answer identically.
    assert!(prepared.shed_caches() > 0);
    let after_shed = report_json(&prepared.grade_batch(subs));
    assert_eq!(after_shed, baseline_json, "{label}: post-shed vs stateless");

    // Parallel on a fresh target per job count: cross-thread verdict
    // sharing engaged at every worker width.
    for jobs in [1usize, 4, 8] {
        let hammered = qr.compile_target(target).unwrap();
        let parallel = report_json(&hammered.grade_batch_parallel(subs, jobs));
        assert_eq!(parallel, baseline_json, "{label}: {jobs}-thread vs stateless");
    }

    // From-scratch solver mode (assumption stack off): the incremental
    // search may only *refine* Unknown verdicts, and on these corpora
    // every check is decided definitively — so advice must be
    // byte-identical across modes, cold and after a shed.
    let fs = QrHint::with_config(
        schema.clone(),
        QrHintConfig { incremental_solver: false, ..QrHintConfig::default() },
    );
    let fs_target = fs.compile_target(target).unwrap();
    let fs_cold = report_json(&fs_target.grade_batch(subs));
    assert_eq!(fs_cold, baseline_json, "{label}: from-scratch vs incremental");
    assert!(fs_target.shed_caches() > 0);
    let fs_shed = report_json(&fs_target.grade_batch(subs));
    assert_eq!(fs_shed, baseline_json, "{label}: from-scratch post-shed");
}

#[test]
fn students_corpus_reports_are_byte_identical() {
    let (schema, target, subs) = session_api::students_batch(24);
    assert!(subs.len() >= 8);
    assert_corpus_parity(&schema, &target, &subs, "students-b");
}

#[test]
fn beers_corpus_reports_are_byte_identical() {
    let (schema, target, subs) = session_api::beers_batch(24);
    assert!(subs.len() >= 8);
    assert_corpus_parity(&schema, &target, &subs, "beers-inject-c");
}

// ---------------------------------------------------------------------
// 3. Cross-thread verdict sharing + stats coherence
// ---------------------------------------------------------------------

#[test]
fn eight_thread_hammer_shares_verdicts_across_threads() {
    // Distinct submissions sharing heavy WHERE-repair work: every slot
    // re-derives the same implications, so once two slots exist, one
    // must hit verdicts the other inserted. Slot growth needs claim
    // contention, which is scheduling-dependent — hence a bounded retry
    // on a fresh target (each round is a full valid parity workload).
    let (schema, target, subs) = session_api::beers_batch(32);
    let qr = QrHint::new(schema);
    let sequential = {
        let prepared = qr.compile_target(&target).unwrap();
        fingerprint(&prepared.grade_batch(&subs))
    };
    let mut cross = 0;
    for _round in 0..5 {
        let prepared = qr.compile_target(&target).unwrap();
        let out = fingerprint(&prepared.grade_batch_parallel(&subs, 8));
        assert_eq!(out, sequential, "parallel output diverged");
        let stats = prepared.stats();
        // Coherence: every solver call is exactly one shared-cache hit
        // or one miss, batch-wide, regardless of interleaving.
        assert_eq!(
            stats.verdict_cache_hits + stats.verdict_cache_misses,
            stats.solver_calls,
            "{stats:?}"
        );
        assert!(stats.verdict_cache_hits > 0, "shared cache must hit: {stats:?}");
        assert!(stats.verdict_cache_entries > 0);
        assert!(stats.interned_formulas > 0);
        cross = stats.verdict_cache_cross_thread_hits;
        if cross > 0 {
            break;
        }
    }
    // Cross-thread hits require a FROM group to grow a second slot,
    // which requires claim contention the scheduler may never produce
    // on a <4-core host (an advise that runs to completion unpreempted
    // keeps the pool at one slot). Mirror exp_oracle_cache's waiver
    // policy: enforce on real hardware, record-and-waive on small hosts.
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    if cores >= 4 {
        assert!(
            cross > 0,
            "8 threads × 5 rounds never produced a cross-thread verdict hit on a {cores}-core host"
        );
    } else if cross == 0 {
        eprintln!(
            "waived: no cross-thread verdict hit in 5 rounds on a {cores}-core host \
             (slot growth needs scheduler-dependent contention)"
        );
    }
}

#[test]
fn shed_then_advise_resyncs_scratch_and_rebuilds_lowering_memo() {
    // Shedding swaps the whole `SolverContext` — interner, variable
    // pool, verdict cache, and the per-node lowering memo. Slots bound
    // to the retired context are rebuilt on their next claim, which
    // must also reset the scratch-pool sync mark (a stale mark larger
    // than the fresh pool would misalign every variable index).
    let (schema, target, subs) = session_api::beers_batch(8);
    let qr = QrHint::new(schema);
    let prepared = qr.compile_target(&target).unwrap();
    let before = fingerprint(&prepared.grade_batch(&subs));
    let stats = prepared.stats();
    assert!(stats.lowering_memo_entries > 0, "cold batch must populate the memo: {stats:?}");
    assert!(stats.lowering_memo_misses > 0);
    assert!(
        stats.lowering_memo_hits > 0,
        "context formulas recur across checks, so the memo must hit: {stats:?}"
    );
    assert!(prepared.shed_caches() > 0);
    let shed_stats = prepared.stats();
    assert_eq!(
        shed_stats.lowering_memo_entries, 0,
        "the memo must be shed with the context: {shed_stats:?}"
    );
    assert_eq!(shed_stats.lowering_memo_bytes, 0);
    let after = fingerprint(&prepared.grade_batch(&subs));
    assert_eq!(after, before, "post-shed advise diverged");
    let final_stats = prepared.stats();
    assert!(final_stats.lowering_memo_entries > 0, "memo repopulates after shed");
    assert_eq!(
        final_stats.verdict_cache_hits + final_stats.verdict_cache_misses,
        final_stats.solver_calls,
        "hit/miss pairing must survive the shed boundary: {final_stats:?}"
    );
}

#[test]
fn shared_cache_under_tiny_budget_still_grades_identically() {
    // A byte budget small enough to force evictions mid-batch: the
    // cache degrades to misses, never to wrong answers.
    let (schema, target, subs) = session_api::beers_batch(12);
    let qr = QrHint::new(schema.clone());
    let baseline = {
        let prepared = qr.compile_target(&target).unwrap();
        fingerprint(&prepared.grade_batch(&subs))
    };
    let tiny = QrHint::with_config(
        schema,
        QrHintConfig { verdict_cache_max_bytes: 4096, ..QrHintConfig::default() },
    );
    let prepared = tiny.compile_target(&target).unwrap();
    let out = fingerprint(&prepared.grade_batch(&subs));
    assert_eq!(out, baseline);
    let stats = prepared.stats();
    assert!(stats.verdict_cache_evictions > 0, "tiny budget must evict: {stats:?}");
    // The budget is approximate: each of the 16 shards keeps its newest
    // entry regardless of size, so allow the documented overshoot of
    // one (possibly large-context) entry per shard.
    assert!(
        stats.verdict_cache_bytes <= 4096 * 5,
        "resident bytes must track the budget: {stats:?}"
    );
}

//! CLI coverage for `qr-hint lint` and the unified exit-code contract
//! (`qr_hint::exitcode`): 0 clean / 1 internal / 2 usage / 3 malformed
//! working SQL / 4 lint findings, with batches folding to the most
//! severe per-item code (`INTERNAL` > `BAD_WORKING` > `LINT_FINDINGS`
//! > `SUCCESS`) regardless of file order.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

const BIN: &str = env!("CARGO_BIN_EXE_qr-hint");

/// A unique scratch directory under the system temp dir (no tempfile
/// crate in the offline vendor set); removed on drop, best-effort.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!(
            "qrhint-lint-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("create scratch dir");
        Scratch(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }

    fn write(&self, rel: &str, contents: &str) -> String {
        let p = self.0.join(rel);
        fs::write(&p, contents).expect("write fixture");
        p.to_string_lossy().into_owned()
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

const SCHEMA: &str = "CREATE TABLE Serves (\
    bar VARCHAR(20), beer VARCHAR(20), price INT, PRIMARY KEY (bar, beer));";

const CLEAN: &str = "SELECT s.bar FROM Serves s WHERE s.price >= 3";
/// `price > 5 AND price < 3` — statically unsatisfiable: QH-P01
/// (warning severity; the query still type-checks and executes).
const CONTRADICTION: &str =
    "SELECT s.bar FROM Serves s WHERE s.price > 5 AND s.price < 3";
/// Ungrouped mixed SELECT in an aggregate query: QH-A04 (error).
const MIXED_UNGROUPED: &str = "SELECT s.bar, COUNT(*) FROM Serves s";
const MALFORMED: &str = "SELEKT nonsense";

fn setup(tag: &str) -> (Scratch, String) {
    let s = Scratch::new(tag);
    let schema = s.write("schema.sql", SCHEMA);
    (s, schema)
}

fn lint(schema: &str, files: &[&str], extra: &[&str]) -> Output {
    Command::new(BIN)
        .arg("lint")
        .args(["--schema", schema])
        .args(extra)
        .args(files)
        .output()
        .expect("run qr-hint lint")
}

#[test]
fn clean_file_exits_zero() {
    let (s, schema) = setup("clean");
    let f = s.write("q.sql", CLEAN);
    let out = lint(&schema, &[&f], &[]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("✓"), "clean marker missing:\n{text}");
    assert!(text.contains("0 diagnostic(s)"), "{text}");
}

#[test]
fn findings_exit_four_and_name_the_code() {
    let (s, schema) = setup("findings");
    let f = s.write("q.sql", CONTRADICTION);
    let out = lint(&schema, &[&f], &[]);
    assert_eq!(out.status.code(), Some(4), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("QH-P01"), "contradiction code missing:\n{text}");
}

#[test]
fn json_output_carries_structured_diagnostics() {
    let (s, schema) = setup("json");
    let f1 = s.write("clean.sql", CLEAN);
    let f2 = s.write("mixed.sql", MIXED_UNGROUPED);
    let out = lint(&schema, &[&f1, &f2], &["--json"]);
    assert_eq!(out.status.code(), Some(4), "{out:?}");
    let json = String::from_utf8_lossy(&out.stdout);
    // One entry per file, in argument order, with machine-readable
    // fields (pinned loosely: the exact schema is the serde derive).
    assert!(json.contains("\"clean\": true"), "{json}");
    assert!(json.contains("\"clean\": false"), "{json}");
    assert!(json.contains("QH-A04"), "{json}");
    assert!(json.contains("\"errors\": true"), "{json}");
    assert!(
        json.find("clean.sql").unwrap() < json.find("mixed.sql").unwrap(),
        "entries must preserve argument order:\n{json}"
    );
}

#[test]
fn malformed_sql_exits_three() {
    let (s, schema) = setup("malformed");
    let f = s.write("bad.sql", MALFORMED);
    let out = lint(&schema, &[&f], &[]);
    assert_eq!(out.status.code(), Some(3), "{out:?}");
}

#[test]
fn batch_folds_to_most_severe_code_not_largest_value() {
    // LINT_FINDINGS is numerically 4 > BAD_WORKING's 3, but a malformed
    // file is the more severe outcome: the fold is by severity rank.
    let (s, schema) = setup("fold");
    let clean = s.write("a.sql", CLEAN);
    let findings = s.write("b.sql", CONTRADICTION);
    let bad = s.write("c.sql", MALFORMED);
    let out = lint(&schema, &[&clean, &findings, &bad], &[]);
    assert_eq!(out.status.code(), Some(3), "{out:?}");
    // Findings-only batch still reports 4.
    let out = lint(&schema, &[&clean, &findings], &[]);
    assert_eq!(out.status.code(), Some(4), "{out:?}");
}

#[test]
fn unreadable_file_exits_one() {
    let (s, schema) = setup("unreadable");
    let missing = s.path().join("nope.sql");
    let out = lint(&schema, &[&missing.to_string_lossy()], &[]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
}

#[test]
fn usage_errors_exit_two() {
    // No files.
    let (_s, schema) = setup("usage");
    let out = Command::new(BIN)
        .args(["lint", "--schema", &schema])
        .output()
        .expect("run");
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    // No schema.
    let out = Command::new(BIN)
        .args(["lint", "whatever.sql"])
        .output()
        .expect("run");
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    // Grade-mode flag on lint.
    let out = Command::new(BIN)
        .args(["lint", "--schema", &schema, "--target", "t.sql", "x.sql"])
        .output()
        .expect("run");
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}

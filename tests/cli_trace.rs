//! The `advise --trace-out` flame-profile path through the real
//! binary: the trace file is valid Chrome trace-event JSON, carries
//! the expected span hierarchy (advise > stage > oracle/solver), and
//! the flag is rejected outside advise mode. Stdout must be identical
//! with and without tracing — profiles ride stderr and the trace file,
//! never the deterministic output.

use serde::Value;
use std::process::Command;

const SCHEMA: &str = "CREATE TABLE Serves (\
    bar VARCHAR(20), beer VARCHAR(20), price INT, PRIMARY KEY (bar, beer));";
const TARGET: &str = "SELECT s.bar FROM Serves s WHERE s.price >= 3";
const WORKING: &str = "SELECT s.bar FROM Serves s WHERE s.price > 3";

struct Fixture {
    dir: std::path::PathBuf,
}

impl Fixture {
    fn new(tag: &str) -> Fixture {
        let dir = std::env::temp_dir().join(format!("qrhint-trace-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("schema.sql"), SCHEMA).unwrap();
        std::fs::write(dir.join("target.sql"), TARGET).unwrap();
        std::fs::write(dir.join("working.sql"), WORKING).unwrap();
        Fixture { dir }
    }

    fn path(&self, name: &str) -> String {
        self.dir.join(name).display().to_string()
    }

    fn advise(&self, extra: &[&str]) -> std::process::Output {
        Command::new(env!("CARGO_BIN_EXE_qr-hint"))
            .args(["advise", "--schema", &self.path("schema.sql")])
            .args(["--target", &self.path("target.sql")])
            .args(["--working", &self.path("working.sql")])
            .args(extra)
            .output()
            .expect("run qr-hint advise")
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

#[test]
fn trace_out_writes_chrome_trace_json_without_touching_stdout() {
    let fx = Fixture::new("ok");
    let trace_path = fx.path("trace.json");

    let plain = fx.advise(&["--json"]);
    assert!(plain.status.success(), "{plain:?}");
    let traced = fx.advise(&["--json", "--trace-out", &trace_path]);
    assert!(traced.status.success(), "{traced:?}");
    assert_eq!(
        String::from_utf8(plain.stdout).unwrap(),
        String::from_utf8(traced.stdout).unwrap(),
        "tracing must not change the advice output"
    );
    let stderr = String::from_utf8(traced.stderr).unwrap();
    assert!(stderr.contains("span(s) written to"), "{stderr}");

    let trace = std::fs::read_to_string(&trace_path).expect("trace file written");
    let parsed: Value = serde_json::from_str(&trace)
        .unwrap_or_else(|e| panic!("trace is not valid JSON ({e}):\n{trace}"));
    let Value::Map(top) = parsed else { panic!("trace root not a map") };
    let events = match top.iter().find(|(k, _)| k == "traceEvents") {
        Some((_, Value::Seq(events))) => events,
        other => panic!("no traceEvents list ({other:?})"),
    };
    assert!(!events.is_empty(), "trace recorded no spans");

    // The span hierarchy the profile is for: the advise envelope, at
    // least one stage, and solver work beneath it.
    let names: Vec<&str> = events
        .iter()
        .filter_map(|e| match e {
            Value::Map(fields) => fields.iter().find_map(|(k, v)| match (k.as_str(), v) {
                ("name", Value::Str(s)) => Some(s.as_str()),
                _ => None,
            }),
            _ => None,
        })
        .collect();
    assert_eq!(names.len(), events.len(), "every event carries a name");
    assert!(names.contains(&"advise"), "{names:?}");
    assert!(names.iter().any(|n| n.starts_with("stage:")), "{names:?}");
    assert!(names.iter().any(|n| n.starts_with("solver:") || n.starts_with("oracle:")), "{names:?}");
}

#[test]
fn trace_out_is_rejected_outside_advise_mode() {
    let fx = Fixture::new("reject");
    let out = Command::new(env!("CARGO_BIN_EXE_qr-hint"))
        .args(["grade", "--schema", &fx.path("schema.sql")])
        .args(["--target", &fx.path("target.sql")])
        .args(["--submissions", &fx.dir.display().to_string()])
        .args(["--trace-out", &fx.path("trace.json")])
        .output()
        .expect("run qr-hint grade");
    assert_eq!(out.status.code(), Some(2), "usage error expected: {out:?}");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("--trace-out only applies to advise mode"), "{stderr}");
    assert!(!fx.dir.join("trace.json").exists(), "rejected flag must not write a trace");
}
